#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace sww::obs {

namespace {
// Innermost-open-span stack, per thread.  Ids are tracer-global, so one
// thread interleaving two tracers is not supported (nothing in the
// repository does that).
thread_local std::vector<SpanId> t_span_stack;

std::optional<std::uint64_t> ParseHex(std::string_view text) {
  if (text.empty() || text.size() > 16) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return value;
}
}  // namespace

std::string FormatTraceHeader(const SpanContext& context) {
  if (!context.valid()) return "";
  char buf[64];
  // Our trace ids are 64-bit; the upper 16 hex digits of the W3C-style
  // 128-bit field are zero.
  std::snprintf(buf, sizeof(buf), "00-%016llx%016llx-%016llx-01", 0ULL,
                static_cast<unsigned long long>(context.trace_id),
                static_cast<unsigned long long>(context.span_id));
  return buf;
}

std::optional<SpanContext> ParseTraceHeader(std::string_view header) {
  // version(2) '-' trace(32) '-' span(16) '-' flags(2)
  if (header.size() != 2 + 1 + 32 + 1 + 16 + 1 + 2) return std::nullopt;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') {
    return std::nullopt;
  }
  if (!ParseHex(header.substr(0, 2))) return std::nullopt;
  const auto trace_high = ParseHex(header.substr(3, 16));
  const auto trace_low = ParseHex(header.substr(19, 16));
  const auto span = ParseHex(header.substr(36, 16));
  if (!trace_high || !trace_low || !span) return std::nullopt;
  SpanContext context;
  context.trace_id = *trace_low;  // upper 64 bits are always zero here
  context.span_id = *span;
  if (!context.valid()) return std::nullopt;
  return context;
}

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();  // never destroyed: see Registry
  return *tracer;
}

Tracer::Tracer() : clock_(&system_clock_) {}

void Tracer::SetClock(Clock* clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = clock != nullptr ? clock : &system_clock_;
}

Clock& Tracer::clock() {
  std::lock_guard<std::mutex> lock(mutex_);
  return *clock_;
}

SpanId Tracer::BeginSpan(std::string_view name, std::string_view category,
                         SpanId parent) {
  const SpanId id = BeginAsyncSpan(
      name, category,
      parent != 0 ? parent : (t_span_stack.empty() ? 0 : t_span_stack.back()));
  if (id != 0) t_span_stack.push_back(id);
  return id;
}

SpanId Tracer::BeginAsyncSpan(std::string_view name, std::string_view category,
                              SpanId parent) {
  std::lock_guard<std::mutex> lock(mutex_);
  return BeginAsyncSpanLocked(name, category, parent, /*trace_id=*/0);
}

SpanId Tracer::BeginSpanWithContext(std::string_view name,
                                    std::string_view category,
                                    const SpanContext& remote_parent) {
  if (!remote_parent.valid()) return BeginSpan(name, category);
  SpanId id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = BeginAsyncSpanLocked(name, category, remote_parent.span_id,
                              remote_parent.trace_id);
  }
  if (id != 0) t_span_stack.push_back(id);
  return id;
}

SpanId Tracer::BeginAsyncSpanLocked(std::string_view name,
                                    std::string_view category, SpanId parent,
                                    TraceId trace_id) {
  if (!enabled_) return 0;
  Span span;
  span.id = next_id_++;
  span.parent = parent;
  if (trace_id != 0) {
    span.trace_id = trace_id;  // adopted from a remote context
  } else if (parent != 0) {
    // Inherit the parent's trace; a parent this tracer never saw (remote
    // id without a context) starts a fresh trace.
    const auto it = span_traces_.find(parent);
    span.trace_id = it != span_traces_.end() ? it->second : next_trace_id_++;
  } else {
    span.trace_id = next_trace_id_++;  // root span mints the trace
  }
  span.name = std::string(name);
  span.category = std::string(category);
  span.start_nanos = clock_->NowNanos();
  span_traces_[span.id] = span.trace_id;
  open_.push_back(std::move(span));
  return open_.back().id;
}

void Tracer::AddAttribute(SpanId id, std::string_view key,
                          std::string_view value) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (Span& span : open_) {
    if (span.id == id) {
      span.attributes.emplace_back(std::string(key), std::string(value));
      return;
    }
  }
}

void Tracer::SetSpanProcess(SpanId id, std::string_view process) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (Span& span : open_) {
    if (span.id == id) {
      span.process = std::string(process);
      return;
    }
  }
}

SpanContext Tracer::ContextOf(SpanId id) const {
  SpanContext context;
  if (id == 0) return context;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = span_traces_.find(id);
  if (it == span_traces_.end()) return context;
  context.trace_id = it->second;
  context.span_id = id;
  return context;
}

void Tracer::EndSpan(SpanId id) {
  if (id == 0) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = std::find_if(open_.begin(), open_.end(),
                           [id](const Span& span) { return span.id == id; });
    if (it != open_.end()) {
      it->end_nanos = clock_->NowNanos();
      it->finished = true;
      finished_.push_back(std::move(*it));
      open_.erase(it);
    }
  }
  auto stack_it = std::find(t_span_stack.begin(), t_span_stack.end(), id);
  if (stack_it != t_span_stack.end()) t_span_stack.erase(stack_it);
}

SpanId Tracer::CurrentSpan() const {
  return t_span_stack.empty() ? 0 : t_span_stack.back();
}

std::vector<Span> Tracer::FinishedSpans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_;
}

std::size_t Tracer::finished_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  open_.clear();
  finished_.clear();
  span_traces_.clear();
  next_id_ = 1;
  next_trace_id_ = 1;
  t_span_stack.clear();
}

}  // namespace sww::obs
