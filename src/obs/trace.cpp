#include "obs/trace.hpp"

#include <algorithm>

namespace sww::obs {

namespace {
// Innermost-open-span stack, per thread.  Ids are tracer-global, so one
// thread interleaving two tracers is not supported (nothing in the
// repository does that).
thread_local std::vector<SpanId> t_span_stack;
}  // namespace

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();  // never destroyed: see Registry
  return *tracer;
}

Tracer::Tracer() : clock_(&system_clock_) {}

void Tracer::SetClock(Clock* clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = clock != nullptr ? clock : &system_clock_;
}

Clock& Tracer::clock() {
  std::lock_guard<std::mutex> lock(mutex_);
  return *clock_;
}

SpanId Tracer::BeginSpan(std::string_view name, std::string_view category,
                         SpanId parent) {
  const SpanId id = BeginAsyncSpan(
      name, category,
      parent != 0 ? parent : (t_span_stack.empty() ? 0 : t_span_stack.back()));
  if (id != 0) t_span_stack.push_back(id);
  return id;
}

SpanId Tracer::BeginAsyncSpan(std::string_view name, std::string_view category,
                              SpanId parent) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return 0;
  Span span;
  span.id = next_id_++;
  span.parent = parent;
  span.name = std::string(name);
  span.category = std::string(category);
  span.start_nanos = clock_->NowNanos();
  open_.push_back(std::move(span));
  return open_.back().id;
}

void Tracer::AddAttribute(SpanId id, std::string_view key,
                          std::string_view value) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (Span& span : open_) {
    if (span.id == id) {
      span.attributes.emplace_back(std::string(key), std::string(value));
      return;
    }
  }
}

void Tracer::EndSpan(SpanId id) {
  if (id == 0) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = std::find_if(open_.begin(), open_.end(),
                           [id](const Span& span) { return span.id == id; });
    if (it != open_.end()) {
      it->end_nanos = clock_->NowNanos();
      it->finished = true;
      finished_.push_back(std::move(*it));
      open_.erase(it);
    }
  }
  auto stack_it = std::find(t_span_stack.begin(), t_span_stack.end(), id);
  if (stack_it != t_span_stack.end()) t_span_stack.erase(stack_it);
}

SpanId Tracer::CurrentSpan() const {
  return t_span_stack.empty() ? 0 : t_span_stack.back();
}

std::vector<Span> Tracer::FinishedSpans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_;
}

std::size_t Tracer::finished_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  open_.clear();
  finished_.clear();
  next_id_ = 1;
  t_span_stack.clear();
}

}  // namespace sww::obs
