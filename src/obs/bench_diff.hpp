// bench_diff.hpp — diff two BENCH_sww.json files; the CI regression gate.
//
// The gate has two regimes, matching how the numbers are produced:
//
//   * modeled metrics are deterministic outputs of the simulation
//     substrate, so they compare EXACTLY (after the writer's 9-significant-
//     digit canonicalization).  Any difference is a behaviour change and
//     fails the gate — that is the point.
//   * wall metrics are machine noise by construction; their medians gate
//     with a configurable relative tolerance, and a negative tolerance
//     (or --modeled-only) disables them entirely — what CI uses, since a
//     shared runner cannot promise a quiet machine.
//
// A benchmark or modeled metric present in the baseline but missing from
// the current file is a failure (a silently dropped benchmark must not
// pass); metrics only in the current file are reported as additions and
// pass — that is how the trajectory grows.
#pragma once

#include <string>
#include <vector>

#include "json/json.hpp"
#include "util/error.hpp"

namespace sww::obs::bench {

struct CompareOptions {
  /// Relative tolerance for wall medians: current may exceed baseline by
  /// this fraction.  Negative disables wall gating.
  double wall_tolerance = 0.25;
  /// Gate only the modeled (+ modeled_text) sections.
  bool modeled_only = false;
};

struct MetricDiff {
  std::string bench;
  std::string metric;      ///< "modeled.key", "modeled_text.key", "wall.label"
  std::string baseline;    ///< rendered baseline value
  std::string current;     ///< rendered current value
  bool regression = false;
  std::string note;        ///< "exact mismatch", "+37.2% > +25.0% tol", …
};

struct CompareResult {
  std::vector<MetricDiff> regressions;
  std::vector<MetricDiff> improvements;  ///< wall medians that got faster
  std::vector<std::string> missing_benchmarks;  ///< in baseline, not current
  std::vector<std::string> added_benchmarks;    ///< in current, not baseline
  std::vector<std::string> missing_metrics;     ///< per-metric drops
  std::vector<std::string> added_metrics;
  std::size_t compared_modeled = 0;
  std::size_t compared_wall = 0;

  bool ok() const {
    return regressions.empty() && missing_benchmarks.empty() &&
           missing_metrics.empty();
  }
};

/// Compare two parsed BENCH files.  Errors (not regressions): schema
/// version mismatch or a file that is not a BENCH document.
util::Result<CompareResult> CompareBenchJson(const json::Value& baseline,
                                             const json::Value& current,
                                             const CompareOptions& options);

/// Human-readable verdict table (deterministic ordering).
std::string RenderCompareText(const CompareResult& result);

}  // namespace sww::obs::bench
