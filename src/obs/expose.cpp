#include "obs/expose.hpp"

#include <cinttypes>
#include <cstdio>

#include "json/json.hpp"

namespace sww::obs {

std::string PrometheusSeriesName(const std::string& name) {
  std::string out = "sww_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9');
    out += word ? c : '_';
  }
  return out;
}

namespace {

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

void AppendTypeLine(std::string& out, const std::string& series,
                    const char* type) {
  out += "# TYPE ";
  out += series;
  out += ' ';
  out += type;
  out += '\n';
}

/// OpenMetrics exemplar suffix for one bucket sample:
///   ` # {trace_id="<16 hex>"} <value> <timestamp seconds>`
/// Appended only when the bucket holds a traced observation; the plain
/// Prometheus 0.0.4 line stays unchanged otherwise, so parsers that
/// ignore everything after `#` keep working.
void AppendExemplarSuffix(std::string& out, const HistogramExemplar& ex) {
  if (ex.trace_id == 0) return;
  char buf[96];
  std::snprintf(buf, sizeof(buf), " # {trace_id=\"%016" PRIx64 "\"} ",
                ex.trace_id);
  out += buf;
  out += FormatDouble(ex.value);
  out += ' ';
  out += FormatDouble(static_cast<double>(ex.timestamp_nanos) / 1e9);
}

}  // namespace

std::string RenderPrometheusText(const RegistrySnapshot& snapshot) {
  std::string out;
  char buf[128];
  for (const auto& [name, value] : snapshot.counters) {
    const std::string series = PrometheusSeriesName(name);
    AppendTypeLine(out, series, "counter");
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
    out += series;
    out += buf;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string series = PrometheusSeriesName(name);
    AppendTypeLine(out, series, "gauge");
    out += series;
    out += ' ';
    out += FormatDouble(value);
    out += '\n';
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string series = PrometheusSeriesName(name);
    AppendTypeLine(out, series, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      cumulative += hist.counts[i];
      out += series;
      out += "_bucket{le=\"";
      out += FormatDouble(hist.bounds[i]);
      std::snprintf(buf, sizeof(buf), "\"} %" PRIu64, cumulative);
      out += buf;
      if (i < hist.exemplars.size()) {
        AppendExemplarSuffix(out, hist.exemplars[i]);
      }
      out += '\n';
    }
    out += series;
    std::snprintf(buf, sizeof(buf), "_bucket{le=\"+Inf\"} %zu", hist.count);
    out += buf;
    if (!hist.exemplars.empty() &&
        hist.exemplars.size() == hist.counts.size()) {
      AppendExemplarSuffix(out, hist.exemplars.back());
    }
    out += '\n';
    out += series;
    out += "_sum ";
    out += FormatDouble(hist.sum);
    out += '\n';
    out += series;
    std::snprintf(buf, sizeof(buf), "_count %zu\n", hist.count);
    out += buf;
  }
  return out;
}

std::string RenderDebugVarsJson(const RegistrySnapshot& snapshot,
                                std::int64_t now_nanos) {
  json::Object root;
  root["now_nanos"] = json::Value(now_nanos);
  json::Object counters;
  for (const auto& [name, value] : snapshot.counters) {
    counters[name] = json::Value(static_cast<std::int64_t>(value));
  }
  root["counters"] = json::Value(std::move(counters));
  json::Object gauges;
  for (const auto& [name, value] : snapshot.gauges) {
    gauges[name] = json::Value(value);
  }
  root["gauges"] = json::Value(std::move(gauges));
  json::Object histograms;
  for (const auto& [name, hist] : snapshot.histograms) {
    json::Object h;
    h["count"] = json::Value(hist.count);
    h["sum"] = json::Value(hist.sum);
    h["min"] = json::Value(hist.min);
    h["max"] = json::Value(hist.max);
    h["mean"] = json::Value(hist.mean);
    h["p50"] = json::Value(hist.p50);
    h["p95"] = json::Value(hist.p95);
    h["p99"] = json::Value(hist.p99);
    json::Array bounds;
    for (double b : hist.bounds) bounds.emplace_back(b);
    h["bounds"] = json::Value(std::move(bounds));
    json::Array counts;
    for (std::uint64_t c : hist.counts) {
      counts.emplace_back(static_cast<std::int64_t>(c));
    }
    h["counts"] = json::Value(std::move(counts));
    histograms[name] = json::Value(std::move(h));
  }
  root["histograms"] = json::Value(std::move(histograms));
  return json::Value(std::move(root)).DumpPretty() + "\n";
}

}  // namespace sww::obs
