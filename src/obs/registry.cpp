#include "obs/registry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace sww::obs {

namespace {

constexpr std::uint64_t kPosInfBits =
    std::bit_cast<std::uint64_t>(std::numeric_limits<double>::infinity());
constexpr std::uint64_t kNegInfBits =
    std::bit_cast<std::uint64_t>(-std::numeric_limits<double>::infinity());

void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicUpdateMin(std::atomic<std::uint64_t>& bits, double value) {
  std::uint64_t current = bits.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(current) > value &&
         !bits.compare_exchange_weak(current, std::bit_cast<std::uint64_t>(value),
                                     std::memory_order_relaxed)) {
  }
}

void AtomicUpdateMax(std::atomic<std::uint64_t>& bits, double value) {
  std::uint64_t current = bits.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(current) < value &&
         !bits.compare_exchange_weak(current, std::bit_cast<std::uint64_t>(value),
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram() {
  for (Cell& cell : cells_) {
    cell.min_bits.store(kPosInfBits, std::memory_order_relaxed);
    cell.max_bits.store(kNegInfBits, std::memory_order_relaxed);
  }
}

std::size_t Histogram::BucketIndex(double value) {
  // The negated comparison routes NaN, zero, negatives, and sub-minimum
  // values into the underflow bucket without a separate isnan branch.
  if (!(value >= kMinValue)) return 0;
  if (value >= kMaxValue) return kBucketCount - 1;
  int exp = 0;
  const double frac = std::frexp(value, &exp);  // frac in [0.5, 1)
  const int octave = exp - 1;                   // value in [2^octave, 2^(octave+1))
  const auto sub =
      static_cast<std::size_t>((frac - 0.5) * (2.0 * kSubBuckets));
  return 1 + static_cast<std::size_t>(octave - kMinExponent) * kSubBuckets +
         std::min(sub, kSubBuckets - 1);
}

double Histogram::BucketUpperBound(std::size_t index) {
  if (index == 0) return kMinValue;
  if (index >= kBucketCount - 1) {
    return std::numeric_limits<double>::infinity();
  }
  const std::size_t linear = index - 1;
  const int octave = kMinExponent + static_cast<int>(linear / kSubBuckets);
  const std::size_t sub = linear % kSubBuckets;
  // Exact: 1 + (sub+1)/32 has ≤ 6 significant bits; sub == 31 yields
  // exactly 2^(octave+1), closing the octave.
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, octave);
}

double Histogram::LowerBoundForUpper(double upper) {
  if (!(upper > 0.0) || std::isinf(upper)) return 0.0;
  int exp = 0;
  const double frac = std::frexp(upper, &exp);  // upper = frac · 2^exp
  // A power of two closes the *previous* octave (its sub-bucket width is
  // 2^(exp-2)/kSubBuckets); any other grid point lies inside octave
  // exp-1.  Both widths and the subtraction are exact in doubles.
  const int octave = (frac == 0.5) ? exp - 2 : exp - 1;
  return upper - std::ldexp(1.0, octave) / static_cast<double>(kSubBuckets);
}

void Histogram::Observe(double value) {
  Cell& cell = cells_[Counter::ThreadCell() % kCells];
  cell.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(cell.sum, value);
  AtomicUpdateMin(cell.min_bits, value);
  AtomicUpdateMax(cell.max_bits, value);
}

void Histogram::Observe(double value, std::uint64_t trace_id,
                        std::uint64_t timestamp_nanos) {
  Observe(value);
  if (trace_id == 0) return;  // untraced: nothing to stamp
  ExemplarSlot& slot = exemplars_[BucketIndex(value)];
  std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  if (seq & 1) return;  // another writer mid-flight: best effort, skip
  if (!slot.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
    return;
  }
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.value_bits.store(std::bit_cast<std::uint64_t>(value),
                        std::memory_order_relaxed);
  slot.timestamp.store(timestamp_nanos, std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);
}

namespace {

/// Seqlock read of one exemplar slot.  Retries while a writer is
/// mid-flight; a vacant or persistently-contended slot reads as the
/// zero exemplar (trace_id == 0).
HistogramExemplar ReadExemplarSlot(
    const std::atomic<std::uint64_t>& seq,
    const std::atomic<std::uint64_t>& trace_id,
    const std::atomic<std::uint64_t>& value_bits,
    const std::atomic<std::uint64_t>& timestamp) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::uint64_t before = seq.load(std::memory_order_acquire);
    if (before & 1) continue;
    HistogramExemplar exemplar;
    exemplar.trace_id = trace_id.load(std::memory_order_relaxed);
    exemplar.value =
        std::bit_cast<double>(value_bits.load(std::memory_order_relaxed));
    exemplar.timestamp_nanos = timestamp.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq.load(std::memory_order_relaxed) == before) return exemplar;
  }
  return {};
}

}  // namespace

HistogramSnapshot Histogram::Snapshot() const {
  // The total count is the sum of the buckets (every observation lands in
  // exactly one, underflow and overflow included) — Observe does not pay
  // for a separate count atomic, and a mid-stream snapshot can never see
  // count and buckets disagree.
  std::array<std::uint64_t, kBucketCount> merged{};
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (const Cell& cell : cells_) {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      merged[i] += cell.buckets[i].load(std::memory_order_relaxed);
    }
    sum += cell.sum.load(std::memory_order_relaxed);
    min = std::min(
        min, std::bit_cast<double>(cell.min_bits.load(std::memory_order_relaxed)));
    max = std::max(
        max, std::bit_cast<double>(cell.max_bits.load(std::memory_order_relaxed)));
  }

  for (const std::uint64_t bucket : merged) count += bucket;

  HistogramSnapshot snapshot;
  snapshot.count = static_cast<std::size_t>(count);
  snapshot.sum = sum;
  snapshot.min = count > 0 ? min : 0.0;
  snapshot.max = count > 0 ? max : 0.0;
  for (std::size_t i = 0; i + 1 < kBucketCount; ++i) {
    if (merged[i] == 0) continue;
    snapshot.bounds.push_back(BucketUpperBound(i));
    snapshot.counts.push_back(merged[i]);
    const ExemplarSlot& slot = exemplars_[i];
    snapshot.exemplars.push_back(ReadExemplarSlot(
        slot.seq, slot.trace_id, slot.value_bits, slot.timestamp));
  }
  snapshot.counts.push_back(merged[kBucketCount - 1]);  // overflow, maybe 0
  const ExemplarSlot& overflow_slot = exemplars_[kBucketCount - 1];
  snapshot.exemplars.push_back(
      ReadExemplarSlot(overflow_slot.seq, overflow_slot.trace_id,
                       overflow_slot.value_bits, overflow_slot.timestamp));
  if (count > 0) {
    snapshot.mean = sum / static_cast<double>(count);
    snapshot.p50 = HistogramSnapshotQuantile(snapshot, 50.0);
    snapshot.p95 = HistogramSnapshotQuantile(snapshot, 95.0);
    snapshot.p99 = HistogramSnapshotQuantile(snapshot, 99.0);
  }
  return snapshot;
}

void Histogram::Reset() {
  for (Cell& cell : cells_) {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      cell.buckets[i].store(0, std::memory_order_relaxed);
    }
    cell.sum.store(0.0, std::memory_order_relaxed);
    cell.min_bits.store(kPosInfBits, std::memory_order_relaxed);
    cell.max_bits.store(kNegInfBits, std::memory_order_relaxed);
  }
  // Exemplars reset with the buckets (a fresh run must not inherit the
  // previous run's trace ids).  Callers are quiescent, so plain stores
  // back to the stable even state are enough.
  for (ExemplarSlot& slot : exemplars_) {
    slot.trace_id.store(0, std::memory_order_relaxed);
    slot.value_bits.store(0, std::memory_order_relaxed);
    slot.timestamp.store(0, std::memory_order_relaxed);
    slot.seq.store(0, std::memory_order_relaxed);
  }
}

double HistogramSnapshotQuantile(const HistogramSnapshot& snapshot, double q) {
  if (snapshot.count == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 100.0);
  const auto rank = static_cast<std::uint64_t>(
      clamped / 100.0 * static_cast<double>(snapshot.count - 1));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < snapshot.counts.size(); ++i) {
    cumulative += snapshot.counts[i];
    if (cumulative <= rank) continue;
    if (i >= snapshot.bounds.size()) return snapshot.max;  // overflow bucket
    const double upper = snapshot.bounds[i];
    const double mid = (Histogram::LowerBoundForUpper(upper) + upper) / 2.0;
    return std::clamp(mid, snapshot.min, snapshot.max);
  }
  return snapshot.max;
}

namespace {

/// Deterministic "newest exemplar wins" combine: later timestamp takes
/// the slot; equal timestamps tie-break on the larger trace id so the
/// merge result never depends on part order.
void KeepNewestExemplar(HistogramExemplar* into,
                        const HistogramExemplar& candidate) {
  if (candidate.trace_id == 0) return;
  if (into->trace_id == 0 ||
      candidate.timestamp_nanos > into->timestamp_nanos ||
      (candidate.timestamp_nanos == into->timestamp_nanos &&
       candidate.trace_id > into->trace_id)) {
    *into = candidate;
  }
}

}  // namespace

HistogramSnapshot MergeHistogramSnapshots(
    const std::vector<HistogramSnapshot>& parts) {
  // Grid upper bounds are exact doubles, so a map keyed on them re-aligns
  // buckets across snapshots without tolerance games.
  std::map<double, std::uint64_t> buckets;
  std::map<double, HistogramExemplar> bucket_exemplars;
  HistogramSnapshot merged;
  std::uint64_t overflow = 0;
  HistogramExemplar overflow_exemplar;
  merged.min = std::numeric_limits<double>::infinity();
  merged.max = -std::numeric_limits<double>::infinity();
  for (const HistogramSnapshot& part : parts) {
    for (std::size_t i = 0; i < part.bounds.size(); ++i) {
      buckets[part.bounds[i]] += part.counts[i];
      if (i < part.exemplars.size()) {
        KeepNewestExemplar(&bucket_exemplars[part.bounds[i]],
                           part.exemplars[i]);
      }
    }
    if (!part.counts.empty()) overflow += part.counts.back();
    if (!part.exemplars.empty() &&
        part.exemplars.size() == part.counts.size()) {
      KeepNewestExemplar(&overflow_exemplar, part.exemplars.back());
    }
    merged.count += part.count;
    merged.sum += part.sum;
    if (part.count > 0) {
      merged.min = std::min(merged.min, part.min);
      merged.max = std::max(merged.max, part.max);
    }
  }
  for (const auto& [upper, n] : buckets) {
    merged.bounds.push_back(upper);
    merged.counts.push_back(n);
    merged.exemplars.push_back(bucket_exemplars[upper]);
  }
  merged.counts.push_back(overflow);
  merged.exemplars.push_back(overflow_exemplar);
  if (merged.count > 0) {
    merged.mean = merged.sum / static_cast<double>(merged.count);
    merged.p50 = HistogramSnapshotQuantile(merged, 50.0);
    merged.p95 = HistogramSnapshotQuantile(merged, 95.0);
    merged.p99 = HistogramSnapshotQuantile(merged, 99.0);
  } else {
    merged.min = merged.max = 0.0;
  }
  return merged;
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();  // never destroyed: handles
  return *registry;                            // outlive static teardown
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

RegistrySnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  return snapshot;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    (void)name;
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    (void)name;
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    (void)name;
    histogram->Reset();
  }
}

}  // namespace sww::obs
