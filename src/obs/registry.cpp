#include "obs/registry.hpp"

#include <algorithm>

#include "metrics/stats.hpp"
#include "util/rng.hpp"

namespace sww::obs {

namespace {
/// Fixed reservoir seed: every histogram replays the same replacement
/// stream, so snapshots depend only on the observation sequence.
constexpr std::uint64_t kReservoirSeed = 0x5357575265737276ULL;  // "SWWResrv"
}  // namespace

std::size_t Counter::ThreadCell() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t cell =
      next.fetch_add(1, std::memory_order_relaxed) % kCells;
  return cell;
}

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), rng_state_(kReservoirSeed) {
  if (bounds_.empty()) bounds_ = LatencyBucketsSeconds();
  std::sort(bounds_.begin(), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
  reservoir_.reserve(kReservoirSize);
}

void Histogram::Observe(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  sum_ += value;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  // Vitter's algorithm R: sample i (1-based) replaces a reservoir slot
  // with probability kReservoirSize / i.
  if (reservoir_.size() < kReservoirSize) {
    reservoir_.push_back(value);
  } else {
    const std::uint64_t slot = util::SplitMix64(rng_state_) % count_;
    if (slot < kReservoirSize) reservoir_[slot] = value;
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts = counts_;
  snapshot.count = count_;
  snapshot.sum = sum_;
  snapshot.min = min_;
  snapshot.max = max_;
  if (count_ > 0) {
    snapshot.mean = sum_ / static_cast<double>(count_);
    snapshot.p50 = metrics::Percentile(reservoir_, 50.0);
    snapshot.p95 = metrics::Percentile(reservoir_, 95.0);
    snapshot.p99 = metrics::Percentile(reservoir_, 99.0);
  }
  return snapshot;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(counts_.begin(), counts_.end(), 0);
  reservoir_.clear();
  rng_state_ = kReservoirSeed;
  sum_ = min_ = max_ = 0.0;
  count_ = 0;
}

std::vector<double> LatencyBucketsSeconds() {
  std::vector<double> bounds;
  for (double b = 1e-4; b < 2000.0; b *= 4.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> ByteBuckets() {
  std::vector<double> bounds;
  for (double b = 64.0; b <= 16.0 * 1024 * 1024; b *= 4.0) bounds.push_back(b);
  return bounds;
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();  // never destroyed: handles
  return *registry;                            // outlive static teardown
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

RegistrySnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  return snapshot;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    (void)name;
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    (void)name;
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    (void)name;
    histogram->Reset();
  }
}

}  // namespace sww::obs
