#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "json/json.hpp"

namespace sww::obs {

using util::Error;
using util::ErrorCode;
using util::Status;

std::string ExportJsonLines(const RegistrySnapshot& snapshot) {
  // Emission goes through src/json exclusively: names and values are
  // escaped by the serializer (quotes, backslashes, control characters),
  // and non-finite doubles serialize as null rather than bare inf/nan —
  // a metric named from a prompt or path can never corrupt the artifact.
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    json::Object line;
    line["kind"] = "counter";
    line["name"] = name;
    line["value"] = value;
    out += json::Value(line).Dump();
    out += '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    json::Object line;
    line["kind"] = "gauge";
    line["name"] = name;
    line["value"] = value;
    out += json::Value(line).Dump();
    out += '\n';
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    json::Object line;
    line["kind"] = "histogram";
    line["name"] = name;
    line["count"] = histogram.count;
    line["sum"] = histogram.sum;
    line["min"] = histogram.min;
    line["max"] = histogram.max;
    line["mean"] = histogram.mean;
    line["p50"] = histogram.p50;
    line["p95"] = histogram.p95;
    line["p99"] = histogram.p99;
    json::Array bounds, counts;
    for (double bound : histogram.bounds) bounds.push_back(bound);
    for (std::uint64_t count : histogram.counts) counts.push_back(count);
    line["bounds"] = std::move(bounds);
    line["counts"] = std::move(counts);
    out += json::Value(line).Dump();
    out += '\n';
  }
  return out;
}

namespace {

/// Non-finite values would corrupt the JSON output (RFC 8259 has no
/// inf/nan); clamp them to zero so artifacts always re-parse.
double FiniteOrZero(double v) { return std::isfinite(v) ? v : 0.0; }

/// Resolve each span's process track: its own label, else the nearest
/// labeled ancestor's, else the export call's default.  This is what lets
/// one stitched distributed trace render as labeled client/server/edge/
/// origin tracks in Perfetto — only role roots carry explicit labels.
std::vector<std::string> EffectiveProcesses(const std::vector<Span>& spans,
                                            std::string_view default_process) {
  std::map<SpanId, std::size_t> index;
  for (std::size_t i = 0; i < spans.size(); ++i) index[spans[i].id] = i;
  std::vector<std::string> effective(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span* cursor = &spans[i];
    std::string label;
    for (int depth = 0; depth < 64; ++depth) {  // cycle guard
      if (!cursor->process.empty()) {
        label = cursor->process;
        break;
      }
      const auto parent = index.find(cursor->parent);
      if (cursor->parent == 0 || parent == index.end()) break;
      cursor = &spans[parent->second];
    }
    effective[i] = label.empty() ? std::string(default_process) : label;
  }
  return effective;
}

}  // namespace

std::string ExportChromeTrace(const std::vector<Span>& spans,
                              std::string_view process_name) {
  // Deterministic pid assignment: the default process is pid 1, every
  // other label gets the next pid in sorted order.
  const std::vector<std::string> processes =
      EffectiveProcesses(spans, process_name);
  std::map<std::string, int> pids;
  pids[std::string(process_name)] = 1;
  std::set<std::string> labels(processes.begin(), processes.end());
  int next_pid = 2;
  for (const std::string& label : labels) {
    if (pids.emplace(label, next_pid).second) ++next_pid;
  }

  json::Array events;
  // Process/thread metadata ("ph":"M" name events) so each role renders
  // as a labeled track in Perfetto.  Emitted for every known pid, the
  // default included, whether or not a span landed on it.
  for (const auto& [label, pid] : pids) {
    json::Object meta;
    meta["ph"] = "M";
    meta["pid"] = pid;
    meta["tid"] = 1;
    meta["name"] = "process_name";
    json::Object args;
    args["name"] = label;
    meta["args"] = std::move(args);
    events.push_back(std::move(meta));

    json::Object thread_meta;
    thread_meta["ph"] = "M";
    thread_meta["pid"] = pid;
    thread_meta["tid"] = 1;
    thread_meta["name"] = "thread_name";
    json::Object thread_args;
    thread_args["name"] = label + ".main";
    thread_meta["args"] = std::move(thread_args);
    events.push_back(std::move(thread_meta));
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& span = spans[i];
    json::Object event;
    event["ph"] = "X";
    event["pid"] = pids.at(processes[i]);
    event["tid"] = 1;
    event["name"] = span.name;
    if (!span.category.empty()) event["cat"] = span.category;
    // trace_event timestamps are microseconds; keep sub-µs precision.
    event["ts"] = FiniteOrZero(static_cast<double>(span.start_nanos) / 1e3);
    event["dur"] = FiniteOrZero(
        static_cast<double>(span.end_nanos - span.start_nanos) / 1e3);
    json::Object args;
    args["span_id"] = span.id;
    if (span.parent != 0) args["parent_id"] = span.parent;
    if (span.trace_id != 0) {
      char trace_hex[24];
      std::snprintf(trace_hex, sizeof(trace_hex), "%016llx",
                    static_cast<unsigned long long>(span.trace_id));
      args["trace_id"] = trace_hex;
    }
    for (const auto& [key, value] : span.attributes) {
      args[key] = value;
    }
    event["args"] = std::move(args);
    events.push_back(std::move(event));
  }
  json::Object root;
  root["traceEvents"] = std::move(events);
  root["displayTimeUnit"] = "ms";
  return json::Value(root).Dump();
}

Status WriteTextFile(const std::string& path, std::string_view contents) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Error(ErrorCode::kIo, "cannot open for writing: " + path);
  }
  const std::size_t written =
      std::fwrite(contents.data(), 1, contents.size(), file);
  std::fclose(file);
  if (written != contents.size()) {
    return Error(ErrorCode::kIo, "short write: " + path);
  }
  return Status::Ok();
}

util::Result<std::string> ReadTextFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Error(ErrorCode::kIo, "cannot open for reading: " + path);
  }
  std::string contents;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, got);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return Error(ErrorCode::kIo, "read error: " + path);
  }
  return contents;
}

Status WriteTraceFile(const std::string& path, const std::vector<Span>& spans,
                      std::string_view process_name) {
  return WriteTextFile(path, ExportChromeTrace(spans, process_name));
}

Status WriteMetricsFile(const std::string& path,
                        const RegistrySnapshot& snapshot) {
  return WriteTextFile(path, ExportJsonLines(snapshot));
}

Status WriteFramesFile(const std::string& path,
                       const std::vector<const ConnectionTap*>& taps) {
  return WriteTextFile(path, RenderFramesJsonLines(taps));
}

}  // namespace sww::obs
