#include "obs/export.hpp"

#include <cstdio>

#include "json/json.hpp"

namespace sww::obs {

using util::Error;
using util::ErrorCode;
using util::Status;

std::string ExportJsonLines(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    json::Object line;
    line["kind"] = "counter";
    line["name"] = name;
    line["value"] = value;
    out += json::Value(line).Dump();
    out += '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    json::Object line;
    line["kind"] = "gauge";
    line["name"] = name;
    line["value"] = value;
    out += json::Value(line).Dump();
    out += '\n';
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    json::Object line;
    line["kind"] = "histogram";
    line["name"] = name;
    line["count"] = histogram.count;
    line["sum"] = histogram.sum;
    line["min"] = histogram.min;
    line["max"] = histogram.max;
    line["mean"] = histogram.mean;
    line["p50"] = histogram.p50;
    line["p95"] = histogram.p95;
    line["p99"] = histogram.p99;
    json::Array bounds, counts;
    for (double bound : histogram.bounds) bounds.push_back(bound);
    for (std::uint64_t count : histogram.counts) counts.push_back(count);
    line["bounds"] = std::move(bounds);
    line["counts"] = std::move(counts);
    out += json::Value(line).Dump();
    out += '\n';
  }
  return out;
}

std::string ExportChromeTrace(const std::vector<Span>& spans,
                              std::string_view process_name) {
  json::Array events;
  {
    // Process-name metadata event so the Perfetto sidebar reads nicely.
    json::Object meta;
    meta["ph"] = "M";
    meta["pid"] = 1;
    meta["name"] = "process_name";
    json::Object args;
    args["name"] = std::string(process_name);
    meta["args"] = std::move(args);
    events.push_back(std::move(meta));
  }
  for (const Span& span : spans) {
    json::Object event;
    event["ph"] = "X";
    event["pid"] = 1;
    event["tid"] = 1;
    event["name"] = span.name;
    if (!span.category.empty()) event["cat"] = span.category;
    // trace_event timestamps are microseconds; keep sub-µs precision.
    event["ts"] = static_cast<double>(span.start_nanos) / 1e3;
    event["dur"] = static_cast<double>(span.end_nanos - span.start_nanos) / 1e3;
    json::Object args;
    args["span_id"] = span.id;
    if (span.parent != 0) args["parent_id"] = span.parent;
    for (const auto& [key, value] : span.attributes) {
      args[key] = value;
    }
    event["args"] = std::move(args);
    events.push_back(std::move(event));
  }
  json::Object root;
  root["traceEvents"] = std::move(events);
  root["displayTimeUnit"] = "ms";
  return json::Value(root).Dump();
}

namespace {
Status WriteWholeFile(const std::string& path, const std::string& contents) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Error(ErrorCode::kIo, "cannot open for writing: " + path);
  }
  const std::size_t written =
      std::fwrite(contents.data(), 1, contents.size(), file);
  std::fclose(file);
  if (written != contents.size()) {
    return Error(ErrorCode::kIo, "short write: " + path);
  }
  return Status::Ok();
}
}  // namespace

Status WriteTraceFile(const std::string& path, const std::vector<Span>& spans,
                      std::string_view process_name) {
  return WriteWholeFile(path, ExportChromeTrace(spans, process_name));
}

Status WriteMetricsFile(const std::string& path,
                        const RegistrySnapshot& snapshot) {
  return WriteWholeFile(path, ExportJsonLines(snapshot));
}

}  // namespace sww::obs
