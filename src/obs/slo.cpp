#include "obs/slo.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace sww::obs {

namespace {

using util::Error;
using util::ErrorCode;

std::string FormatCompactDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

/// Cumulative per-bound counts (plus overflow) of one snapshot, for
/// exact subtraction on the shared grid.
struct BucketTotals {
  std::map<double, std::uint64_t> by_bound;
  std::uint64_t overflow = 0;
  std::uint64_t count = 0;
};

BucketTotals TotalsOf(const HistogramSnapshot& snapshot) {
  BucketTotals totals;
  for (std::size_t i = 0; i < snapshot.bounds.size(); ++i) {
    totals.by_bound[snapshot.bounds[i]] += snapshot.counts[i];
  }
  if (!snapshot.counts.empty()) totals.overflow = snapshot.counts.back();
  totals.count = snapshot.count;
  return totals;
}

}  // namespace

SloEngine::SloEngine(std::vector<SloObjective> objectives)
    : objectives_(std::move(objectives)) {}

void SloEngine::Ingest(std::string_view series,
                       const HistogramSnapshot& snapshot,
                       std::uint64_t now_nanos) {
  auto it = history_.find(series);
  if (it == history_.end()) {
    it = history_.emplace(std::string(series), std::vector<TimedSnapshot>())
             .first;
  }
  it->second.push_back(TimedSnapshot{now_nanos, snapshot});
}

std::vector<SloEvaluation> SloEngine::Evaluate(std::uint64_t now_nanos) const {
  std::vector<SloEvaluation> evaluations;
  evaluations.reserve(objectives_.size());
  for (const SloObjective& objective : objectives_) {
    SloEvaluation eval;
    eval.objective = objective;
    eval.fast.window_seconds = objective.fast_window_seconds;
    eval.fast.alert = objective.fast_burn_alert;
    eval.slow.window_seconds = objective.slow_window_seconds;
    eval.slow.alert = objective.slow_burn_alert;
    const auto it = history_.find(objective.series);
    if (it != history_.end() && !it->second.empty()) {
      eval.have_series = true;
      const std::vector<TimedSnapshot>& history = it->second;
      const TimedSnapshot& newest = history.back();
      eval.observations = newest.snapshot.count;
      eval.quantile_value =
          HistogramSnapshotQuantile(newest.snapshot, objective.quantile);
      eval.quantile_ok = eval.observations == 0 ||
                         eval.quantile_value <= objective.threshold;
      const BucketTotals now_totals = TotalsOf(newest.snapshot);
      for (SloWindowEval* window : {&eval.fast, &eval.slow}) {
        const double window_nanos = window->window_seconds * 1e9;
        const std::uint64_t window_start =
            static_cast<double>(now_nanos) > window_nanos
                ? now_nanos - static_cast<std::uint64_t>(window_nanos)
                : 0;
        // Baseline: the newest *earlier* sample at or before the window
        // start.  The newest sample itself never serves as its own
        // baseline, and with no eligible sample the baseline is the
        // implicit empty snapshot — the window clamps to all history.
        const TimedSnapshot* baseline = nullptr;
        for (std::size_t i = 0; i + 1 < history.size(); ++i) {
          if (history[i].nanos <= window_start) baseline = &history[i];
        }
        window->clamped = baseline == nullptr;
        BucketTotals base;
        if (baseline != nullptr) base = TotalsOf(baseline->snapshot);
        std::uint64_t total = now_totals.count >= base.count
                                  ? now_totals.count - base.count
                                  : 0;
        std::uint64_t bad = 0;
        for (const auto& [upper, n] : now_totals.by_bound) {
          if (upper <= objective.threshold) continue;
          const auto base_it = base.by_bound.find(upper);
          const std::uint64_t before =
              base_it != base.by_bound.end() ? base_it->second : 0;
          bad += n >= before ? n - before : 0;
        }
        bad += now_totals.overflow >= base.overflow
                   ? now_totals.overflow - base.overflow
                   : 0;
        window->total = total;
        window->bad = std::min(bad, total);
        if (total > 0) {
          window->bad_fraction = static_cast<double>(window->bad) /
                                 static_cast<double>(total);
          const double budget = 1.0 - objective.target;
          window->burn_rate =
              budget > 0.0 ? window->bad_fraction / budget : 0.0;
        }
        window->alerting = window->burn_rate > window->alert;
      }
      eval.burning = eval.fast.alerting && eval.slow.alerting;
    }
    evaluations.push_back(std::move(eval));
  }
  return evaluations;
}

std::vector<SloObjective> DefaultSloObjectives() {
  // Thresholds are modeled-clock seconds, sized so the deterministic
  // in-tree runs (whose generation phases advance the manual clock by
  // tens of seconds) pass with headroom while a genuine tail blowup —
  // or an injected one — burns.
  std::vector<SloObjective> objectives;
  {
    SloObjective fetch;
    fetch.name = "fetch-latency-p99";
    fetch.series = "fetch.latency";
    fetch.quantile = 99.0;
    fetch.threshold = 600.0;
    fetch.target = 0.99;
    objectives.push_back(std::move(fetch));
  }
  {
    SloObjective stream;
    stream.name = "stream-latency-p99";
    stream.series = "http2.stream_seconds";
    stream.quantile = 99.0;
    stream.threshold = 600.0;
    stream.target = 0.99;
    objectives.push_back(std::move(stream));
  }
  return objectives;
}

util::Result<SloObjective> ParseSloObjectiveSpec(std::string_view spec) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string_view::npos) comma = spec.size();
    fields.emplace_back(spec.substr(start, comma - start));
    start = comma + 1;
  }
  if (fields.size() < 4 || fields.size() > 5) {
    return Error(ErrorCode::kInvalidArgument,
                 "objective spec must be name,series,quantile,threshold"
                 "[,target]: " +
                     std::string(spec));
  }
  SloObjective objective;
  objective.name = fields[0];
  objective.series = fields[1];
  objective.quantile = std::strtod(fields[2].c_str(), nullptr);
  objective.threshold = std::strtod(fields[3].c_str(), nullptr);
  if (fields.size() == 5) {
    objective.target = std::strtod(fields[4].c_str(), nullptr);
  }
  if (objective.name.empty() || objective.series.empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "objective spec needs a name and a series: " +
                     std::string(spec));
  }
  if (!(objective.quantile >= 0.0 && objective.quantile <= 100.0)) {
    return Error(ErrorCode::kInvalidArgument,
                 "objective quantile must be in [0, 100]: " + fields[2]);
  }
  if (!(objective.target > 0.0 && objective.target < 1.0)) {
    return Error(ErrorCode::kInvalidArgument,
                 "objective target must be in (0, 1): " +
                     (fields.size() == 5 ? fields[4] : std::string()));
  }
  return objective;
}

std::string RenderSloReport(const std::vector<SloEvaluation>& evaluations) {
  std::string out;
  char line[256];
  out += "SLO REPORT\n";
  out += "==========\n";
  std::size_t burning = 0;
  for (const SloEvaluation& eval : evaluations) {
    out += '\n';
    out += "objective " + eval.objective.name + "\n";
    std::snprintf(line, sizeof(line),
                  "  series       %s · p%s <= %s s · target %s%% good\n",
                  eval.objective.series.c_str(),
                  FormatCompactDouble(eval.objective.quantile).c_str(),
                  FormatCompactDouble(eval.objective.threshold).c_str(),
                  FormatCompactDouble(eval.objective.target * 100.0).c_str());
    out += line;
    if (!eval.have_series) {
      out += "  status       NO DATA\n";
      continue;
    }
    std::snprintf(
        line, sizeof(line), "  quantile     p%s = %s s over %llu obs · %s\n",
        FormatCompactDouble(eval.objective.quantile).c_str(),
        FormatCompactDouble(eval.quantile_value).c_str(),
        static_cast<unsigned long long>(eval.observations),
        eval.quantile_ok ? "ok" : "VIOLATED");
    out += line;
    const struct {
      const char* label;
      const SloWindowEval& window;
    } windows[] = {{"fast window", eval.fast}, {"slow window", eval.slow}};
    for (const auto& [label, window] : windows) {
      std::snprintf(
          line, sizeof(line),
          "  %s  %s s%s: total %llu · bad %llu · burn %sx · alert > %sx · "
          "%s\n",
          label, FormatCompactDouble(window.window_seconds).c_str(),
          window.clamped ? " (clamped)" : "",
          static_cast<unsigned long long>(window.total),
          static_cast<unsigned long long>(window.bad),
          FormatCompactDouble(window.burn_rate).c_str(),
          FormatCompactDouble(window.alert).c_str(),
          window.alerting ? "ALERTING" : "ok");
      out += line;
    }
    out += std::string("  status       ") +
           (eval.burning ? "BURNING" : "OK") + "\n";
    if (eval.burning) ++burning;
  }
  std::snprintf(line, sizeof(line),
                "\noverall: %s · %zu of %zu objectives burning\n",
                burning == 0 ? "OK" : "BURNING", burning, evaluations.size());
  out += line;
  return out;
}

}  // namespace sww::obs
