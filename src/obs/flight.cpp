#include "obs/flight.hpp"

#include <algorithm>
#include <cstdio>

#include "json/json.hpp"

namespace sww::obs {

const char* TapDirectionName(TapDirection direction) {
  return direction == TapDirection::kSent ? "sent" : "recv";
}

ConnectionTap::ConnectionTap(std::string label, std::size_t capacity)
    : label_(std::move(label)), capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 64));
}

void ConnectionTap::Record(FrameRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  record.sequence = total_++;
  if (record.direction == TapDirection::kSent) {
    ++total_sent_;
  } else {
    ++total_received_;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
    next_ = (next_ + 1) % capacity_;
  }
}

void ConnectionTap::Annotate(
    TapDirection direction, std::uint8_t type, std::uint32_t stream_id,
    std::vector<std::pair<std::string, std::string>> details) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Newest first: walk backwards from the write cursor.
  for (std::size_t offset = 0; offset < ring_.size(); ++offset) {
    const std::size_t index =
        (next_ + ring_.size() - 1 - offset) % ring_.size();
    FrameRecord& record = ring_[index];
    if (record.direction == direction && record.type == type &&
        record.stream_id == stream_id) {
      record.details = std::move(details);
      return;
    }
  }
}

std::vector<FrameRecord> ConnectionTap::Records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FrameRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
  }
  return out;
}

std::uint64_t ConnectionTap::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t ConnectionTap::total_sent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_sent_;
}

std::uint64_t ConnectionTap::total_received() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_received_;
}

std::uint64_t ConnectionTap::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ - ring_.size();
}

void ConnectionTap::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  total_ = total_sent_ = total_received_ = 0;
}

FlightRecorder& FlightRecorder::Default() {
  static FlightRecorder* recorder = new FlightRecorder();  // see Registry
  return *recorder;
}

ConnectionTap& FlightRecorder::GetTap(std::string_view label,
                                      std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& tap : taps_) {
    if (tap->label() == label) return *tap;
  }
  taps_.push_back(std::make_unique<ConnectionTap>(std::string(label), capacity));
  return *taps_.back();
}

std::vector<const ConnectionTap*> FlightRecorder::taps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const ConnectionTap*> out;
  out.reserve(taps_.size());
  for (const auto& tap : taps_) out.push_back(tap.get());
  return out;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& tap : taps_) tap->Clear();
}

namespace {

struct MergedRecord {
  const ConnectionTap* tap;
  FrameRecord record;
};

/// Merge every tap's buffered records into one deterministic order:
/// timestamp, then tap label, then per-tap sequence.
std::vector<MergedRecord> MergeRecords(
    const std::vector<const ConnectionTap*>& taps) {
  std::vector<MergedRecord> merged;
  for (const ConnectionTap* tap : taps) {
    if (tap == nullptr) continue;
    for (FrameRecord& record : tap->Records()) {
      merged.push_back(MergedRecord{tap, std::move(record)});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const MergedRecord& a, const MergedRecord& b) {
                     if (a.record.timestamp_nanos != b.record.timestamp_nanos) {
                       return a.record.timestamp_nanos < b.record.timestamp_nanos;
                     }
                     if (a.tap->label() != b.tap->label()) {
                       return a.tap->label() < b.tap->label();
                     }
                     return a.record.sequence < b.record.sequence;
                   });
  return merged;
}

void AppendSeconds(std::string& out, std::uint64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f",
                static_cast<double>(nanos) * 1e-9);
  out += buf;
}

}  // namespace

std::string RenderFramesText(const std::vector<const ConnectionTap*>& taps) {
  std::string out;
  for (const MergedRecord& entry : MergeRecords(taps)) {
    const FrameRecord& r = entry.record;
    out += '[';
    AppendSeconds(out, r.timestamp_nanos);
    out += "] ";
    out += entry.tap->label();
    out += r.direction == TapDirection::kSent ? " > " : " < ";
    out += r.type_name;
    out += " len=" + std::to_string(r.length);
    out += " stream=" + std::to_string(r.stream_id);
    char flags[16];
    std::snprintf(flags, sizeof(flags), " flags=0x%x", r.flags);
    out += flags;
    if (!r.details.empty()) {
      out += " {";
      for (std::size_t i = 0; i < r.details.size(); ++i) {
        if (i != 0) out += ", ";
        out += r.details[i].first + ": " + r.details[i].second;
      }
      out += '}';
    }
    out += '\n';
  }
  for (const ConnectionTap* tap : taps) {
    if (tap == nullptr) continue;
    out += "# tap " + tap->label() +
           ": recorded=" + std::to_string(tap->total_recorded()) +
           " sent=" + std::to_string(tap->total_sent()) +
           " received=" + std::to_string(tap->total_received()) +
           " dropped=" + std::to_string(tap->dropped()) + '\n';
  }
  return out;
}

std::string RenderFramesJsonLines(
    const std::vector<const ConnectionTap*>& taps) {
  std::string out;
  for (const MergedRecord& entry : MergeRecords(taps)) {
    const FrameRecord& r = entry.record;
    json::Object line;
    line["kind"] = "frame";
    line["tap"] = entry.tap->label();
    line["direction"] = TapDirectionName(r.direction);
    line["type"] = r.type;
    line["type_name"] = r.type_name;
    line["stream_id"] = r.stream_id;
    line["flags"] = r.flags;
    line["length"] = r.length;
    line["t_seconds"] = static_cast<double>(r.timestamp_nanos) * 1e-9;
    line["seq"] = r.sequence;
    if (!r.details.empty()) {
      json::Object details;
      for (const auto& [key, value] : r.details) details[key] = value;
      line["details"] = std::move(details);
    }
    out += json::Value(line).Dump();
    out += '\n';
  }
  for (const ConnectionTap* tap : taps) {
    if (tap == nullptr) continue;
    json::Object line;
    line["kind"] = "tap_summary";
    line["tap"] = tap->label();
    line["capacity"] = tap->capacity();
    line["recorded"] = tap->total_recorded();
    line["sent"] = tap->total_sent();
    line["received"] = tap->total_received();
    line["dropped"] = tap->dropped();
    out += json::Value(line).Dump();
    out += '\n';
  }
  return out;
}

}  // namespace sww::obs
