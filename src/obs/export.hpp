// export.hpp — serialize telemetry for humans and tools.
//
// Two formats:
//   * JSON-lines metrics snapshot — one instrument per line, greppable
//     and trivially diffable between runs.
//   * Chrome trace_event JSON — open in chrome://tracing or
//     https://ui.perfetto.dev to see the span tree on a timeline.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/flight.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace sww::obs {

/// One JSON object per line:
///   {"kind":"counter","name":...,"value":...}
///   {"kind":"gauge","name":...,"value":...}
///   {"kind":"histogram","name":...,"count":...,"mean":...,"p50":...,...}
/// Names and values are JSON-escaped; non-finite numbers emit as null —
/// the output always re-parses with json::Parse.
std::string ExportJsonLines(const RegistrySnapshot& snapshot);

/// Chrome trace_event format: {"traceEvents":[...]} with one complete
/// ("ph":"X") event per finished span; span/parent/trace ids and
/// attributes ride in "args".  Timestamps are microseconds from the span
/// clock.  Spans are grouped into per-role process tracks ("ph":"M"
/// process_name/thread_name metadata events): a span's track is its own
/// process label, else its nearest labeled ancestor's, else
/// `process_name` — so a stitched client→server→edge trace renders as
/// labeled tracks in Perfetto.
std::string ExportChromeTrace(const std::vector<Span>& spans,
                              std::string_view process_name = "sww");

/// Write `contents` to `path` whole (shared by every artifact writer).
util::Status WriteTextFile(const std::string& path, std::string_view contents);

/// Read `path` whole; kIo when it cannot be opened or read.  The bench
/// trajectory writer uses this to fold new runs onto the existing file.
util::Result<std::string> ReadTextFile(const std::string& path);

/// Convenience: export the default tracer + registry to files.  The trace
/// file is Chrome trace JSON, the metrics file is JSON-lines.
util::Status WriteTraceFile(const std::string& path,
                            const std::vector<Span>& spans,
                            std::string_view process_name = "sww");
util::Status WriteMetricsFile(const std::string& path,
                              const RegistrySnapshot& snapshot);
/// Flight-recorder frame log as JSONL (RenderFramesJsonLines).
util::Status WriteFramesFile(const std::string& path,
                             const std::vector<const ConnectionTap*>& taps);

}  // namespace sww::obs
