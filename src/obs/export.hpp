// export.hpp — serialize telemetry for humans and tools.
//
// Two formats:
//   * JSON-lines metrics snapshot — one instrument per line, greppable
//     and trivially diffable between runs.
//   * Chrome trace_event JSON — open in chrome://tracing or
//     https://ui.perfetto.dev to see the span tree on a timeline.
#pragma once

#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace sww::obs {

/// One JSON object per line:
///   {"kind":"counter","name":...,"value":...}
///   {"kind":"gauge","name":...,"value":...}
///   {"kind":"histogram","name":...,"count":...,"mean":...,"p50":...,...}
std::string ExportJsonLines(const RegistrySnapshot& snapshot);

/// Chrome trace_event format: {"traceEvents":[...]} with one complete
/// ("ph":"X") event per finished span; parent/span ids and attributes
/// ride in "args".  Timestamps are microseconds from the span clock.
std::string ExportChromeTrace(const std::vector<Span>& spans,
                              std::string_view process_name = "sww");

/// Convenience: export the default tracer + registry to files.  The trace
/// file is Chrome trace JSON, the metrics file is JSON-lines.
util::Status WriteTraceFile(const std::string& path,
                            const std::vector<Span>& spans,
                            std::string_view process_name = "sww");
util::Status WriteMetricsFile(const std::string& path,
                              const RegistrySnapshot& snapshot);

}  // namespace sww::obs
