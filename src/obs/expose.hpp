// expose.hpp — live exposition formats for the telemetry plane.
//
// Two machine-facing renderings of a RegistrySnapshot:
//
//   * Prometheus text format (text/plain; version=0.0.4) — what
//     `GET /metrics` serves and what `sww_top` scrapes.  Counters map to
//     counter series, gauges to gauge series, histograms to the classic
//     cumulative `_bucket{le="..."}` / `_sum` / `_count` triplet over the
//     occupied buckets of the shared log-linear grid.
//   * /debug/vars JSON — one pretty-printed json object with every
//     instrument plus the exporting clock's now_nanos, for humans with
//     curl and for the JSONL snapshot mode of `sww_top`.
//
// Both renderings are deterministic: instruments are sorted by name, no
// timestamps are embedded (now_nanos comes from the caller's clock, which
// is a ManualClock in tests and goldens), and doubles format via "%.9g".
//
// This layer deliberately knows nothing about HTTP — `GenerativeServer`
// routes /metrics and /debug/vars to these renderers, and any future
// transport (the epoll reactor) can do the same.
#pragma once

#include <cstdint>
#include <string>

#include "obs/registry.hpp"

namespace sww::obs {

/// Prometheus exposition: series are prefixed "sww_" with dots mapped to
/// underscores ("http2.frames_sent" → "sww_http2_frames_sent"), each
/// preceded by its `# TYPE` line.
std::string RenderPrometheusText(const RegistrySnapshot& snapshot);

/// The registry-name → Prometheus-series mapping used above
/// ("http2.frames_sent" → "sww_http2_frames_sent").  sww_top normalizes
/// JSONL instrument names through this so samples from both sources merge
/// under the same keys.
std::string PrometheusSeriesName(const std::string& name);

/// The /metrics content type (Prometheus text format 0.0.4).
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4";

/// expvar-style JSON document: {"now_nanos":..., "counters":{...},
/// "gauges":{...}, "histograms":{name:{count,sum,min,max,mean,p50,p95,
/// p99,bounds,counts}}}.  Ends with a newline.
std::string RenderDebugVarsJson(const RegistrySnapshot& snapshot,
                                std::int64_t now_nanos);

}  // namespace sww::obs
