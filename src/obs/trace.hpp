// trace.hpp — span tracing across the SWW request path.
//
// A span is a named interval with a parent link and string attributes:
// the SETTINGS round-trip, one HTTP/2 stream's lifetime, one server
// request, one client page fetch, one generated asset.  Spans nest
// automatically: BeginSpan parents to the innermost open span on the
// calling thread, so a page fetch span ends up owning its request,
// stream, and per-asset generation children without any plumbing.
//
// Time comes from an injectable obs::Clock (clock.hpp); under a
// ManualClock the tracer is fully deterministic, and simulated
// generation costs become span durations via Clock::AdvanceSimulated.
// Export finished spans with obs/export.hpp (Chrome trace_event JSON,
// viewable in chrome://tracing or Perfetto).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/clock.hpp"

namespace sww::obs {

/// Identifies one span within a Tracer.  0 is "no span".
using SpanId = std::uint64_t;

struct Span {
  SpanId id = 0;
  SpanId parent = 0;
  std::string name;
  std::string category;
  std::uint64_t start_nanos = 0;
  std::uint64_t end_nanos = 0;
  bool finished = false;
  std::vector<std::pair<std::string, std::string>> attributes;

  double DurationSeconds() const {
    return static_cast<double>(end_nanos - start_nanos) * 1e-9;
  }
};

class Tracer {
 public:
  /// The process-wide tracer every component records into by default.
  static Tracer& Default();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Install a time source (not owned; must outlive the tracer or be
  /// replaced first).  nullptr restores the built-in wall clock.
  void SetClock(Clock* clock);
  Clock& clock();

  /// Tracing is on by default; when disabled, Begin/End are no-ops and
  /// BeginSpan returns 0 (every operation accepts id 0 harmlessly).
  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Open a span parented to the calling thread's innermost open span
  /// (or `parent`, if nonzero).  Pushes onto the thread's span stack.
  SpanId BeginSpan(std::string_view name, std::string_view category = "",
                   SpanId parent = 0);
  /// Open a span without touching the thread stack — for intervals that
  /// outlive the call frame (a stream's lifetime, a SETTINGS round-trip).
  SpanId BeginAsyncSpan(std::string_view name, std::string_view category = "",
                        SpanId parent = 0);
  void AddAttribute(SpanId id, std::string_view key, std::string_view value);
  /// Close the span; stamps the end time and pops it from the thread
  /// stack if present.  Ending an already-finished or unknown id is a
  /// no-op.
  void EndSpan(SpanId id);

  /// The innermost open span on the calling thread (0 when none).
  SpanId CurrentSpan() const;

  /// All finished spans, in finish order.
  std::vector<Span> FinishedSpans() const;
  std::size_t finished_count() const;

  /// Drop every span (open spans too) and reset the id sequence; the
  /// clock and enabled flag stay.
  void Clear();

 private:
  mutable std::mutex mutex_;
  bool enabled_ = true;
  SystemClock system_clock_;
  Clock* clock_;  // never null
  SpanId next_id_ = 1;
  std::vector<Span> open_;      // unfinished spans, unordered
  std::vector<Span> finished_;  // finish order
};

/// RAII span on the default tracer: opens on construction (auto-parented
/// to the enclosing ScopedSpan on this thread), ends on destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, std::string_view category = "")
      : tracer_(&Tracer::Default()),
        id_(tracer_->BeginSpan(name, category)) {}
  ~ScopedSpan() { tracer_->EndSpan(id_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  SpanId id() const { return id_; }
  void AddAttribute(std::string_view key, std::string_view value) {
    tracer_->AddAttribute(id_, key, value);
  }

 private:
  Tracer* tracer_;
  SpanId id_;
};

}  // namespace sww::obs
