// trace.hpp — span tracing across the SWW request path.
//
// A span is a named interval with a parent link and string attributes:
// the SETTINGS round-trip, one HTTP/2 stream's lifetime, one server
// request, one client page fetch, one generated asset.  Spans nest
// automatically: BeginSpan parents to the innermost open span on the
// calling thread, so a page fetch span ends up owning its request,
// stream, and per-asset generation children without any plumbing.
//
// Time comes from an injectable obs::Clock (clock.hpp); under a
// ManualClock the tracer is fully deterministic, and simulated
// generation costs become span durations via Clock::AdvanceSimulated.
// Export finished spans with obs/export.hpp (Chrome trace_event JSON,
// viewable in chrome://tracing or Perfetto).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/clock.hpp"

namespace sww::obs {

/// Identifies one span within a Tracer.  0 is "no span".
using SpanId = std::uint64_t;

/// Identifies one distributed trace (a page fetch end to end).  Root spans
/// mint a fresh trace id; children inherit their parent's, including
/// across the sww-trace request header.  0 is "no trace".
using TraceId = std::uint64_t;

struct Span {
  SpanId id = 0;
  SpanId parent = 0;
  TraceId trace_id = 0;
  std::string name;
  std::string category;
  /// Role/process track for the exporter ("client", "server", "edge",
  /// "origin").  Empty means: inherit the nearest labeled ancestor's, or
  /// the export call's default process.
  std::string process;
  std::uint64_t start_nanos = 0;
  std::uint64_t end_nanos = 0;
  bool finished = false;
  std::vector<std::pair<std::string, std::string>> attributes;

  double DurationSeconds() const {
    return static_cast<double>(end_nanos - start_nanos) * 1e-9;
  }
};

/// What crosses a process boundary: enough to parent a remote span.
struct SpanContext {
  TraceId trace_id = 0;
  SpanId span_id = 0;

  bool valid() const { return trace_id != 0 && span_id != 0; }
};

/// Name of the request header carrying the trace context (client → server,
/// user → edge): the SWW analogue of W3C traceparent.
inline constexpr std::string_view kTraceHeaderName = "sww-trace";

/// W3C-traceparent-like encoding: "00-<trace id, 32 hex>-<parent span id,
/// 16 hex>-01".  Returns "" for an invalid context.
std::string FormatTraceHeader(const SpanContext& context);

/// Parse the header back; nullopt on any malformed input (a peer that does
/// not speak sww-trace simply starts a fresh trace).
std::optional<SpanContext> ParseTraceHeader(std::string_view header);

class Tracer {
 public:
  /// The process-wide tracer every component records into by default.
  static Tracer& Default();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Install a time source (not owned; must outlive the tracer or be
  /// replaced first).  nullptr restores the built-in wall clock.
  void SetClock(Clock* clock);
  Clock& clock();

  /// Tracing is on by default; when disabled, Begin/End are no-ops and
  /// BeginSpan returns 0 (every operation accepts id 0 harmlessly).
  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Open a span parented to the calling thread's innermost open span
  /// (or `parent`, if nonzero).  Pushes onto the thread's span stack.
  SpanId BeginSpan(std::string_view name, std::string_view category = "",
                   SpanId parent = 0);
  /// Open a span without touching the thread stack — for intervals that
  /// outlive the call frame (a stream's lifetime, a SETTINGS round-trip).
  SpanId BeginAsyncSpan(std::string_view name, std::string_view category = "",
                        SpanId parent = 0);
  /// Open a span whose parent arrived from another role via the sww-trace
  /// header: the span adopts the remote trace id and parent span id, so
  /// the whole page fetch exports as ONE tree.  Pushes onto the thread's
  /// span stack (children nest under it as usual).  An invalid context
  /// degrades to a plain BeginSpan.
  SpanId BeginSpanWithContext(std::string_view name, std::string_view category,
                              const SpanContext& remote_parent);
  void AddAttribute(SpanId id, std::string_view key, std::string_view value);
  /// Label the span's process/role track for the exporter.
  void SetSpanProcess(SpanId id, std::string_view process);
  /// The propagation context of a span (for the sww-trace header).
  SpanContext ContextOf(SpanId id) const;
  /// Close the span; stamps the end time and pops it from the thread
  /// stack if present.  Ending an already-finished or unknown id is a
  /// no-op.
  void EndSpan(SpanId id);

  /// The innermost open span on the calling thread (0 when none).
  SpanId CurrentSpan() const;

  /// All finished spans, in finish order.
  std::vector<Span> FinishedSpans() const;
  std::size_t finished_count() const;

  /// Drop every span (open spans too) and reset the id sequence; the
  /// clock and enabled flag stay.
  void Clear();

 private:
  SpanId BeginAsyncSpanLocked(std::string_view name, std::string_view category,
                              SpanId parent, TraceId trace_id);

  mutable std::mutex mutex_;
  bool enabled_ = true;
  SystemClock system_clock_;
  Clock* clock_;  // never null
  SpanId next_id_ = 1;
  TraceId next_trace_id_ = 1;
  std::vector<Span> open_;      // unfinished spans, unordered
  std::vector<Span> finished_;  // finish order
  std::map<SpanId, TraceId> span_traces_;  // id → trace, open and finished
};

/// RAII span on the default tracer: opens on construction (auto-parented
/// to the enclosing ScopedSpan on this thread), ends on destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, std::string_view category = "")
      : tracer_(&Tracer::Default()),
        id_(tracer_->BeginSpan(name, category)) {}
  /// Adopt a remote parent (sww-trace header); invalid contexts degrade to
  /// the plain auto-parented form.
  ScopedSpan(std::string_view name, std::string_view category,
             const SpanContext& remote_parent)
      : tracer_(&Tracer::Default()),
        id_(tracer_->BeginSpanWithContext(name, category, remote_parent)) {}
  ~ScopedSpan() { tracer_->EndSpan(id_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  SpanId id() const { return id_; }
  void AddAttribute(std::string_view key, std::string_view value) {
    tracer_->AddAttribute(id_, key, value);
  }
  void SetProcess(std::string_view process) {
    tracer_->SetSpanProcess(id_, process);
  }
  SpanContext context() const { return tracer_->ContextOf(id_); }

 private:
  Tracer* tracer_;
  SpanId id_;
};

}  // namespace sww::obs
