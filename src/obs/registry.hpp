// registry.hpp — the process-wide metrics registry.
//
// Every layer of the SWW stack (http2 framing, the generative server and
// client, the genai pipeline, the caches, the byte pumps) records into one
// named-instrument registry, so a single Snapshot() tells the whole story
// of a run: how many frames crossed the wire, which serve modes were
// negotiated, what generation cost, where the caches hit.  Three
// instrument kinds:
//
//   * Counter   — monotonically increasing integer (requests, frames, hits)
//   * Gauge     — arbitrary double, Set or Add (accumulated seconds, Wh)
//   * Histogram — fixed-bucket distribution of doubles with bounded-memory
//                 p50/p95/p99 snapshots (exact below the reservoir size,
//                 deterministic uniform-sample estimates above it)
//
// Instruments are created on first use and live for the registry's
// lifetime; handles returned by Get* stay valid across Reset(), which
// zeroes values but never destroys instruments (components cache the
// pointers on their hot paths).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sww::obs {

/// Counter spreads its value over cache-line-padded cells indexed by a
/// per-thread slot, so pool workers incrementing the same instrument never
/// bounce one line between cores; value() merges the cells.  The merged
/// read is exact whenever the counter is quiescent (every Snapshot() in
/// the tests and benches happens after the pool has drained).
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    cells_[ThreadCell()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kCells = 8;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };

  /// Stable per-thread cell index: threads take slots round-robin on
  /// first use, so up to kCells concurrent writers touch distinct lines.
  static std::size_t ThreadCell();

  std::array<Cell, kCells> cells_;
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time view of one histogram.
struct HistogramSnapshot {
  /// Upper bounds of the fixed buckets (last bucket is +inf, implied).
  std::vector<double> bounds;
  /// counts.size() == bounds.size() + 1 (overflow bucket last).
  std::vector<std::uint64_t> counts;
  std::size_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Percentiles come from a fixed-size reservoir (algorithm R with a
/// deterministic seeded generator), so a histogram's memory is bounded no
/// matter how long the run: below kReservoirSize observations the
/// reservoir holds every sample and p50/p95/p99 are exact; above it they
/// are a uniform-sample estimate.  Deterministic: the same observation
/// sequence always yields the same snapshot.
class Histogram {
 public:
  /// Samples retained for percentile estimation (~8 KiB per histogram).
  static constexpr std::size_t kReservoirSize = 1024;

  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::vector<double> bounds_;          // sorted upper bounds
  std::vector<std::uint64_t> counts_;   // bounds_.size() + 1 buckets
  std::vector<double> reservoir_;       // ≤ kReservoirSize samples
  std::uint64_t rng_state_;             // SplitMix64 replacement stream
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::size_t count_ = 0;
};

/// Common bucket presets.
std::vector<double> LatencyBucketsSeconds();  ///< 100 µs … ~1000 s, log scale
std::vector<double> ByteBuckets();            ///< 64 B … 16 MiB, powers of 4

/// Point-in-time view of the whole registry.  Deterministic: instruments
/// are keyed by name in sorted order.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class Registry {
 public:
  /// The process-wide registry every component records into by default.
  static Registry& Default();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create.  Returned references stay valid for the registry's
  /// lifetime (including across Reset).
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// `bounds` is honored only on first creation; empty means
  /// LatencyBucketsSeconds().
  Histogram& GetHistogram(std::string_view name, std::vector<double> bounds = {});

  RegistrySnapshot Snapshot() const;

  /// Zero every instrument (tests and benches isolate runs with this).
  /// Instrument handles remain valid.
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace sww::obs
