// registry.hpp — the process-wide metrics registry.
//
// Every layer of the SWW stack (http2 framing, the generative server and
// client, the genai pipeline, the caches, the byte pumps) records into one
// named-instrument registry, so a single Snapshot() tells the whole story
// of a run: how many frames crossed the wire, which serve modes were
// negotiated, what generation cost, where the caches hit.  Three
// instrument kinds:
//
//   * Counter   — monotonically increasing integer (requests, frames, hits)
//   * Gauge     — arbitrary double, Set or Add (accumulated seconds, Wh)
//   * Histogram — lock-free HDR-style log-linear distribution of doubles
//                 with bounded relative bucket error; p50/p95/p99 come from
//                 the bucket grid (within 1/32 relative error), never from
//                 sampling, so concurrent recording stays deterministic
//
// Instruments are created on first use and live for the registry's
// lifetime; handles returned by Get* stay valid across Reset(), which
// zeroes values but never destroys instruments (components cache the
// pointers on their hot paths).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sww::obs {

/// Counter spreads its value over cache-line-padded cells indexed by a
/// per-thread slot, so pool workers incrementing the same instrument never
/// bounce one line between cores; value() merges the cells.  The merged
/// read is exact whenever the counter is quiescent (every Snapshot() in
/// the tests and benches happens after the pool has drained).
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    cells_[ThreadCell()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kCells = 8;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };

  /// Stable per-thread cell index: threads take slots round-robin on
  /// first use, so up to kCells concurrent writers touch distinct lines.
  /// Histogram shares the same slot assignment for its own cells.
  /// Defined in the header on purpose: an out-of-line call here used to
  /// cost more than the fetch_add it guards, and Add/Observe are the two
  /// operations the always-on overhead gate prices per event.
  static std::size_t ThreadCell() {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t cell =
        next.fetch_add(1, std::memory_order_relaxed) % kCells;
    return cell;
  }
  friend class Histogram;

  std::array<Cell, kCells> cells_;
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A recent traced observation retained by one histogram bucket: which
/// fetch (trace id), what value, and when.  `trace_id == 0` means the
/// bucket has no exemplar (untraced observations never overwrite one).
struct HistogramExemplar {
  std::uint64_t trace_id = 0;
  double value = 0.0;
  std::uint64_t timestamp_nanos = 0;
};

/// Point-in-time view of one histogram.  `bounds` lists the upper bounds
/// of the *occupied* buckets of the fixed log-linear grid (empty grid
/// buckets are compressed away), in increasing order; the grid itself is
/// process-wide, so snapshots from different histograms — or different
/// processes — merge exactly (MergeHistogramSnapshots).
struct HistogramSnapshot {
  /// Upper bounds of the occupied buckets (the +inf overflow bucket is
  /// implied last and has no entry here).
  std::vector<double> bounds;
  /// counts.size() == bounds.size() + 1 (overflow bucket last).
  std::vector<std::uint64_t> counts;
  /// Per-bucket exemplars, parallel to `counts` (overflow last).  Either
  /// empty (no exemplar support in the producer) or counts.size() long;
  /// entries with trace_id == 0 are vacant.
  std::vector<HistogramExemplar> exemplars;
  std::size_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Lock-free HDR-style log-linear histogram.
///
/// The value axis is divided into octaves [2^o, 2^(o+1)) for
/// o = kMinExponent .. kMaxExponent, each split into kSubBuckets equal
/// linear sub-buckets, plus an underflow bucket (values < 2^kMinExponent,
/// including zero, negatives, and NaN) and an overflow bucket (values
/// ≥ 2^(kMaxExponent+1)).  Within the tracked range the relative bucket
/// width is 1/kSubBuckets (3.125%), so a quantile read from a bucket
/// midpoint is within ±1/(2·kSubBuckets) ≈ 1.6% of any value in that
/// bucket.  The tracked range 2^-30 … 2^30 covers sub-nanosecond latencies
/// through gigabyte byte counts.
///
/// Recording is wait-free: like Counter, the buckets are spread over
/// cache-line-padded per-thread cells (bucket increment + count are plain
/// fetch_add; sum/min/max are short CAS loops).  Snapshot() merges the
/// cells; it is exact when the histogram is quiescent, and bucket counts,
/// count, min, max, and every quantile are deterministic even under
/// concurrent recording (only `sum` — and hence `mean` — depends on
/// floating-point accumulation order).
class Histogram {
 public:
  static constexpr std::size_t kSubBuckets = 32;
  static constexpr int kMinExponent = -30;
  static constexpr int kMaxExponent = 29;
  static constexpr std::size_t kOctaves =
      static_cast<std::size_t>(kMaxExponent - kMinExponent + 1);
  /// Underflow bucket at index 0, overflow bucket last.
  static constexpr std::size_t kBucketCount = kOctaves * kSubBuckets + 2;
  /// Smallest / one-past-largest trackable value (2^-30 and 2^30, exact).
  static constexpr double kMinValue = 1.0 / (1ull << 30);
  static constexpr double kMaxValue = static_cast<double>(1ull << 30);

  Histogram();

  void Observe(double value);
  /// Traced observation: record `value` as usual AND stamp the bucket's
  /// exemplar slot with (trace_id, value, timestamp).  The slot is a
  /// per-bucket seqlock shared by all cells — writers try-lock and skip
  /// on contention (an exemplar is "a recent traced observation", not an
  /// exact register), so the hot path never blocks.  trace_id 0 is
  /// treated as untraced and degrades to plain Observe.
  void Observe(double value, std::uint64_t trace_id,
               std::uint64_t timestamp_nanos);
  HistogramSnapshot Snapshot() const;
  /// Zero every bucket.  Like Counter::Reset, callers must be quiescent.
  void Reset();

  /// Grid geometry, shared with snapshot mergers and the sww_top
  /// aggregator (which reconstructs bucket extents from exposition
  /// formats that only carry upper bounds).
  static std::size_t BucketIndex(double value);
  static double BucketUpperBound(std::size_t index);
  /// Exact lower bound of the grid bucket whose upper bound is `upper`
  /// (both ends are exactly representable, so this is reconstruction,
  /// not approximation).  Returns 0 for non-positive or +inf input.
  static double LowerBoundForUpper(double upper);

 private:
  /// No per-cell observation count: the bucket array already holds it
  /// (underflow and overflow included), so Snapshot derives the total and
  /// Observe pays for one fewer atomic on the hot path.
  struct alignas(64) Cell {
    std::atomic<double> sum{0.0};
    std::atomic<std::uint64_t> min_bits;
    std::atomic<std::uint64_t> max_bits;
    std::array<std::atomic<std::uint64_t>, kBucketCount> buckets{};
  };
  static constexpr std::size_t kCells = 8;

  /// One seqlock per grid bucket, shared across cells (exemplar writes
  /// are rare — one per traced fetch — so sharing costs nothing while
  /// keeping "the newest exemplar for this bucket" a single slot).  Even
  /// seq = stable; a writer CASes it odd, stores the fields, then bumps
  /// it even again.  Writers that lose the CAS skip: best effort.
  struct ExemplarSlot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> value_bits{0};
    std::atomic<std::uint64_t> timestamp{0};
  };

  std::array<Cell, kCells> cells_;
  std::array<ExemplarSlot, kBucketCount> exemplars_;
};

/// Quantile estimate (q in [0, 100]) from a snapshot's bucket counts:
/// the midpoint of the bucket holding rank floor(q/100·(count−1)) — the
/// same rank convention as metrics::Percentile, the in-tree sort-based
/// oracle the differential tests compare against — clamped to
/// [min, max].  Deterministic given the bucket counts.
double HistogramSnapshotQuantile(const HistogramSnapshot& snapshot, double q);

/// Merge snapshots taken from the shared log-linear grid (possibly from
/// different processes): bucket counts add exactly; quantiles/mean are
/// recomputed from the merged buckets.
HistogramSnapshot MergeHistogramSnapshots(
    const std::vector<HistogramSnapshot>& parts);

/// Point-in-time view of the whole registry.  Deterministic: instruments
/// are keyed by name in sorted order.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class Registry {
 public:
  /// The process-wide registry every component records into by default.
  static Registry& Default();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create.  Returned references stay valid for the registry's
  /// lifetime (including across Reset).
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  RegistrySnapshot Snapshot() const;

  /// Zero every instrument (tests and benches isolate runs with this).
  /// Instrument handles remain valid.
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace sww::obs
