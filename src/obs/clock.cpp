#include "obs/clock.hpp"

#include <chrono>

namespace sww::obs {

std::uint64_t SystemClock::NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace sww::obs
