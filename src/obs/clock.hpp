// clock.hpp — injectable time source for the telemetry layer.
//
// Everything in obs:: reads time through this interface so the span
// tracer is deterministic wherever the repository already is: the
// simulation substrate reports *simulated* generation seconds, and the
// benches/tests want traces whose durations are those simulated costs,
// not wall-clock noise.  Components that model cost call
// AdvanceSimulated(); under a ManualClock that moves trace time by the
// simulated amount, under the wall clock it is a no-op and spans carry
// real durations.
#pragma once

#include <atomic>
#include <cstdint>

namespace sww::obs {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds.  The epoch is arbitrary but fixed per clock.
  virtual std::uint64_t NowNanos() = 0;

  /// Advance simulated time (no-op on wall clocks).  `seconds` < 0 is
  /// ignored.
  virtual void AdvanceSimulated(double seconds) { (void)seconds; }
};

/// Wall clock backed by std::chrono::steady_clock.
class SystemClock final : public Clock {
 public:
  std::uint64_t NowNanos() override;
};

/// Deterministic clock for tests and simulated-time benches: time moves
/// only when told to.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::uint64_t start_nanos = 0) : nanos_(start_nanos) {}

  std::uint64_t NowNanos() override { return nanos_.load(std::memory_order_relaxed); }

  void AdvanceNanos(std::uint64_t delta) {
    nanos_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Jump to an absolute instant — the load engine replays a precomputed
  /// virtual-time schedule, so it positions the clock per event rather
  /// than accumulating deltas.  Callers own monotonicity.
  void SetNanos(std::uint64_t nanos) {
    nanos_.store(nanos, std::memory_order_relaxed);
  }
  void AdvanceSeconds(double seconds) {
    if (seconds <= 0.0) return;
    AdvanceNanos(static_cast<std::uint64_t>(seconds * 1e9));
  }
  void AdvanceSimulated(double seconds) override { AdvanceSeconds(seconds); }

 private:
  std::atomic<std::uint64_t> nanos_;
};

}  // namespace sww::obs
