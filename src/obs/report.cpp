#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "energy/carbon.hpp"
#include "energy/network.hpp"
#include "json/json.hpp"

namespace sww::obs {

namespace {

double RatioOf(const std::map<std::string, std::uint64_t>& counters,
               const std::string& hits_name, const std::string& misses_name) {
  auto hits_it = counters.find(hits_name);
  auto misses_it = counters.find(misses_name);
  const std::uint64_t hits = hits_it == counters.end() ? 0 : hits_it->second;
  const std::uint64_t misses =
      misses_it == counters.end() ? 0 : misses_it->second;
  if (hits + misses == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(hits + misses);
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds);
  return buf;
}

}  // namespace

RunReport AnalyzeRun(const std::vector<Span>& spans,
                     const RegistrySnapshot& snapshot,
                     const std::vector<const ConnectionTap*>& taps) {
  RunReport report;

  // --- Spans: phase attribution, trace count, slowest ----------------------
  report.span_count = spans.size();
  std::set<TraceId> traces;
  std::uint64_t min_start = 0, max_end = 0;
  bool any = false;
  for (const Span& span : spans) {
    if (span.trace_id != 0) traces.insert(span.trace_id);
    if (!any || span.start_nanos < min_start) min_start = span.start_nanos;
    if (!any || span.end_nanos > max_end) max_end = span.end_nanos;
    any = true;
    if (span.name == "http2.settings_roundtrip") {
      report.negotiation_seconds += span.DurationSeconds();
    } else if (span.name == "http2.stream") {
      report.wire_seconds += span.DurationSeconds();
    } else if (span.category == "genai") {
      report.generation_seconds += span.DurationSeconds();
    }
  }
  report.trace_count = traces.size();
  if (any && max_end > min_start) {
    report.total_seconds = static_cast<double>(max_end - min_start) * 1e-9;
  }

  std::vector<const Span*> by_duration;
  by_duration.reserve(spans.size());
  for (const Span& span : spans) by_duration.push_back(&span);
  std::sort(by_duration.begin(), by_duration.end(),
            [](const Span* a, const Span* b) {
              const double da = a->DurationSeconds();
              const double db = b->DurationSeconds();
              if (da != db) return da > db;
              if (a->name != b->name) return a->name < b->name;
              return a->id < b->id;  // deterministic tie-break
            });
  const std::size_t top = std::min<std::size_t>(5, by_duration.size());
  for (std::size_t i = 0; i < top; ++i) {
    report.slowest.push_back({by_duration[i]->name, by_duration[i]->process,
                              by_duration[i]->DurationSeconds()});
  }

  // --- Metrics: protocol health and cache behaviour ------------------------
  if (auto it = snapshot.counters.find("http2.flow_control_stalls");
      it != snapshot.counters.end()) {
    report.flow_control_stalls = it->second;
  }
  report.prompt_cache_hit_ratio =
      RatioOf(snapshot.counters, "client.prompt_cache.hits",
              "client.prompt_cache.misses");
  report.edge_hit_ratio =
      RatioOf(snapshot.counters, "cdn.edge.hits", "cdn.edge.misses");

  // --- Cost: energy joules by phase, carbon ---------------------------------
  auto gauge_of = [&snapshot](const char* name) {
    auto it = snapshot.gauges.find(name);
    return it == snapshot.gauges.end() ? 0.0 : it->second;
  };
  auto counter_of = [&snapshot](const char* name) -> std::uint64_t {
    auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? 0 : it->second;
  };
  const double device_wh = gauge_of("genai.generation_energy_wh");
  const double datacenter_wh = gauge_of("server.generation_energy_wh") +
                               gauge_of("cdn.edge.generation_energy_wh");
  // http2.bytes_sent accumulates each endpoint's sends, so it already
  // counts every octet on the wire exactly once; the CDN legs are not
  // HTTP/2-tapped and add their own traffic.
  const std::uint64_t wire_bytes = counter_of("http2.bytes_sent") +
                                   counter_of("cdn.edge.bytes_to_users") +
                                   counter_of("cdn.edge.bytes_from_origin");
  const double network_wh = energy::TransmissionEnergyWh(wire_bytes);
  constexpr double kJoulesPerWh = 3600.0;
  report.cost.device_joules = device_wh * kJoulesPerWh;
  report.cost.network_joules = network_wh * kJoulesPerWh;
  report.cost.datacenter_joules = datacenter_wh * kJoulesPerWh;
  report.cost.grams_co2e = energy::OperationalCarbonGrams(
      device_wh + network_wh + datacenter_wh);

  // --- Wire taps: frame mix and ring accounting ----------------------------
  for (const ConnectionTap* tap : taps) {
    if (tap == nullptr) continue;
    report.frames_recorded += tap->total_recorded();
    report.frames_dropped += tap->dropped();
    for (const FrameRecord& record : tap->Records()) {
      ++report.frames_tapped;
      ++report.frame_mix[record.type_name];
      if (record.type_name == "SETTINGS") {
        for (const auto& [key, value] : record.details) {
          if (key == "GEN_ABILITY") report.settings_gen_ability_seen = true;
        }
      }
    }
  }
  return report;
}

std::string RenderReportText(const RunReport& report) {
  std::string out;
  out += "=== SWW run report ===\n";
  out += "phases:\n";
  out += "  negotiation_seconds: " + FormatSeconds(report.negotiation_seconds) + "\n";
  out += "  wire_seconds:        " + FormatSeconds(report.wire_seconds) + "\n";
  out += "  generation_seconds:  " + FormatSeconds(report.generation_seconds) + "\n";
  out += "  total_seconds:       " + FormatSeconds(report.total_seconds) + "\n";
  out += "traces:\n";
  out += "  span_count:  " + std::to_string(report.span_count) + "\n";
  out += "  trace_count: " + std::to_string(report.trace_count) + "\n";
  out += "slowest spans:\n";
  for (const RunReport::SlowSpan& slow : report.slowest) {
    out += "  " + FormatSeconds(slow.seconds) + "s  " + slow.name;
    if (!slow.process.empty()) out += " [" + slow.process + "]";
    out += "\n";
  }
  out += "protocol:\n";
  out += "  flow_control_stalls:     " +
         std::to_string(report.flow_control_stalls) + "\n";
  out += "  prompt_cache_hit_ratio:  " +
         FormatSeconds(report.prompt_cache_hit_ratio) + "\n";
  out += "  edge_hit_ratio:          " + FormatSeconds(report.edge_hit_ratio) +
         "\n";
  out += "  settings_gen_ability_seen: ";
  out += report.settings_gen_ability_seen ? "true" : "false";
  out += "\n";
  out += "cost (energy & carbon):\n";
  out += "  device_joules:      " + FormatSeconds(report.cost.device_joules) + "\n";
  out += "  network_joules:     " + FormatSeconds(report.cost.network_joules) + "\n";
  out += "  datacenter_joules:  " +
         FormatSeconds(report.cost.datacenter_joules) + "\n";
  out += "  total_joules:       " + FormatSeconds(report.cost.TotalJoules()) + "\n";
  out += "  grams_co2e:         " + FormatSeconds(report.cost.grams_co2e) + "\n";
  out += "wire (flight recorder):\n";
  out += "  frames_tapped:   " + std::to_string(report.frames_tapped) + "\n";
  out += "  frames_recorded: " + std::to_string(report.frames_recorded) + "\n";
  out += "  frames_dropped:  " + std::to_string(report.frames_dropped) + "\n";
  out += "  frame mix:\n";
  for (const auto& [type_name, count] : report.frame_mix) {
    out += "    " + type_name + ": " + std::to_string(count) + "\n";
  }
  return out;
}

std::string RenderReportJsonLines(const RunReport& report) {
  std::string out;
  {
    json::Value line{json::Object{}};
    line.Set("kind", "report");
    line.Set("negotiation_seconds", report.negotiation_seconds);
    line.Set("wire_seconds", report.wire_seconds);
    line.Set("generation_seconds", report.generation_seconds);
    line.Set("total_seconds", report.total_seconds);
    line.Set("span_count", report.span_count);
    line.Set("trace_count", report.trace_count);
    line.Set("flow_control_stalls",
             static_cast<std::size_t>(report.flow_control_stalls));
    line.Set("prompt_cache_hit_ratio", report.prompt_cache_hit_ratio);
    line.Set("edge_hit_ratio", report.edge_hit_ratio);
    line.Set("frames_tapped", static_cast<std::size_t>(report.frames_tapped));
    line.Set("frames_recorded",
             static_cast<std::size_t>(report.frames_recorded));
    line.Set("frames_dropped", static_cast<std::size_t>(report.frames_dropped));
    line.Set("settings_gen_ability_seen", report.settings_gen_ability_seen);
    line.Set("device_joules", report.cost.device_joules);
    line.Set("network_joules", report.cost.network_joules);
    line.Set("datacenter_joules", report.cost.datacenter_joules);
    line.Set("total_joules", report.cost.TotalJoules());
    line.Set("grams_co2e", report.cost.grams_co2e);
    out += line.Dump();
    out += "\n";
  }
  for (const RunReport::SlowSpan& slow : report.slowest) {
    json::Value line{json::Object{}};
    line.Set("kind", "slow_span");
    line.Set("name", slow.name);
    line.Set("process", slow.process);
    line.Set("seconds", slow.seconds);
    out += line.Dump();
    out += "\n";
  }
  for (const auto& [type_name, count] : report.frame_mix) {
    json::Value line{json::Object{}};
    line.Set("kind", "frame_mix");
    line.Set("type", type_name);
    line.Set("count", static_cast<std::size_t>(count));
    out += line.Dump();
    out += "\n";
  }
  return out;
}

}  // namespace sww::obs
