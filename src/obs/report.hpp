// report.hpp — the run analyzer: one structured summary of a whole run.
//
// AnalyzeRun folds the three telemetry surfaces — finished spans
// (trace.hpp), a registry snapshot (registry.hpp), and flight-recorder
// wire taps (flight.hpp) — into a RunReport: where the time went
// (negotiation vs wire vs generation), the slowest spans, cache hit
// ratios, the frame mix on the wire, and whether the SWW GEN_ABILITY
// negotiation actually happened.  Renderings are deterministic: under a
// ManualClock the same run always produces byte-identical text/JSONL,
// which is what lets CI diff a report against a golden file.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace sww::obs {

struct RunReport {
  // --- Where the time went (seconds, summed span durations) --------------
  double negotiation_seconds = 0.0;  ///< http2.settings_roundtrip spans
  double wire_seconds = 0.0;         ///< http2.stream lifetimes
  double generation_seconds = 0.0;   ///< genai-category spans
  /// Wall span of the run: latest span end minus earliest span start.
  double total_seconds = 0.0;

  // --- Trace shape --------------------------------------------------------
  std::size_t span_count = 0;
  /// Distinct trace ids across all spans — a fully stitched client →
  /// server → edge page fetch contributes ONE.
  std::size_t trace_count = 0;

  struct SlowSpan {
    std::string name;
    std::string process;  ///< role track; "" when unlabeled
    double seconds = 0.0;
  };
  std::vector<SlowSpan> slowest;  ///< top spans by duration (≤ 5)

  // --- Protocol health ----------------------------------------------------
  std::uint64_t flow_control_stalls = 0;
  /// hits / (hits + misses); 0 when the cache saw no lookups.
  double prompt_cache_hit_ratio = 0.0;
  double edge_hit_ratio = 0.0;

  // --- What the run cost (energy & carbon) --------------------------------
  // Joules by phase, from the same simulation substrate the latency
  // numbers come from: device is client-side generation energy, network
  // is the traffic-proportional cost of every byte that crossed a tapped
  // HTTP/2 connection or CDN leg (Telefónica 2024 Wh/MB), datacenter is
  // origin-server plus edge-node generation.  gCO2e converts the total
  // at the world-average grid intensity.
  struct Cost {
    double device_joules = 0.0;
    double network_joules = 0.0;
    double datacenter_joules = 0.0;
    double grams_co2e = 0.0;

    double TotalJoules() const {
      return device_joules + network_joules + datacenter_joules;
    }
  };
  Cost cost;

  // --- The wire, as the flight recorder saw it ----------------------------
  std::map<std::string, std::uint64_t> frame_mix;  ///< type name → count
  std::uint64_t frames_tapped = 0;   ///< records still in the rings
  std::uint64_t frames_recorded = 0; ///< ever recorded (survives overwrite)
  std::uint64_t frames_dropped = 0;  ///< overwritten by ring wraparound
  /// A SETTINGS frame carrying GEN_ABILITY crossed a tapped connection.
  bool settings_gen_ability_seen = false;
};

/// Fold spans + metrics + taps into a report.  Null tap pointers are
/// skipped; all inputs may be empty.
RunReport AnalyzeRun(const std::vector<Span>& spans,
                     const RegistrySnapshot& snapshot,
                     const std::vector<const ConnectionTap*>& taps);

/// Human-readable report (fixed %.6f precision — deterministic under a
/// ManualClock).
std::string RenderReportText(const RunReport& report);

/// One JSON object per line: a "report" line, then one "slow_span" line
/// per entry and one "frame_mix" line per type.
std::string RenderReportJsonLines(const RunReport& report);

}  // namespace sww::obs
