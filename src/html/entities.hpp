// entities.hpp — HTML character references.
//
// Decoding covers the named entities that appear in real pages' text and
// attribute values plus numeric (decimal and hex) references; encoding
// escapes the minimal set required for round-trip-safe serialization.
#pragma once

#include <string>
#include <string_view>

namespace sww::html {

/// Decode character references in `text` (&amp;, &#65;, &#x41;, ...).
/// Unknown or malformed references are left verbatim, as browsers do.
std::string DecodeEntities(std::string_view text);

/// Escape `&`, `<`, `>` for text content.
std::string EscapeText(std::string_view text);

/// Escape `&`, `<`, `>`, `"` for double-quoted attribute values.
std::string EscapeAttribute(std::string_view text);

}  // namespace sww::html
