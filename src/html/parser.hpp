// parser.hpp — HTML tokenizer and tree builder.
//
// A pragmatic parser for the HTML subset that webpages in the SWW pipeline
// use: nested elements with quoted/unquoted attributes, void and
// self-closing elements, comments, doctype, raw-text elements (script,
// style) and character references.  Error recovery follows browser
// behaviour where cheap: unmatched close tags are dropped, unclosed
// elements are closed at EOF.
#pragma once

#include <memory>
#include <string_view>

#include "html/dom.hpp"
#include "util/error.hpp"

namespace sww::html {

/// Parse a document.  Never fails hard on malformed markup (browsers
/// don't); the Result is an error only for pathological input (nesting
/// beyond the depth limit).
util::Result<std::unique_ptr<Node>> ParseDocument(std::string_view html);

/// Parse a fragment: children are appended under a synthetic document node.
util::Result<std::unique_ptr<Node>> ParseFragment(std::string_view html);

}  // namespace sww::html
