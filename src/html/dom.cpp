#include "html/dom.hpp"

#include <array>

#include "html/entities.hpp"
#include "util/strings.hpp"

namespace sww::html {

namespace {

constexpr std::array<std::string_view, 14> kVoidElements = {
    "area", "base", "br",    "col",    "embed",  "hr",  "img",
    "input", "link", "meta", "param", "source", "track", "wbr"};

}  // namespace

bool IsVoidElement(std::string_view tag) {
  for (std::string_view v : kVoidElements) {
    if (v == tag) return true;
  }
  return false;
}

std::unique_ptr<Node> Node::MakeDocument() {
  return std::make_unique<Node>(NodeType::kDocument);
}

std::unique_ptr<Node> Node::MakeElement(std::string tag) {
  auto node = std::make_unique<Node>(NodeType::kElement);
  node->tag_ = util::ToLower(tag);
  return node;
}

std::unique_ptr<Node> Node::MakeText(std::string text) {
  auto node = std::make_unique<Node>(NodeType::kText);
  node->text_ = std::move(text);
  return node;
}

std::unique_ptr<Node> Node::MakeComment(std::string text) {
  auto node = std::make_unique<Node>(NodeType::kComment);
  node->text_ = std::move(text);
  return node;
}

std::unique_ptr<Node> Node::MakeDoctype(std::string text) {
  auto node = std::make_unique<Node>(NodeType::kDoctype);
  node->text_ = std::move(text);
  return node;
}

std::optional<std::string> Node::GetAttribute(std::string_view name) const {
  const std::string lowered = util::ToLower(name);
  for (const Attribute& attr : attributes_) {
    if (attr.name == lowered) return attr.value;
  }
  return std::nullopt;
}

void Node::SetAttribute(std::string_view name, std::string_view value) {
  const std::string lowered = util::ToLower(name);
  for (Attribute& attr : attributes_) {
    if (attr.name == lowered) {
      attr.value = std::string(value);
      return;
    }
  }
  attributes_.push_back(Attribute{lowered, std::string(value)});
}

void Node::RemoveAttribute(std::string_view name) {
  const std::string lowered = util::ToLower(name);
  for (auto it = attributes_.begin(); it != attributes_.end(); ++it) {
    if (it->name == lowered) {
      attributes_.erase(it);
      return;
    }
  }
}

std::vector<std::string> Node::Classes() const {
  auto cls = GetAttribute("class");
  if (!cls.has_value()) return {};
  return util::SplitWhitespace(*cls);
}

bool Node::HasClass(std::string_view cls) const {
  for (const std::string& c : Classes()) {
    if (c == cls) return true;
  }
  return false;
}

bool Node::HasAllClasses(std::string_view classes) const {
  const std::vector<std::string> wanted = util::SplitWhitespace(classes);
  for (const std::string& w : wanted) {
    if (!HasClass(w)) return false;
  }
  return !wanted.empty();
}

Node* Node::AppendChild(std::unique_ptr<Node> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

std::unique_ptr<Node> Node::ReplaceChild(Node* existing,
                                         std::unique_ptr<Node> replacement) {
  for (auto& slot : children_) {
    if (slot.get() == existing) {
      replacement->parent_ = this;
      std::unique_ptr<Node> old = std::move(slot);
      slot = std::move(replacement);
      old->parent_ = nullptr;
      return old;
    }
  }
  return nullptr;
}

void Node::ClearChildren() { children_.clear(); }

void Node::Visit(const std::function<void(Node&)>& visit) {
  visit(*this);
  for (auto& child : children_) child->Visit(visit);
}

void Node::Visit(const std::function<void(const Node&)>& visit) const {
  visit(*this);
  for (const auto& child : children_) {
    static_cast<const Node&>(*child).Visit(visit);
  }
}

std::vector<Node*> Node::FindAll(const std::function<bool(const Node&)>& predicate) {
  std::vector<Node*> out;
  Visit([&](Node& node) {
    if (predicate(node)) out.push_back(&node);
  });
  return out;
}

std::vector<Node*> Node::FindByTag(std::string_view tag) {
  const std::string lowered = util::ToLower(tag);
  return FindAll([&](const Node& node) {
    return node.is_element() && node.tag() == lowered;
  });
}

std::vector<Node*> Node::FindByClass(std::string_view classes) {
  return FindAll([&](const Node& node) {
    return node.is_element() && node.HasAllClasses(classes);
  });
}

Node* Node::FindFirstByTag(std::string_view tag) {
  auto matches = FindByTag(tag);
  return matches.empty() ? nullptr : matches.front();
}

std::string Node::InnerText() const {
  std::string out;
  Visit(std::function<void(const Node&)>([&out](const Node& node) {
    if (node.type() == NodeType::kText) out += node.text();
  }));
  return out;
}

void Node::SerializeTo(std::string& out) const {
  switch (type_) {
    case NodeType::kDocument:
      for (const auto& child : children_) child->SerializeTo(out);
      break;
    case NodeType::kDoctype:
      out += "<!DOCTYPE " + text_ + ">";
      break;
    case NodeType::kComment:
      out += "<!--" + text_ + "-->";
      break;
    case NodeType::kText:
      out += EscapeText(text_);
      break;
    case NodeType::kElement: {
      out += "<" + tag_;
      for (const Attribute& attr : attributes_) {
        out += " " + attr.name + "=\"" + EscapeAttribute(attr.value) + "\"";
      }
      if (IsVoidElement(tag_)) {
        out += "/>";
        break;
      }
      out += ">";
      for (const auto& child : children_) child->SerializeTo(out);
      out += "</" + tag_ + ">";
      break;
    }
  }
}

std::string Node::Serialize() const {
  std::string out;
  SerializeTo(out);
  return out;
}

std::unique_ptr<Node> Node::Clone() const {
  auto copy = std::make_unique<Node>(type_);
  copy->tag_ = tag_;
  copy->text_ = text_;
  copy->attributes_ = attributes_;
  for (const auto& child : children_) {
    copy->AppendChild(child->Clone());
  }
  return copy;
}

}  // namespace sww::html
