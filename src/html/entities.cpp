#include "html/entities.hpp"

#include <array>
#include <cctype>
#include <cstdint>

namespace sww::html {

namespace {

struct NamedEntity {
  std::string_view name;  // without & and ;
  std::string_view utf8;
};

// The common subset; browsers know ~2200 names but real markup overwhelmingly
// uses these.
constexpr std::array<NamedEntity, 24> kNamedEntities = {{
    {"amp", "&"},     {"lt", "<"},       {"gt", ">"},      {"quot", "\""},
    {"apos", "'"},    {"nbsp", "\xc2\xa0"}, {"copy", "\xc2\xa9"},
    {"reg", "\xc2\xae"}, {"trade", "\xe2\x84\xa2"}, {"hellip", "\xe2\x80\xa6"},
    {"mdash", "\xe2\x80\x94"}, {"ndash", "\xe2\x80\x93"},
    {"lsquo", "\xe2\x80\x98"}, {"rsquo", "\xe2\x80\x99"},
    {"ldquo", "\xe2\x80\x9c"}, {"rdquo", "\xe2\x80\x9d"},
    {"deg", "\xc2\xb0"}, {"plusmn", "\xc2\xb1"}, {"times", "\xc3\x97"},
    {"divide", "\xc3\xb7"}, {"euro", "\xe2\x82\xac"}, {"pound", "\xc2\xa3"},
    {"cent", "\xc2\xa2"}, {"sect", "\xc2\xa7"},
}};

void AppendCodepointUtf8(std::string& out, std::uint32_t code) {
  if (code == 0 || code > 0x10FFFF) {
    out += "\xef\xbf\xbd";  // U+FFFD replacement character
    return;
  }
  if (code < 0x80) {
    out.push_back(static_cast<char>(code));
  } else if (code < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (code >> 6)));
    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
  } else if (code < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (code >> 12)));
    out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (code >> 18)));
    out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
  }
}

}  // namespace

std::string DecodeEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out.push_back(text[i++]);
      continue;
    }
    const std::size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 12) {
      out.push_back(text[i++]);
      continue;
    }
    const std::string_view body = text.substr(i + 1, semi - i - 1);
    if (!body.empty() && body[0] == '#') {
      // Numeric reference.
      std::uint32_t code = 0;
      bool valid = body.size() > 1;
      if (body.size() > 2 && (body[1] == 'x' || body[1] == 'X')) {
        for (std::size_t k = 2; k < body.size() && valid; ++k) {
          char c = body[k];
          code <<= 4;
          if (c >= '0' && c <= '9') code |= static_cast<std::uint32_t>(c - '0');
          else if (c >= 'a' && c <= 'f') code |= static_cast<std::uint32_t>(c - 'a' + 10);
          else if (c >= 'A' && c <= 'F') code |= static_cast<std::uint32_t>(c - 'A' + 10);
          else valid = false;
        }
        valid = valid && body.size() > 2;
      } else {
        for (std::size_t k = 1; k < body.size() && valid; ++k) {
          char c = body[k];
          if (c < '0' || c > '9') {
            valid = false;
          } else {
            code = code * 10 + static_cast<std::uint32_t>(c - '0');
          }
        }
      }
      if (valid) {
        AppendCodepointUtf8(out, code);
        i = semi + 1;
        continue;
      }
      out.push_back(text[i++]);
      continue;
    }
    bool matched = false;
    for (const NamedEntity& entity : kNamedEntities) {
      if (entity.name == body) {
        out += entity.utf8;
        i = semi + 1;
        matched = true;
        break;
      }
    }
    if (!matched) out.push_back(text[i++]);
  }
  return out;
}

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace sww::html
