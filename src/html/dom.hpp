// dom.hpp — a small HTML document object model.
//
// The SWW client parses received pages, locates `generated content`
// divisions, replaces them with generated media (paper §4.1, Figure 1), and
// re-serializes the page for rendering.  This DOM supports exactly that:
// elements with ordered attributes, text, comments and a doctype node,
// plus query and mutation helpers and a serializer.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sww::html {

enum class NodeType { kDocument, kElement, kText, kComment, kDoctype };

struct Attribute {
  std::string name;   // lowercased
  std::string value;
};

class Node {
 public:
  explicit Node(NodeType type) : type_(type) {}

  static std::unique_ptr<Node> MakeDocument();
  static std::unique_ptr<Node> MakeElement(std::string tag);
  static std::unique_ptr<Node> MakeText(std::string text);
  static std::unique_ptr<Node> MakeComment(std::string text);
  static std::unique_ptr<Node> MakeDoctype(std::string text);

  NodeType type() const { return type_; }
  bool is_element() const { return type_ == NodeType::kElement; }
  bool is_text() const { return type_ == NodeType::kText; }

  /// Element tag name (lowercased) — empty for non-elements.
  const std::string& tag() const { return tag_; }
  /// Text/comment/doctype content.
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  // --- Attributes --------------------------------------------------------

  const std::vector<Attribute>& attributes() const { return attributes_; }
  std::optional<std::string> GetAttribute(std::string_view name) const;
  void SetAttribute(std::string_view name, std::string_view value);
  void RemoveAttribute(std::string_view name);

  /// Class handling ("class" attribute split on whitespace).
  std::vector<std::string> Classes() const;
  bool HasClass(std::string_view cls) const;
  /// True when the class list contains every word of `classes` (e.g. the
  /// paper's two-word class "generated content").
  bool HasAllClasses(std::string_view classes) const;

  // --- Tree --------------------------------------------------------------

  Node* parent() const { return parent_; }
  const std::vector<std::unique_ptr<Node>>& children() const { return children_; }
  Node* AppendChild(std::unique_ptr<Node> child);
  /// Replace `existing` (a direct child) with `replacement`; returns the
  /// detached old child, or nullptr if `existing` is not a child.
  std::unique_ptr<Node> ReplaceChild(Node* existing, std::unique_ptr<Node> replacement);
  /// Remove all children.
  void ClearChildren();

  // --- Queries -----------------------------------------------------------

  /// Depth-first traversal, calling `visit` for every node in the subtree.
  void Visit(const std::function<void(Node&)>& visit);
  void Visit(const std::function<void(const Node&)>& visit) const;

  std::vector<Node*> FindAll(const std::function<bool(const Node&)>& predicate);
  std::vector<Node*> FindByTag(std::string_view tag);
  std::vector<Node*> FindByClass(std::string_view classes);
  Node* FindFirstByTag(std::string_view tag);

  /// Concatenated text of the subtree (whitespace preserved).
  std::string InnerText() const;

  // --- Serialization -----------------------------------------------------

  /// Serialize the subtree back to HTML.  Text is entity-escaped; void
  /// elements (img, br, ...) are emitted without a closing tag.
  std::string Serialize() const;

  /// Deep copy of the subtree.
  std::unique_ptr<Node> Clone() const;

 private:
  void SerializeTo(std::string& out) const;

  NodeType type_;
  std::string tag_;
  std::string text_;
  std::vector<Attribute> attributes_;
  Node* parent_ = nullptr;
  std::vector<std::unique_ptr<Node>> children_;

  friend class TreeBuilder;
};

/// Tags that never have children or closing tags (HTML void elements).
bool IsVoidElement(std::string_view tag);

}  // namespace sww::html
