#include "html/generated_content.hpp"

#include "util/strings.hpp"

namespace sww::html {

const char* GeneratedContentTypeName(GeneratedContentType type) {
  switch (type) {
    case GeneratedContentType::kImage: return "img";
    case GeneratedContentType::kText: return "txt";
  }
  return "?";
}

ExtractionResult ExtractGeneratedContent(Node& document) {
  ExtractionResult result;
  for (Node* node : document.FindByClass(kGeneratedContentClass)) {
    auto content_type = node->GetAttribute("content-type");
    if (!content_type.has_value()) {
      result.errors.push_back("generated content div missing content-type: " +
                              node->Serialize());
      continue;
    }
    GeneratedContentType type;
    if (*content_type == "img") {
      type = GeneratedContentType::kImage;
    } else if (*content_type == "txt") {
      type = GeneratedContentType::kText;
    } else {
      result.errors.push_back("unsupported content-type '" + *content_type +
                              "'");
      continue;
    }
    auto metadata_attr = node->GetAttribute("metadata");
    if (!metadata_attr.has_value()) {
      result.errors.push_back("generated content div missing metadata: " +
                              node->Serialize());
      continue;
    }
    auto metadata = json::Parse(*metadata_attr);
    if (!metadata) {
      result.errors.push_back("metadata is not valid JSON: " +
                              metadata.error().message);
      continue;
    }
    if (!metadata.value().is_object()) {
      result.errors.push_back("metadata must be a JSON dictionary");
      continue;
    }
    if (!metadata.value().Has("prompt")) {
      result.errors.push_back("metadata missing required field 'prompt'");
      continue;
    }
    GeneratedContentSpec spec;
    spec.type = type;
    spec.metadata = std::move(metadata).value();
    spec.node = node;
    result.specs.push_back(std::move(spec));
  }
  return result;
}

std::unique_ptr<Node> MakeGeneratedContentDiv(GeneratedContentType type,
                                              const json::Value& metadata) {
  auto div = Node::MakeElement("div");
  div->SetAttribute("class", kGeneratedContentClass);
  div->SetAttribute("content-type", GeneratedContentTypeName(type));
  div->SetAttribute("metadata", metadata.Dump());
  return div;
}

void ReplaceWithImage(Node& placeholder, std::string_view src, int width,
                      int height, std::string_view alt) {
  placeholder.SetAttribute("class", kMediaContentClass);
  placeholder.RemoveAttribute("content-type");
  placeholder.RemoveAttribute("metadata");
  placeholder.ClearChildren();
  auto img = Node::MakeElement("img");
  img->SetAttribute("src", src);
  img->SetAttribute("width", std::to_string(width));
  img->SetAttribute("height", std::to_string(height));
  img->SetAttribute("alt", alt);
  placeholder.AppendChild(std::move(img));
}

void ReplaceWithText(Node& placeholder, std::string_view text) {
  placeholder.SetAttribute("class", kMediaContentClass);
  placeholder.RemoveAttribute("content-type");
  placeholder.RemoveAttribute("metadata");
  placeholder.ClearChildren();
  auto paragraph = Node::MakeElement("p");
  paragraph->AppendChild(Node::MakeText(std::string(text)));
  placeholder.AppendChild(std::move(paragraph));
}

}  // namespace sww::html
