// generated_content.hpp — the paper's `generated content` HTML class (§4.1).
//
// A generated-content division carries two fields: a content-type ("img" or
// "txt") and a metadata JSON dictionary holding whatever the generator
// needs (the prompt, plus e.g. width/height for images or bullets/words
// for text).  Figure 1 of the paper shows the before/after forms:
//
//   before:  <div class="generated content" content-type="img"
//                 metadata='{"prompt":"A cartoon goldfish...","name":"goldfish",
//                            "width":512,"height":512}'></div>
//   after:   <div class="media content"><img src="generated/goldfish.jpg"
//                 width="512" height="512" alt="A cartoon goldfish..."/></div>
//
// The HTML parser extracts these specs; the media generator (core::) turns
// them into content and the div is replaced in place.
#pragma once

#include <string>
#include <vector>

#include "html/dom.hpp"
#include "json/json.hpp"
#include "util/error.hpp"

namespace sww::html {

/// The class attribute marking a generation placeholder.
inline constexpr std::string_view kGeneratedContentClass = "generated content";
/// The class attribute of a replaced (materialized) division.
inline constexpr std::string_view kMediaContentClass = "media content";

enum class GeneratedContentType { kImage, kText };

const char* GeneratedContentTypeName(GeneratedContentType type);

/// One extracted generation task, still attached to its DOM node.
struct GeneratedContentSpec {
  GeneratedContentType type = GeneratedContentType::kImage;
  json::Value metadata;     // parsed metadata dictionary
  Node* node = nullptr;     // the placeholder div (owned by the document)

  /// Convenience accessors over the metadata dictionary.
  std::string prompt() const { return metadata.GetString("prompt"); }
  std::string name() const { return metadata.GetString("name"); }
  int width() const { return static_cast<int>(metadata.GetInt("width", 512)); }
  int height() const { return static_cast<int>(metadata.GetInt("height", 512)); }
  int words() const { return static_cast<int>(metadata.GetInt("words", 100)); }

  /// Wire size of the metadata (compact JSON) — the quantity the paper's
  /// compression ratios divide by.
  std::size_t MetadataBytes() const { return metadata.Dump().size(); }
};

/// Find every generated-content division in the document, parsing each
/// node's content-type and metadata.  Nodes with missing/invalid fields
/// are reported as errors with their serialized form for context.
struct ExtractionResult {
  std::vector<GeneratedContentSpec> specs;
  std::vector<std::string> errors;  // human-readable skip reasons
};

ExtractionResult ExtractGeneratedContent(Node& document);

/// Build a generated-content placeholder div (server-side page authoring).
std::unique_ptr<Node> MakeGeneratedContentDiv(GeneratedContentType type,
                                              const json::Value& metadata);

/// Replace a placeholder with an <img> pointing at the generated file
/// (Figure 1 "after" form).  Mutates the div in place.
void ReplaceWithImage(Node& placeholder, std::string_view src, int width,
                      int height, std::string_view alt);

/// Replace a placeholder with expanded text content.
void ReplaceWithText(Node& placeholder, std::string_view text);

}  // namespace sww::html
