#include "html/parser.hpp"

#include <cctype>
#include <vector>

#include "html/entities.hpp"
#include "util/strings.hpp"

namespace sww::html {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

constexpr int kMaxDepth = 512;

bool IsRawTextElement(std::string_view tag) {
  return tag == "script" || tag == "style";
}

struct Token {
  enum class Type { kText, kOpenTag, kCloseTag, kComment, kDoctype, kEof };
  Type type = Type::kEof;
  std::string data;                   // text / tag name / comment body
  std::vector<Attribute> attributes;  // open tags
  bool self_closing = false;
};

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view html) : html_(html) {}

  Token Next() {
    if (pos_ >= html_.size()) return Token{};

    // Raw text mode: everything until the matching close tag is text.
    if (!raw_text_tag_.empty()) {
      return NextRawText();
    }

    if (html_[pos_] != '<') {
      return NextText();
    }

    if (html_.substr(pos_, 4) == "<!--") {
      return NextComment();
    }
    if (pos_ + 1 < html_.size() &&
        (html_[pos_ + 1] == '!' || html_[pos_ + 1] == '?')) {
      return NextDeclaration();
    }
    if (pos_ + 1 < html_.size() && html_[pos_ + 1] == '/') {
      return NextCloseTag();
    }
    if (pos_ + 1 < html_.size() &&
        std::isalpha(static_cast<unsigned char>(html_[pos_ + 1]))) {
      return NextOpenTag();
    }
    // A lone '<' that does not start a tag is literal text.
    return NextText();
  }

  void EnterRawText(std::string tag) { raw_text_tag_ = std::move(tag); }

 private:
  Token NextText() {
    std::size_t end = html_.find('<', pos_ + 1);
    if (end == std::string_view::npos) end = html_.size();
    Token token;
    token.type = Token::Type::kText;
    token.data = DecodeEntities(html_.substr(pos_, end - pos_));
    pos_ = end;
    return token;
  }

  Token NextRawText() {
    const std::string close = "</" + raw_text_tag_;
    std::size_t end = pos_;
    while (true) {
      end = html_.find('<', end);
      if (end == std::string_view::npos) {
        end = html_.size();
        break;
      }
      const std::string_view candidate = html_.substr(end, close.size());
      if (util::ToLower(candidate) == close) break;
      ++end;
    }
    Token token;
    token.type = Token::Type::kText;
    token.data = std::string(html_.substr(pos_, end - pos_));  // no entities
    pos_ = end;
    raw_text_tag_.clear();
    return token;
  }

  Token NextComment() {
    const std::size_t end = html_.find("-->", pos_ + 4);
    Token token;
    token.type = Token::Type::kComment;
    if (end == std::string_view::npos) {
      token.data = std::string(html_.substr(pos_ + 4));
      pos_ = html_.size();
    } else {
      token.data = std::string(html_.substr(pos_ + 4, end - pos_ - 4));
      pos_ = end + 3;
    }
    return token;
  }

  Token NextDeclaration() {
    const std::size_t end = html_.find('>', pos_);
    Token token;
    std::string_view body;
    if (end == std::string_view::npos) {
      body = html_.substr(pos_ + 2);
      pos_ = html_.size();
    } else {
      body = html_.substr(pos_ + 2, end - pos_ - 2);
      pos_ = end + 1;
    }
    const std::string lowered = util::ToLower(body.substr(0, 7));
    if (lowered == "doctype") {
      token.type = Token::Type::kDoctype;
      token.data = std::string(util::Trim(body.substr(7)));
    } else {
      token.type = Token::Type::kComment;  // treat other declarations as comments
      token.data = std::string(body);
    }
    return token;
  }

  Token NextCloseTag() {
    const std::size_t end = html_.find('>', pos_);
    Token token;
    token.type = Token::Type::kCloseTag;
    if (end == std::string_view::npos) {
      token.data = util::ToLower(util::Trim(html_.substr(pos_ + 2)));
      pos_ = html_.size();
    } else {
      token.data = util::ToLower(util::Trim(html_.substr(pos_ + 2, end - pos_ - 2)));
      pos_ = end + 1;
    }
    return token;
  }

  Token NextOpenTag() {
    ++pos_;  // '<'
    Token token;
    token.type = Token::Type::kOpenTag;
    // Tag name.
    std::size_t start = pos_;
    while (pos_ < html_.size() &&
           (std::isalnum(static_cast<unsigned char>(html_[pos_])) ||
            html_[pos_] == '-' || html_[pos_] == ':')) {
      ++pos_;
    }
    token.data = util::ToLower(html_.substr(start, pos_ - start));

    // Attributes.
    while (pos_ < html_.size()) {
      while (pos_ < html_.size() &&
             std::isspace(static_cast<unsigned char>(html_[pos_]))) {
        ++pos_;
      }
      if (pos_ >= html_.size()) break;
      if (html_[pos_] == '>') {
        ++pos_;
        break;
      }
      if (html_[pos_] == '/' && pos_ + 1 < html_.size() && html_[pos_ + 1] == '>') {
        token.self_closing = true;
        pos_ += 2;
        break;
      }
      // Attribute name.
      start = pos_;
      while (pos_ < html_.size() && html_[pos_] != '=' && html_[pos_] != '>' &&
             html_[pos_] != '/' &&
             !std::isspace(static_cast<unsigned char>(html_[pos_]))) {
        ++pos_;
      }
      if (pos_ == start) {
        ++pos_;  // stray character; skip
        continue;
      }
      Attribute attr;
      attr.name = util::ToLower(html_.substr(start, pos_ - start));
      while (pos_ < html_.size() &&
             std::isspace(static_cast<unsigned char>(html_[pos_]))) {
        ++pos_;
      }
      if (pos_ < html_.size() && html_[pos_] == '=') {
        ++pos_;
        while (pos_ < html_.size() &&
               std::isspace(static_cast<unsigned char>(html_[pos_]))) {
          ++pos_;
        }
        if (pos_ < html_.size() && (html_[pos_] == '"' || html_[pos_] == '\'')) {
          const char quote = html_[pos_++];
          start = pos_;
          while (pos_ < html_.size() && html_[pos_] != quote) ++pos_;
          attr.value = DecodeEntities(html_.substr(start, pos_ - start));
          if (pos_ < html_.size()) ++pos_;  // closing quote
        } else {
          start = pos_;
          while (pos_ < html_.size() && html_[pos_] != '>' &&
                 !std::isspace(static_cast<unsigned char>(html_[pos_]))) {
            ++pos_;
          }
          attr.value = DecodeEntities(html_.substr(start, pos_ - start));
        }
      }
      token.attributes.push_back(std::move(attr));
    }
    return token;
  }

  std::string_view html_;
  std::size_t pos_ = 0;
  std::string raw_text_tag_;
};

}  // namespace

/// Stack-based tree builder with browser-style recovery.
class TreeBuilder {
 public:
  Result<std::unique_ptr<Node>> Build(std::string_view html) {
    auto document = Node::MakeDocument();
    std::vector<Node*> stack{document.get()};
    Tokenizer tokenizer(html);

    while (true) {
      Token token = tokenizer.Next();
      if (token.type == Token::Type::kEof) break;
      Node* top = stack.back();
      switch (token.type) {
        case Token::Type::kText:
          if (!token.data.empty()) {
            top->AppendChild(Node::MakeText(std::move(token.data)));
          }
          break;
        case Token::Type::kComment:
          top->AppendChild(Node::MakeComment(std::move(token.data)));
          break;
        case Token::Type::kDoctype:
          top->AppendChild(Node::MakeDoctype(std::move(token.data)));
          break;
        case Token::Type::kOpenTag: {
          auto element = Node::MakeElement(token.data);
          for (Attribute& attr : token.attributes) {
            element->SetAttribute(attr.name, attr.value);
          }
          Node* appended = top->AppendChild(std::move(element));
          const bool is_void = IsVoidElement(appended->tag());
          if (!is_void && !token.self_closing) {
            if (static_cast<int>(stack.size()) >= kMaxDepth) {
              return Error(ErrorCode::kMalformed, "html nesting too deep");
            }
            stack.push_back(appended);
            if (IsRawTextElement(appended->tag())) {
              tokenizer.EnterRawText(appended->tag());
            }
          }
          break;
        }
        case Token::Type::kCloseTag: {
          // Pop to the matching open element; ignore if none (browser rule).
          for (std::size_t i = stack.size(); i-- > 1;) {
            if (stack[i]->tag() == token.data) {
              stack.resize(i);
              break;
            }
          }
          break;
        }
        case Token::Type::kEof:
          break;
      }
    }
    return document;
  }
};

Result<std::unique_ptr<Node>> ParseDocument(std::string_view html) {
  return TreeBuilder().Build(html);
}

Result<std::unique_ptr<Node>> ParseFragment(std::string_view html) {
  return TreeBuilder().Build(html);
}

}  // namespace sww::html
