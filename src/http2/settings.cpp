#include "http2/settings.hpp"

#include <cstdio>

namespace sww::http2 {

using util::Error;
using util::Status;

std::string GenAbilityToString(std::uint32_t ability) {
  if (ability == kGenAbilityNone) return "none";
  std::string out;
  auto add = [&out](std::string_view name) {
    if (!out.empty()) out += "|";
    out += name;
  };
  if (ability & kGenAbilityFull) add("full");
  if (ability & kGenAbilityUpscaleOnly) add("upscale-only");
  if (ability & kGenAbilityTextOnly) add("text-only");
  if (ability & kGenAbilityFrameRateBoost) add("frame-rate-boost");
  const std::uint32_t known = kGenAbilityFull | kGenAbilityUpscaleOnly |
                              kGenAbilityTextOnly | kGenAbilityFrameRateBoost;
  if (ability & ~known) add("unknown-bits");
  return out;
}

std::string SettingsIdName(std::uint16_t identifier) {
  switch (identifier) {
    case kSettingsHeaderTableSize: return "HEADER_TABLE_SIZE";
    case kSettingsEnablePush: return "ENABLE_PUSH";
    case kSettingsMaxConcurrentStreams: return "MAX_CONCURRENT_STREAMS";
    case kSettingsInitialWindowSize: return "INITIAL_WINDOW_SIZE";
    case kSettingsMaxFrameSize: return "MAX_FRAME_SIZE";
    case kSettingsMaxHeaderListSize: return "MAX_HEADER_LIST_SIZE";
    case kSettingsGenAbility: return "GEN_ABILITY";
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%x", identifier);
  return buf;
}

Settings::Settings() = default;

Status Settings::Apply(const SettingsEntry& entry) {
  switch (entry.identifier) {
    case kSettingsHeaderTableSize:
      header_table_size_ = entry.value;
      return Status::Ok();
    case kSettingsEnablePush:
      if (entry.value > 1) {
        return Error(util::ErrorCode::kProtocol, "ENABLE_PUSH must be 0 or 1");
      }
      enable_push_ = entry.value == 1;
      return Status::Ok();
    case kSettingsMaxConcurrentStreams:
      max_concurrent_streams_ = entry.value;
      return Status::Ok();
    case kSettingsInitialWindowSize:
      if (entry.value > 0x7fffffffu) {
        return Error(util::ErrorCode::kFlowControl,
                     "INITIAL_WINDOW_SIZE above 2^31-1");
      }
      initial_window_size_ = entry.value;
      return Status::Ok();
    case kSettingsMaxFrameSize:
      if (entry.value < kDefaultMaxFrameSize || entry.value > kAbsoluteMaxFrameSize) {
        return Error(util::ErrorCode::kProtocol,
                     "MAX_FRAME_SIZE outside [16384, 16777215]");
      }
      max_frame_size_ = entry.value;
      return Status::Ok();
    case kSettingsMaxHeaderListSize:
      max_header_list_size_ = entry.value;
      return Status::Ok();
    case kSettingsGenAbility:
      // The SWW extension.  Any 32-bit value is acceptable; semantics of the
      // bits are applied at negotiation time.
      gen_ability_ = entry.value;
      return Status::Ok();
    default:
      // RFC 9113 §6.5.2: "An endpoint that receives a SETTINGS frame with
      // any unknown or unsupported identifier MUST ignore that setting."
      unknown_[entry.identifier] = entry.value;
      return Status::Ok();
  }
}

Status Settings::ApplyAll(const std::vector<SettingsEntry>& entries) {
  for (const SettingsEntry& entry : entries) {
    if (Status status = Apply(entry); !status.ok()) return status;
  }
  return Status::Ok();
}

std::vector<SettingsEntry> Settings::NonDefaultEntries() const {
  std::vector<SettingsEntry> entries;
  if (header_table_size_ != 4096) {
    entries.push_back({kSettingsHeaderTableSize, header_table_size_});
  }
  if (!enable_push_) {
    entries.push_back({kSettingsEnablePush, 0});
  }
  if (max_concurrent_streams_ != 0xffffffffu) {
    entries.push_back({kSettingsMaxConcurrentStreams, max_concurrent_streams_});
  }
  if (initial_window_size_ != 65535) {
    entries.push_back({kSettingsInitialWindowSize, initial_window_size_});
  }
  if (max_frame_size_ != kDefaultMaxFrameSize) {
    entries.push_back({kSettingsMaxFrameSize, max_frame_size_});
  }
  if (max_header_list_size_ != 0xffffffffu) {
    entries.push_back({kSettingsMaxHeaderListSize, max_header_list_size_});
  }
  if (gen_ability_ != kGenAbilityNone) {
    entries.push_back({kSettingsGenAbility, gen_ability_});
  }
  return entries;
}

std::vector<SettingsEntry> DiffEntries(const Settings& previous,
                                       const Settings& updated) {
  std::vector<SettingsEntry> entries;
  if (previous.header_table_size() != updated.header_table_size()) {
    entries.push_back({kSettingsHeaderTableSize, updated.header_table_size()});
  }
  if (previous.enable_push() != updated.enable_push()) {
    entries.push_back({kSettingsEnablePush, updated.enable_push() ? 1u : 0u});
  }
  if (previous.max_concurrent_streams() != updated.max_concurrent_streams()) {
    entries.push_back(
        {kSettingsMaxConcurrentStreams, updated.max_concurrent_streams()});
  }
  if (previous.initial_window_size() != updated.initial_window_size()) {
    entries.push_back(
        {kSettingsInitialWindowSize, updated.initial_window_size()});
  }
  if (previous.max_frame_size() != updated.max_frame_size()) {
    entries.push_back({kSettingsMaxFrameSize, updated.max_frame_size()});
  }
  if (previous.max_header_list_size() != updated.max_header_list_size()) {
    entries.push_back(
        {kSettingsMaxHeaderListSize, updated.max_header_list_size()});
  }
  if (previous.gen_ability() != updated.gen_ability()) {
    entries.push_back({kSettingsGenAbility, updated.gen_ability()});
  }
  return entries;
}

std::uint32_t NegotiateGenAbility(std::uint32_t local, std::uint32_t remote) {
  return local & remote;
}

}  // namespace sww::http2
