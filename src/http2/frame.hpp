// frame.hpp — HTTP/2 frame layer (RFC 9113 §4, §6).
//
// Every frame is a 9-octet header (24-bit length, 8-bit type, 8-bit flags,
// 31-bit stream id) followed by a payload.  This module provides the generic
// header codec, typed payload parsers/builders for each of the ten frame
// types, and an incremental FrameParser that reassembles frames from an
// arbitrary byte stream.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "http2/error_codes.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace sww::http2 {

enum class FrameType : std::uint8_t {
  kData = 0x0,
  kHeaders = 0x1,
  kPriority = 0x2,
  kRstStream = 0x3,
  kSettings = 0x4,
  kPushPromise = 0x5,
  kPing = 0x6,
  kGoaway = 0x7,
  kWindowUpdate = 0x8,
  kContinuation = 0x9,
};

/// Number of frame types RFC 9113 defines (wire bytes 0x0–0x9).  Received
/// bytes beyond this are extension frames; per-type telemetry skips them.
inline constexpr std::size_t kFrameTypeCount = 10;

const char* FrameTypeName(FrameType type);

// Frame flags (meaning depends on frame type).
inline constexpr std::uint8_t kFlagEndStream = 0x1;   // DATA, HEADERS
inline constexpr std::uint8_t kFlagAck = 0x1;         // SETTINGS, PING
inline constexpr std::uint8_t kFlagEndHeaders = 0x4;  // HEADERS, PUSH_PROMISE, CONTINUATION
inline constexpr std::uint8_t kFlagPadded = 0x8;      // DATA, HEADERS, PUSH_PROMISE
inline constexpr std::uint8_t kFlagPriority = 0x20;   // HEADERS

/// Default and protocol-limit frame size constants (RFC 9113 §4.2).
inline constexpr std::uint32_t kDefaultMaxFrameSize = 16384;
inline constexpr std::uint32_t kAbsoluteMaxFrameSize = 16777215;
inline constexpr std::uint32_t kFrameHeaderSize = 9;

/// The client connection preface (RFC 9113 §3.4).
inline constexpr std::string_view kClientPreface =
    "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";

struct FrameHeader {
  std::uint32_t length = 0;     // 24-bit payload length
  FrameType type = FrameType::kData;
  std::uint8_t flags = 0;
  std::uint32_t stream_id = 0;  // 31-bit; high bit reserved, always 0 here

  bool HasFlag(std::uint8_t flag) const { return (flags & flag) != 0; }
};

/// A complete frame: header plus owned payload bytes.
struct Frame {
  FrameHeader header;
  util::Bytes payload;
};

/// Serialize a frame header (9 bytes) into a writer.
void WriteFrameHeader(const FrameHeader& header, util::ByteWriter& writer);

/// Parse a frame header from exactly 9 bytes.
util::Result<FrameHeader> ParseFrameHeader(util::BytesView bytes);

/// Serialize a full frame.
util::Bytes SerializeFrame(const Frame& frame);

/// A frame over borrowed payload bytes — the zero-copy counterpart of
/// Frame.  The payload view must outlive the serialization call (it is
/// copied exactly once, into the output arena).  `header.length` is
/// ignored; the true payload size is patched in on the wire.
struct FrameRef {
  FrameHeader header;
  util::BytesView payload;
};

/// Append header + payload of `frame` to a reusable output arena.  This is
/// the hot serialization path: one 9-byte header append plus one payload
/// memcpy, no intermediate Frame, no temporary buffers.
void AppendFrame(const FrameRef& frame, util::BytesArena& out);

// --- Typed payloads ------------------------------------------------------

struct PriorityPayload {
  bool exclusive = false;
  std::uint32_t dependency = 0;
  std::uint8_t weight = 15;  // wire value; effective weight = value + 1
};

struct SettingsEntry {
  std::uint16_t identifier = 0;
  std::uint32_t value = 0;
};

struct GoawayPayload {
  std::uint32_t last_stream_id = 0;
  ErrorCode error_code = ErrorCode::kNoError;
  std::string debug_data;
};

/// Builders — produce fully-formed frames ready to serialize.
Frame MakeDataFrame(std::uint32_t stream_id, util::BytesView data, bool end_stream);
Frame MakeHeadersFrame(std::uint32_t stream_id, util::BytesView block_fragment,
                       bool end_headers, bool end_stream);
Frame MakeContinuationFrame(std::uint32_t stream_id, util::BytesView block_fragment,
                            bool end_headers);
Frame MakePriorityFrame(std::uint32_t stream_id, const PriorityPayload& priority);
Frame MakeRstStreamFrame(std::uint32_t stream_id, ErrorCode error);
Frame MakeSettingsFrame(const std::vector<SettingsEntry>& entries);
Frame MakeSettingsAckFrame();
Frame MakePingFrame(std::uint64_t opaque, bool ack);
Frame MakeGoawayFrame(std::uint32_t last_stream_id, ErrorCode error,
                      std::string_view debug_data);
Frame MakeWindowUpdateFrame(std::uint32_t stream_id, std::uint32_t increment);

/// Typed parsers — validate payload lengths and reserved bits.
util::Result<std::vector<SettingsEntry>> ParseSettingsPayload(const Frame& frame);
/// View-based variant for callers that never materialize a Frame (wire
/// taps, zero-copy paths).
util::Result<std::vector<SettingsEntry>> ParseSettingsPayload(
    std::uint8_t flags, util::BytesView payload);
util::Result<PriorityPayload> ParsePriorityPayload(const Frame& frame);
util::Result<GoawayPayload> ParseGoawayPayload(const Frame& frame);
util::Result<std::uint32_t> ParseWindowUpdatePayload(const Frame& frame);
util::Result<std::uint64_t> ParsePingPayload(const Frame& frame);
util::Result<ErrorCode> ParseRstStreamPayload(const Frame& frame);

/// Strip padding from DATA / HEADERS payloads (PADDED flag) and, for
/// HEADERS with PRIORITY flag, the priority fields; returns the body/block.
util::Result<util::Bytes> ExtractDataPayload(const Frame& frame);
util::Result<util::Bytes> ExtractHeaderBlockFragment(const Frame& frame,
                                                     std::optional<PriorityPayload>* priority);

/// Incremental frame reassembler.  Push bytes in as they arrive from the
/// transport; pull complete frames out.  Enforces a maximum frame size
/// (updated from SETTINGS_MAX_FRAME_SIZE).
class FrameParser {
 public:
  explicit FrameParser(std::uint32_t max_frame_size = kDefaultMaxFrameSize)
      : max_frame_size_(max_frame_size) {}

  void set_max_frame_size(std::uint32_t size) { max_frame_size_ = size; }

  /// Append transport bytes to the internal buffer.
  void Feed(util::BytesView bytes);

  /// Next complete frame, if one is buffered.  A frame whose declared
  /// length exceeds the maximum yields a kFrameSize error (connection
  /// error FRAME_SIZE_ERROR per RFC 9113 §4.2).
  util::Result<std::optional<Frame>> Next();

  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  void Compact();

  util::Bytes buffer_;
  std::size_t consumed_ = 0;
  std::uint32_t max_frame_size_;
};

}  // namespace sww::http2
