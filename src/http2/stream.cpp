#include "http2/stream.hpp"

namespace sww::http2 {

const char* StreamStateName(StreamState state) {
  switch (state) {
    case StreamState::kIdle: return "idle";
    case StreamState::kOpen: return "open";
    case StreamState::kHalfClosedLocal: return "half-closed(local)";
    case StreamState::kHalfClosedRemote: return "half-closed(remote)";
    case StreamState::kClosed: return "closed";
  }
  return "?";
}

util::Status FlowWindow::Widen(std::int64_t increment) {
  if (window_ + increment > 0x7fffffffLL) {
    return util::Error(util::ErrorCode::kFlowControl,
                       "flow-control window would exceed 2^31-1");
  }
  window_ += increment;
  return util::Status::Ok();
}

void Stream::OnLocalEnd() {
  local_end = true;
  if (state == StreamState::kOpen) {
    state = StreamState::kHalfClosedLocal;
  } else if (state == StreamState::kHalfClosedRemote) {
    state = StreamState::kClosed;
  }
}

void Stream::OnRemoteEnd() {
  remote_end = true;
  if (state == StreamState::kOpen) {
    state = StreamState::kHalfClosedRemote;
  } else if (state == StreamState::kHalfClosedLocal) {
    state = StreamState::kClosed;
  }
}

}  // namespace sww::http2
