// connection.hpp — the HTTP/2 connection state machine (RFC 9113).
//
// Sans-IO design: the Connection never touches a socket.  Transport bytes
// are pushed in with Receive(); bytes to write are drained with
// TakeOutput(); protocol happenings surface as Events.  This keeps the
// whole protocol engine deterministic and unit-testable — two Connections
// can be wired back-to-back in memory — while the net:: layer pumps real
// sockets.
//
// The SWW extension rides on this engine unchanged except for one new
// SETTINGS parameter (settings.hpp): after the SETTINGS exchange,
// negotiated_gen_ability() reports the capability subset shared by both
// endpoints, and the core:: layer decides whether to serve prompts or
// traditional content.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hpack/hpack.hpp"
#include "http2/frame.hpp"
#include "http2/settings.hpp"
#include "http2/stream.hpp"
#include "obs/flight.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace sww::http2 {

class Connection {
 public:
  enum class Role { kClient, kServer };

  struct Options {
    Settings local_settings;
    /// Automatically replenish receive flow-control windows (send
    /// WINDOW_UPDATE) once this many bytes have been consumed.
    std::uint32_t window_update_threshold = 32768;
  };

  struct Event {
    enum class Type {
      kRemoteSettingsReceived,  ///< peer SETTINGS applied (ACK already queued)
      kSettingsAcked,           ///< peer acknowledged our SETTINGS
      kHeadersReceived,         ///< a complete header block was decoded
      kMessageComplete,         ///< stream saw END_STREAM; headers+body ready
      kStreamReset,             ///< RST_STREAM received
      kGoawayReceived,
      kPingAcked,
    };
    Type type;
    std::uint32_t stream_id = 0;
    ErrorCode error = ErrorCode::kNoError;
    std::uint64_t ping_opaque = 0;
  };

  Connection(Role role, Options options);

  /// Queue the connection preface: client preface string (client only) plus
  /// our initial SETTINGS frame.  Must be called once before any exchange.
  void StartHandshake();

  // --- Transport side ----------------------------------------------------

  /// Feed bytes read from the transport.  On a connection error the return
  /// status is the root cause; a GOAWAY has already been queued in the
  /// output buffer and the connection is dead.
  util::Status Receive(util::BytesView bytes);

  /// Drain bytes that must be written to the transport (copying).  The
  /// zero-copy pair below is preferred on hot paths: view, write, clear.
  util::Bytes TakeOutput();
  /// Borrow the pending output without copying.  Valid until the next
  /// Enqueue/Submit/Receive call or ClearOutput().
  util::BytesView OutputView() const { return output_.View(); }
  /// Mark the borrowed output as written; keeps the arena's storage for
  /// reuse, so steady-state serialization allocates nothing.
  void ClearOutput() { output_.Clear(); }
  bool HasOutput() const { return !output_.empty(); }
  /// Allocations made by the output arena since construction (for tests
  /// and the modeled steady-state-zero-alloc benchmark gate).
  std::uint64_t output_allocations() const { return output_.allocations(); }

  /// Drain protocol events observed since the last call.
  std::vector<Event> TakeEvents();

  // --- Application side --------------------------------------------------

  /// Client: open a new stream carrying a request.  Returns the stream id.
  /// `end_stream` marks the request as having no body.
  util::Result<std::uint32_t> SubmitRequest(const hpack::HeaderList& headers,
                                            util::BytesView body,
                                            bool end_stream_after_body = true);

  /// Server: send response headers on an existing stream.
  util::Status SubmitHeaders(std::uint32_t stream_id,
                             const hpack::HeaderList& headers, bool end_stream);

  /// Send body data (both roles).  Respects flow control: anything beyond
  /// the current send window is queued and flushed on WINDOW_UPDATE.
  util::Status SubmitData(std::uint32_t stream_id, util::BytesView data,
                          bool end_stream);

  util::Status ResetStream(std::uint32_t stream_id, ErrorCode error);
  void SendPing(std::uint64_t opaque);
  void SendGoaway(ErrorCode error, std::string_view debug_data);

  /// Re-advertise settings mid-connection (e.g. a server turning generative
  /// serving off when renewable energy is unavailable, §5.1 of the paper).
  void UpdateLocalSettings(const Settings& settings);

  // --- Introspection -----------------------------------------------------

  Role role() const { return role_; }
  bool handshake_started() const { return handshake_started_; }
  bool remote_settings_received() const { return remote_settings_received_; }
  bool local_settings_acked() const { return local_settings_acked_; }
  bool going_away() const { return going_away_; }
  bool dead() const { return dead_; }

  const Settings& local_settings() const { return local_settings_; }
  const Settings& remote_settings() const { return remote_settings_; }

  /// The SWW negotiation result (§3 of the paper): bitwise-AND of both
  /// endpoints' GEN_ABILITY.  Zero until the peer's SETTINGS arrive — i.e.
  /// a participating endpoint talking to a naïve peer sees "none" and falls
  /// back to standard HTTP/2 behaviour.
  std::uint32_t negotiated_gen_ability() const;
  /// True when both sides advertised full client-side generation.
  bool generative_mode() const {
    return (negotiated_gen_ability() & kGenAbilityFull) != 0;
  }

  const Stream* FindStream(std::uint32_t stream_id) const;
  Stream* FindMutableStream(std::uint32_t stream_id);
  /// Drop a closed stream's bookkeeping once the application consumed it.
  void ReleaseStream(std::uint32_t stream_id);
  std::size_t active_stream_count() const;

  /// Totals for the evaluation harness (bytes on the wire in each
  /// direction, frame counts by type).  Per-connection truth; the same
  /// quantities are mirrored into the process-wide obs::Registry under
  /// http2.* so one Snapshot() aggregates every connection.
  struct WireStats {
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t flow_control_stalls = 0;  ///< sends blocked on a window
    std::map<FrameType, std::uint64_t> frames_sent;
    std::map<FrameType, std::uint64_t> frames_received;
  };
  const WireStats& wire_stats() const { return stats_; }

  /// Install a flight-recorder wire tap: every frame sent or received is
  /// recorded (direction, type, stream id, flags, length, clock timestamp;
  /// HEADERS records carry the HPACK-decoded header list, SETTINGS records
  /// the parsed entries).  The tap is not owned and must outlive the
  /// connection or be uninstalled (nullptr) first.  With no tap installed
  /// the frame hot paths add only this null-check.
  void SetWireTap(obs::ConnectionTap* tap) { tap_ = tap; }
  obs::ConnectionTap* wire_tap() const { return tap_; }

 private:
  util::Status HandleFrame(Frame frame);
  util::Status HandleData(const Frame& frame);
  util::Status HandleHeaders(const Frame& frame);
  util::Status HandleContinuation(const Frame& frame);
  util::Status HandleSettings(const Frame& frame);
  util::Status HandlePing(const Frame& frame);
  util::Status HandleGoaway(const Frame& frame);
  util::Status HandleWindowUpdate(const Frame& frame);
  util::Status HandleRstStream(const Frame& frame);
  util::Status HandlePriority(const Frame& frame);

  util::Status FinishHeaderBlock();
  util::Status ConnectionError(ErrorCode code, const std::string& message);
  /// Hot serialization path: header + payload view appended straight into
  /// the output arena (one memcpy, no intermediate Frame).
  void EnqueueFrameRef(FrameType type, std::uint8_t flags,
                       std::uint32_t stream_id, util::BytesView payload);
  /// Convenience wrapper for cold paths that already built a Frame.
  void EnqueueFrame(const Frame& frame);
  /// Encode `headers` into the reusable encode buffer and emit HEADERS (+
  /// CONTINUATION fragments as needed) without copying the block.
  void EmitHeaderBlock(std::uint32_t stream_id, const hpack::HeaderList& headers,
                       bool end_stream);
  /// Record one frame into the installed wire tap (no-op without one).
  void TapFrame(obs::TapDirection direction, const FrameHeader& header,
                util::BytesView payload);
  /// Attach a decoded header list to the newest matching tapped HEADERS
  /// record.
  void TapHeaders(obs::TapDirection direction, std::uint32_t stream_id,
                  const hpack::HeaderList& headers);
  void MaybeReplenishWindows(std::uint32_t stream_id, std::size_t consumed);
  void FlushSendQueues();
  void FlushStreamSendQueue(Stream& stream);
  Stream& EnsureStream(std::uint32_t stream_id);
  bool IsPeerInitiated(std::uint32_t stream_id) const;
  void EndStreamSpan(std::uint32_t stream_id);

  Role role_;
  Options options_;
  Settings local_settings_;
  Settings remote_settings_;

  hpack::Encoder encoder_;
  hpack::Decoder decoder_;
  FrameParser frame_parser_;

  util::BytesArena output_;     // serialized frames awaiting the transport
  util::Bytes encode_buffer_;   // reused for every outgoing header block
  std::vector<Event> events_;
  std::map<std::uint32_t, Stream> streams_;

  // Header-block assembly state (HEADERS + CONTINUATION*).
  bool assembling_headers_ = false;
  std::uint32_t assembling_stream_id_ = 0;
  bool assembling_end_stream_ = false;
  util::Bytes header_block_;

  bool handshake_started_ = false;
  bool preface_received_ = false;   // server: client preface consumed
  util::Bytes preface_buffer_;
  bool remote_settings_received_ = false;
  bool local_settings_acked_ = false;
  bool going_away_ = false;
  bool dead_ = false;

  std::uint32_t next_stream_id_;        // next locally-initiated stream id
  std::uint32_t last_peer_stream_id_ = 0;

  FlowWindow connection_send_window_{65535};
  FlowWindow connection_recv_window_{65535};
  std::size_t connection_consumed_ = 0;
  std::map<std::uint32_t, std::size_t> stream_consumed_;

  WireStats stats_;

  // Process-wide telemetry (obs::Registry::Default / obs::Tracer::Default).
  struct Instruments {
    obs::Counter* frames_sent;
    obs::Counter* frames_received;
    obs::Counter* bytes_sent;
    obs::Counter* bytes_received;
    obs::Counter* flow_control_stalls;
    obs::Counter* streams_opened;
    /// Frame mix: one counter per known frame type and direction
    /// (http2.frames_sent.DATA, ...), indexed by the wire type byte.
    /// Unknown extension types count only in the aggregate counters.
    std::array<obs::Counter*, kFrameTypeCount> frames_sent_by_type;
    std::array<obs::Counter*, kFrameTypeCount> frames_received_by_type;
    /// Per-stream open→release latency in tracer-clock seconds.
    obs::Histogram* stream_seconds;
  };
  Instruments instruments_;
  obs::SpanId settings_span_ = 0;               ///< SETTINGS round-trip
  /// Stream-lifetime span plus its open timestamp (for stream_seconds).
  struct StreamSpan {
    obs::SpanId span = 0;
    std::uint64_t opened_nanos = 0;
  };
  std::map<std::uint32_t, StreamSpan> stream_spans_;
  obs::ConnectionTap* tap_ = nullptr;           ///< flight-recorder wire tap
};

}  // namespace sww::http2
