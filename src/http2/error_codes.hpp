// error_codes.hpp — HTTP/2 error codes (RFC 9113 §7).
//
// Carried in RST_STREAM and GOAWAY frames.
#pragma once

#include <cstdint>

namespace sww::http2 {

enum class ErrorCode : std::uint32_t {
  kNoError = 0x0,
  kProtocolError = 0x1,
  kInternalError = 0x2,
  kFlowControlError = 0x3,
  kSettingsTimeout = 0x4,
  kStreamClosed = 0x5,
  kFrameSizeError = 0x6,
  kRefusedStream = 0x7,
  kCancel = 0x8,
  kCompressionError = 0x9,
  kConnectError = 0xa,
  kEnhanceYourCalm = 0xb,
  kInadequateSecurity = 0xc,
  kHttp11Required = 0xd,
};

constexpr const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNoError: return "NO_ERROR";
    case ErrorCode::kProtocolError: return "PROTOCOL_ERROR";
    case ErrorCode::kInternalError: return "INTERNAL_ERROR";
    case ErrorCode::kFlowControlError: return "FLOW_CONTROL_ERROR";
    case ErrorCode::kSettingsTimeout: return "SETTINGS_TIMEOUT";
    case ErrorCode::kStreamClosed: return "STREAM_CLOSED";
    case ErrorCode::kFrameSizeError: return "FRAME_SIZE_ERROR";
    case ErrorCode::kRefusedStream: return "REFUSED_STREAM";
    case ErrorCode::kCancel: return "CANCEL";
    case ErrorCode::kCompressionError: return "COMPRESSION_ERROR";
    case ErrorCode::kConnectError: return "CONNECT_ERROR";
    case ErrorCode::kEnhanceYourCalm: return "ENHANCE_YOUR_CALM";
    case ErrorCode::kInadequateSecurity: return "INADEQUATE_SECURITY";
    case ErrorCode::kHttp11Required: return "HTTP_1_1_REQUIRED";
  }
  return "UNKNOWN";
}

}  // namespace sww::http2
