// settings.hpp — HTTP/2 SETTINGS parameters (RFC 9113 §6.5.2) plus the
// paper's extension parameter.
//
// The Small World Web modification is exactly here: a new SETTINGS
// identifier, SETTINGS_GEN_ABILITY (0x07 — the first unreserved value,
// chosen for prototyping, §3 of the paper), whose value advertises the
// sender's client-side content-generation capability.  Recipients that do
// not understand the identifier ignore it (RFC 9113 §6.5.2), which is what
// makes the extension deployable: a naïve peer simply keeps speaking plain
// HTTP/2.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "http2/frame.hpp"
#include "util/error.hpp"

namespace sww::http2 {

// Standard identifiers (RFC 9113).
inline constexpr std::uint16_t kSettingsHeaderTableSize = 0x1;
inline constexpr std::uint16_t kSettingsEnablePush = 0x2;
inline constexpr std::uint16_t kSettingsMaxConcurrentStreams = 0x3;
inline constexpr std::uint16_t kSettingsInitialWindowSize = 0x4;
inline constexpr std::uint16_t kSettingsMaxFrameSize = 0x5;
inline constexpr std::uint16_t kSettingsMaxHeaderListSize = 0x6;
// The paper's extension (SWW §3): generative-ability advertisement.
inline constexpr std::uint16_t kSettingsGenAbility = 0x7;

/// GEN_ABILITY is a 32-bit value.  The paper's prototype uses the binary
/// value 1; it also notes the field "can be used to negotiate more complex
/// support options, such as upscale-only" — modelled here as bit flags.
enum GenAbility : std::uint32_t {
  kGenAbilityNone = 0x0,
  kGenAbilityFull = 0x1,          ///< full client-side generation (paper's value 1)
  kGenAbilityUpscaleOnly = 0x2,   ///< §2.2: content upscaling only
  kGenAbilityTextOnly = 0x4,      ///< text expansion but no image synthesis
  kGenAbilityFrameRateBoost = 0x8,///< §3.2: client-side video frame-rate boosting
};

std::string GenAbilityToString(std::uint32_t ability);

/// Printable name of a SETTINGS identifier ("GEN_ABILITY", "0x9" for
/// unknown ids) — used by the flight recorder's frame log.
std::string SettingsIdName(std::uint16_t identifier);

/// The effective settings of one endpoint, with RFC-mandated defaults and
/// validation.  Unknown identifiers are retained (and reported) but have no
/// protocol effect — mirroring the "ignore unknown settings" rule while
/// still letting tests observe them.
class Settings {
 public:
  Settings();

  /// Apply one entry.  Returns a protocol error for invalid values
  /// (ENABLE_PUSH not 0/1, INITIAL_WINDOW_SIZE > 2^31-1 → FLOW_CONTROL_ERROR,
  /// MAX_FRAME_SIZE outside [2^14, 2^24-1]).
  util::Status Apply(const SettingsEntry& entry);

  /// Apply a whole frame's entries, stopping at the first error.
  util::Status ApplyAll(const std::vector<SettingsEntry>& entries);

  std::uint32_t header_table_size() const { return header_table_size_; }
  bool enable_push() const { return enable_push_; }
  std::uint32_t max_concurrent_streams() const { return max_concurrent_streams_; }
  std::uint32_t initial_window_size() const { return initial_window_size_; }
  std::uint32_t max_frame_size() const { return max_frame_size_; }
  std::uint32_t max_header_list_size() const { return max_header_list_size_; }
  std::uint32_t gen_ability() const { return gen_ability_; }

  void set_header_table_size(std::uint32_t v) { header_table_size_ = v; }
  void set_enable_push(bool v) { enable_push_ = v; }
  void set_max_concurrent_streams(std::uint32_t v) { max_concurrent_streams_ = v; }
  void set_initial_window_size(std::uint32_t v) { initial_window_size_ = v; }
  void set_max_frame_size(std::uint32_t v) { max_frame_size_ = v; }
  void set_max_header_list_size(std::uint32_t v) { max_header_list_size_ = v; }
  void set_gen_ability(std::uint32_t v) { gen_ability_ = v; }

  /// Entries that differ from RFC defaults — what an endpoint sends in its
  /// initial SETTINGS frame.
  std::vector<SettingsEntry> NonDefaultEntries() const;

  /// Unknown identifiers seen (id → latest value).
  const std::map<std::uint16_t, std::uint32_t>& unknown() const { return unknown_; }

 private:
  std::uint32_t header_table_size_ = 4096;
  bool enable_push_ = true;
  std::uint32_t max_concurrent_streams_ = 0xffffffffu;  // unlimited
  std::uint32_t initial_window_size_ = 65535;
  std::uint32_t max_frame_size_ = kDefaultMaxFrameSize;
  std::uint32_t max_header_list_size_ = 0xffffffffu;    // unlimited
  std::uint32_t gen_ability_ = kGenAbilityNone;
  std::map<std::uint16_t, std::uint32_t> unknown_;
};

/// Entries that must be (re)advertised to move a peer that currently holds
/// `previous` to `updated`.  Settings are sticky on the wire (RFC 9113
/// §6.5.3): a value that returns to its default must still be sent
/// explicitly, or the peer keeps the stale value.
std::vector<SettingsEntry> DiffEntries(const Settings& previous,
                                       const Settings& updated);

/// The paper's negotiation rule (§3): generative delivery is used only when
/// BOTH endpoints advertised a compatible ability; "in any case other than
/// both server and client having SETTINGS_GEN_ABILITY set ... default
/// (unsupported) behavior will be assumed."  Returns the capability subset
/// usable on the connection (bitwise AND).
std::uint32_t NegotiateGenAbility(std::uint32_t local, std::uint32_t remote);

}  // namespace sww::http2
