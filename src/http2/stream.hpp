// stream.hpp — HTTP/2 stream state (RFC 9113 §5).
//
// Tracks the per-stream lifecycle state machine and both flow-control
// windows.  The Connection owns a map of these.
#pragma once

#include <cstdint>
#include <deque>

#include "hpack/hpack.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace sww::http2 {

enum class StreamState : std::uint8_t {
  kIdle,
  kOpen,
  kHalfClosedLocal,   // we sent END_STREAM; peer may still send
  kHalfClosedRemote,  // peer sent END_STREAM; we may still send
  kClosed,
};

const char* StreamStateName(StreamState state);

/// A signed flow-control window.  Windows can go negative when the peer
/// shrinks INITIAL_WINDOW_SIZE after data was sent (RFC 9113 §6.9.2).
class FlowWindow {
 public:
  explicit FlowWindow(std::int64_t initial = 65535) : window_(initial) {}

  std::int64_t available() const { return window_; }

  /// Consume `bytes` (sending or receiving data).
  void Consume(std::int64_t bytes) { window_ -= bytes; }

  /// Widen by `increment`; errors if the window would exceed 2^31-1
  /// (FLOW_CONTROL_ERROR per RFC 9113 §6.9.1).
  util::Status Widen(std::int64_t increment);

  /// Adjust for a change of INITIAL_WINDOW_SIZE (applies the delta).
  void AdjustInitial(std::int64_t delta) { window_ += delta; }

 private:
  std::int64_t window_;
};

/// Per-stream state.  Header/body accumulation happens here so the
/// connection can emit complete-message events.
struct Stream {
  std::uint32_t id = 0;
  StreamState state = StreamState::kIdle;
  /// Tracer-clock timestamp of stream creation; the connection observes
  /// the open→release span into the http2.stream_seconds histogram.
  std::uint64_t opened_nanos = 0;

  FlowWindow send_window{65535};
  FlowWindow recv_window{65535};

  hpack::HeaderList headers;        // request or response headers
  hpack::HeaderList trailers;
  bool saw_headers = false;
  util::Bytes body;                 // accumulated DATA payload
  bool remote_end = false;          // peer sent END_STREAM
  bool local_end = false;           // we sent END_STREAM
  /// Application released the stream while data was still queued behind
  /// flow control; it is erased automatically once the queue drains.
  bool pending_release = false;

  /// Data waiting for send-window capacity.
  struct PendingData {
    util::Bytes data;
    bool end_stream = false;
  };
  std::deque<PendingData> send_queue;

  bool CanSendData() const {
    return state == StreamState::kOpen || state == StreamState::kHalfClosedRemote;
  }
  bool CanReceiveData() const {
    return state == StreamState::kOpen || state == StreamState::kHalfClosedLocal;
  }

  /// Transition on sending END_STREAM.
  void OnLocalEnd();
  /// Transition on receiving END_STREAM.
  void OnRemoteEnd();
};

}  // namespace sww::http2
