#include "http2/frame.hpp"

namespace sww::http2 {

using util::ByteReader;
using util::Bytes;
using util::BytesView;
using util::ByteWriter;
using util::Error;
using util::Result;

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kData: return "DATA";
    case FrameType::kHeaders: return "HEADERS";
    case FrameType::kPriority: return "PRIORITY";
    case FrameType::kRstStream: return "RST_STREAM";
    case FrameType::kSettings: return "SETTINGS";
    case FrameType::kPushPromise: return "PUSH_PROMISE";
    case FrameType::kPing: return "PING";
    case FrameType::kGoaway: return "GOAWAY";
    case FrameType::kWindowUpdate: return "WINDOW_UPDATE";
    case FrameType::kContinuation: return "CONTINUATION";
  }
  return "UNKNOWN";
}

void WriteFrameHeader(const FrameHeader& header, ByteWriter& writer) {
  writer.WriteU24(header.length);
  writer.WriteU8(static_cast<std::uint8_t>(header.type));
  writer.WriteU8(header.flags);
  writer.WriteU32(header.stream_id & 0x7fffffffu);
}

Result<FrameHeader> ParseFrameHeader(BytesView bytes) {
  if (bytes.size() < kFrameHeaderSize) {
    return Error(util::ErrorCode::kTruncated, "frame header needs 9 bytes");
  }
  ByteReader reader(bytes);
  FrameHeader header;
  header.length = reader.ReadU24().value();
  header.type = static_cast<FrameType>(reader.ReadU8().value());
  header.flags = reader.ReadU8().value();
  header.stream_id = reader.ReadU32().value() & 0x7fffffffu;
  return header;
}

Bytes SerializeFrame(const Frame& frame) {
  ByteWriter writer(kFrameHeaderSize + frame.payload.size());
  FrameHeader header = frame.header;
  header.length = static_cast<std::uint32_t>(frame.payload.size());
  WriteFrameHeader(header, writer);
  writer.WriteBytes(frame.payload);
  return std::move(writer).TakeBytes();
}

void AppendFrame(const FrameRef& frame, util::BytesArena& out) {
  out.AppendU24(static_cast<std::uint32_t>(frame.payload.size()));
  out.AppendU8(static_cast<std::uint8_t>(frame.header.type));
  out.AppendU8(frame.header.flags);
  out.AppendU32(frame.header.stream_id & 0x7fffffffu);
  out.Append(frame.payload);
}

Frame MakeDataFrame(std::uint32_t stream_id, BytesView data, bool end_stream) {
  Frame frame;
  frame.header.type = FrameType::kData;
  frame.header.stream_id = stream_id;
  frame.header.flags = end_stream ? kFlagEndStream : 0;
  frame.payload.assign(data.begin(), data.end());
  return frame;
}

Frame MakeHeadersFrame(std::uint32_t stream_id, BytesView block_fragment,
                       bool end_headers, bool end_stream) {
  Frame frame;
  frame.header.type = FrameType::kHeaders;
  frame.header.stream_id = stream_id;
  frame.header.flags = static_cast<std::uint8_t>(
      (end_headers ? kFlagEndHeaders : 0) | (end_stream ? kFlagEndStream : 0));
  frame.payload.assign(block_fragment.begin(), block_fragment.end());
  return frame;
}

Frame MakeContinuationFrame(std::uint32_t stream_id, BytesView block_fragment,
                            bool end_headers) {
  Frame frame;
  frame.header.type = FrameType::kContinuation;
  frame.header.stream_id = stream_id;
  frame.header.flags = end_headers ? kFlagEndHeaders : 0;
  frame.payload.assign(block_fragment.begin(), block_fragment.end());
  return frame;
}

Frame MakePriorityFrame(std::uint32_t stream_id, const PriorityPayload& priority) {
  Frame frame;
  frame.header.type = FrameType::kPriority;
  frame.header.stream_id = stream_id;
  ByteWriter writer(5);
  std::uint32_t dep = priority.dependency & 0x7fffffffu;
  if (priority.exclusive) dep |= 0x80000000u;
  writer.WriteU32(dep);
  writer.WriteU8(priority.weight);
  frame.payload = std::move(writer).TakeBytes();
  return frame;
}

Frame MakeRstStreamFrame(std::uint32_t stream_id, ErrorCode error) {
  Frame frame;
  frame.header.type = FrameType::kRstStream;
  frame.header.stream_id = stream_id;
  ByteWriter writer(4);
  writer.WriteU32(static_cast<std::uint32_t>(error));
  frame.payload = std::move(writer).TakeBytes();
  return frame;
}

Frame MakeSettingsFrame(const std::vector<SettingsEntry>& entries) {
  Frame frame;
  frame.header.type = FrameType::kSettings;
  frame.header.stream_id = 0;
  ByteWriter writer(entries.size() * 6);
  for (const SettingsEntry& entry : entries) {
    writer.WriteU16(entry.identifier);
    writer.WriteU32(entry.value);
  }
  frame.payload = std::move(writer).TakeBytes();
  return frame;
}

Frame MakeSettingsAckFrame() {
  Frame frame;
  frame.header.type = FrameType::kSettings;
  frame.header.stream_id = 0;
  frame.header.flags = kFlagAck;
  return frame;
}

Frame MakePingFrame(std::uint64_t opaque, bool ack) {
  Frame frame;
  frame.header.type = FrameType::kPing;
  frame.header.stream_id = 0;
  frame.header.flags = ack ? kFlagAck : 0;
  ByteWriter writer(8);
  writer.WriteU64(opaque);
  frame.payload = std::move(writer).TakeBytes();
  return frame;
}

Frame MakeGoawayFrame(std::uint32_t last_stream_id, ErrorCode error,
                      std::string_view debug_data) {
  Frame frame;
  frame.header.type = FrameType::kGoaway;
  frame.header.stream_id = 0;
  ByteWriter writer(8 + debug_data.size());
  writer.WriteU32(last_stream_id & 0x7fffffffu);
  writer.WriteU32(static_cast<std::uint32_t>(error));
  writer.WriteString(debug_data);
  frame.payload = std::move(writer).TakeBytes();
  return frame;
}

Frame MakeWindowUpdateFrame(std::uint32_t stream_id, std::uint32_t increment) {
  Frame frame;
  frame.header.type = FrameType::kWindowUpdate;
  frame.header.stream_id = stream_id;
  ByteWriter writer(4);
  writer.WriteU32(increment & 0x7fffffffu);
  frame.payload = std::move(writer).TakeBytes();
  return frame;
}

Result<std::vector<SettingsEntry>> ParseSettingsPayload(const Frame& frame) {
  return ParseSettingsPayload(frame.header.flags, frame.payload);
}

Result<std::vector<SettingsEntry>> ParseSettingsPayload(std::uint8_t flags,
                                                        BytesView payload) {
  if ((flags & kFlagAck) != 0 && !payload.empty()) {
    return Error(util::ErrorCode::kFrameSize, "SETTINGS ACK with payload");
  }
  if (payload.size() % 6 != 0) {
    return Error(util::ErrorCode::kFrameSize,
                 "SETTINGS payload not a multiple of 6");
  }
  std::vector<SettingsEntry> entries;
  ByteReader reader(payload);
  while (!reader.empty()) {
    SettingsEntry entry;
    entry.identifier = reader.ReadU16().value();
    entry.value = reader.ReadU32().value();
    entries.push_back(entry);
  }
  return entries;
}

Result<PriorityPayload> ParsePriorityPayload(const Frame& frame) {
  if (frame.payload.size() != 5) {
    return Error(util::ErrorCode::kFrameSize, "PRIORITY payload must be 5 bytes");
  }
  ByteReader reader(frame.payload);
  const std::uint32_t dep = reader.ReadU32().value();
  PriorityPayload priority;
  priority.exclusive = (dep & 0x80000000u) != 0;
  priority.dependency = dep & 0x7fffffffu;
  priority.weight = reader.ReadU8().value();
  return priority;
}

Result<GoawayPayload> ParseGoawayPayload(const Frame& frame) {
  if (frame.payload.size() < 8) {
    return Error(util::ErrorCode::kFrameSize, "GOAWAY payload must be >= 8 bytes");
  }
  ByteReader reader(frame.payload);
  GoawayPayload payload;
  payload.last_stream_id = reader.ReadU32().value() & 0x7fffffffu;
  payload.error_code = static_cast<ErrorCode>(reader.ReadU32().value());
  payload.debug_data = util::ToString(reader.Rest());
  return payload;
}

Result<std::uint32_t> ParseWindowUpdatePayload(const Frame& frame) {
  if (frame.payload.size() != 4) {
    return Error(util::ErrorCode::kFrameSize, "WINDOW_UPDATE payload must be 4 bytes");
  }
  ByteReader reader(frame.payload);
  const std::uint32_t increment = reader.ReadU32().value() & 0x7fffffffu;
  if (increment == 0) {
    return Error(util::ErrorCode::kProtocol, "WINDOW_UPDATE increment of 0");
  }
  return increment;
}

Result<std::uint64_t> ParsePingPayload(const Frame& frame) {
  if (frame.payload.size() != 8) {
    return Error(util::ErrorCode::kFrameSize, "PING payload must be 8 bytes");
  }
  ByteReader reader(frame.payload);
  return reader.ReadU64();
}

Result<ErrorCode> ParseRstStreamPayload(const Frame& frame) {
  if (frame.payload.size() != 4) {
    return Error(util::ErrorCode::kFrameSize, "RST_STREAM payload must be 4 bytes");
  }
  ByteReader reader(frame.payload);
  return static_cast<ErrorCode>(reader.ReadU32().value());
}

Result<Bytes> ExtractDataPayload(const Frame& frame) {
  ByteReader reader(frame.payload);
  std::size_t pad_length = 0;
  if (frame.header.HasFlag(kFlagPadded)) {
    auto pad = reader.ReadU8();
    if (!pad) return pad.error();
    pad_length = pad.value();
  }
  if (pad_length > reader.remaining()) {
    return Error(util::ErrorCode::kProtocol, "padding exceeds payload");
  }
  BytesView body = reader.Rest().first(reader.remaining() - pad_length);
  return Bytes(body.begin(), body.end());
}

Result<Bytes> ExtractHeaderBlockFragment(const Frame& frame,
                                         std::optional<PriorityPayload>* priority) {
  ByteReader reader(frame.payload);
  std::size_t pad_length = 0;
  if (frame.header.HasFlag(kFlagPadded)) {
    auto pad = reader.ReadU8();
    if (!pad) return pad.error();
    pad_length = pad.value();
  }
  if (frame.header.type == FrameType::kHeaders &&
      frame.header.HasFlag(kFlagPriority)) {
    auto dep = reader.ReadU32();
    if (!dep) return dep.error();
    auto weight = reader.ReadU8();
    if (!weight) return weight.error();
    if (priority != nullptr) {
      PriorityPayload parsed;
      parsed.exclusive = (dep.value() & 0x80000000u) != 0;
      parsed.dependency = dep.value() & 0x7fffffffu;
      parsed.weight = weight.value();
      *priority = parsed;
    }
  }
  if (pad_length > reader.remaining()) {
    return Error(util::ErrorCode::kProtocol, "padding exceeds payload");
  }
  BytesView block = reader.Rest().first(reader.remaining() - pad_length);
  return Bytes(block.begin(), block.end());
}

void FrameParser::Feed(BytesView bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void FrameParser::Compact() {
  // Avoid unbounded growth: drop consumed prefix once it dominates.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

Result<std::optional<Frame>> FrameParser::Next() {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderSize) return std::optional<Frame>{};
  BytesView view(buffer_.data() + consumed_, available);
  auto header = ParseFrameHeader(view.first(kFrameHeaderSize));
  if (!header) return header.error();
  if (header.value().length > max_frame_size_) {
    return Error(util::ErrorCode::kFrameSize,
                 "frame length " + std::to_string(header.value().length) +
                     " exceeds max " + std::to_string(max_frame_size_));
  }
  const std::size_t total = kFrameHeaderSize + header.value().length;
  if (available < total) return std::optional<Frame>{};
  Frame frame;
  frame.header = header.value();
  frame.payload.assign(view.begin() + kFrameHeaderSize, view.begin() + static_cast<std::ptrdiff_t>(total));
  consumed_ += total;
  Compact();
  return std::optional<Frame>(std::move(frame));
}

}  // namespace sww::http2
