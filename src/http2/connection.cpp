#include "http2/connection.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace sww::http2 {

using util::Bytes;
using util::BytesView;
using util::Error;
using util::Result;
using util::Status;

namespace {
constexpr std::string_view kLogComponent = "http2";
}

Connection::Connection(Role role, Options options)
    : role_(role),
      options_(std::move(options)),
      local_settings_(options_.local_settings),
      encoder_(4096),
      decoder_(local_settings_.header_table_size()),
      frame_parser_(local_settings_.max_frame_size()),
      next_stream_id_(role == Role::kClient ? 1 : 2) {
  decoder_.SetMaxTableSizeLimit(local_settings_.header_table_size());
  obs::Registry& registry = obs::Registry::Default();
  instruments_.frames_sent = &registry.GetCounter("http2.frames_sent");
  instruments_.frames_received = &registry.GetCounter("http2.frames_received");
  instruments_.bytes_sent = &registry.GetCounter("http2.bytes_sent");
  instruments_.bytes_received = &registry.GetCounter("http2.bytes_received");
  instruments_.flow_control_stalls =
      &registry.GetCounter("http2.flow_control_stalls");
  instruments_.streams_opened = &registry.GetCounter("http2.streams_opened");
  // Eagerly create the full frame-mix counter set so /metrics exposes a
  // stable series list from the first scrape (no type appears or vanishes
  // depending on which frames happened to flow yet).
  for (std::size_t t = 0; t < kFrameTypeCount; ++t) {
    const char* name = FrameTypeName(static_cast<FrameType>(t));
    instruments_.frames_sent_by_type[t] =
        &registry.GetCounter(std::string("http2.frames_sent.") + name);
    instruments_.frames_received_by_type[t] =
        &registry.GetCounter(std::string("http2.frames_received.") + name);
  }
  instruments_.stream_seconds = &registry.GetHistogram("http2.stream_seconds");
}

void Connection::StartHandshake() {
  if (handshake_started_) return;
  handshake_started_ = true;
  // The SETTINGS round-trip span runs from our first SETTINGS frame to the
  // peer's ACK — the negotiation window the paper's §5.2 client logs.
  settings_span_ = obs::Tracer::Default().BeginAsyncSpan(
      "http2.settings_roundtrip", "http2");
  obs::Tracer::Default().AddAttribute(
      settings_span_, "role", role_ == Role::kClient ? "client" : "server");
  if (role_ == Role::kClient) {
    output_.Append(kClientPreface);
    stats_.bytes_sent += kClientPreface.size();
    instruments_.bytes_sent->Add(kClientPreface.size());
  }
  EnqueueFrame(MakeSettingsFrame(local_settings_.NonDefaultEntries()));
}

void Connection::UpdateLocalSettings(const Settings& settings) {
  // Advertise exactly what changed relative to what the peer already holds
  // — including values returning to their defaults, which NonDefaultEntries
  // would silently omit.
  const std::vector<SettingsEntry> delta = DiffEntries(local_settings_, settings);
  local_settings_ = settings;
  frame_parser_.set_max_frame_size(local_settings_.max_frame_size());
  EnqueueFrame(MakeSettingsFrame(delta));
}

void Connection::EnqueueFrameRef(FrameType type, std::uint8_t flags,
                                 std::uint32_t stream_id, BytesView payload) {
  FrameRef ref;
  ref.header.length = static_cast<std::uint32_t>(payload.size());
  ref.header.type = type;
  ref.header.flags = flags;
  ref.header.stream_id = stream_id;
  ref.payload = payload;
  AppendFrame(ref, output_);
  const std::size_t wire_size = kFrameHeaderSize + payload.size();
  stats_.bytes_sent += wire_size;
  stats_.frames_sent[type]++;
  instruments_.bytes_sent->Add(wire_size);
  instruments_.frames_sent->Add();
  instruments_.frames_sent_by_type[static_cast<std::size_t>(type)]->Add();
  if (tap_ != nullptr) TapFrame(obs::TapDirection::kSent, ref.header, payload);
}

void Connection::EnqueueFrame(const Frame& frame) {
  EnqueueFrameRef(frame.header.type, frame.header.flags, frame.header.stream_id,
                  frame.payload);
}

void Connection::TapFrame(obs::TapDirection direction, const FrameHeader& header,
                          BytesView payload) {
  obs::FrameRecord record;
  record.direction = direction;
  record.type = static_cast<std::uint8_t>(header.type);
  record.type_name = FrameTypeName(header.type);
  record.stream_id = header.stream_id;
  record.flags = header.flags;
  record.length = static_cast<std::uint32_t>(payload.size());
  record.timestamp_nanos = obs::Tracer::Default().clock().NowNanos();
  // SETTINGS payloads decode inline (cheap, tiny, and only with a tap
  // installed) so the frame log shows the negotiation — including the
  // GEN_ABILITY parameter the whole SWW exchange turns on.
  if (header.type == FrameType::kSettings && !header.HasFlag(kFlagAck)) {
    if (auto entries = ParseSettingsPayload(header.flags, payload); entries.ok()) {
      for (const SettingsEntry& entry : entries.value()) {
        record.details.emplace_back(SettingsIdName(entry.identifier),
                                    std::to_string(entry.value));
      }
    }
  }
  tap_->Record(std::move(record));
}

void Connection::TapHeaders(obs::TapDirection direction,
                            std::uint32_t stream_id,
                            const hpack::HeaderList& headers) {
  if (tap_ == nullptr) return;
  std::vector<std::pair<std::string, std::string>> details;
  details.reserve(headers.size());
  for (const hpack::HeaderField& field : headers) {
    details.emplace_back(field.name, field.value);
  }
  tap_->Annotate(direction, static_cast<std::uint8_t>(FrameType::kHeaders),
                 stream_id, std::move(details));
}

Bytes Connection::TakeOutput() {
  const BytesView view = output_.View();
  Bytes out(view.begin(), view.end());
  output_.Clear();
  return out;
}

std::vector<Connection::Event> Connection::TakeEvents() {
  std::vector<Event> out = std::move(events_);
  events_.clear();
  return out;
}

std::uint32_t Connection::negotiated_gen_ability() const {
  if (!remote_settings_received_) return kGenAbilityNone;
  return NegotiateGenAbility(local_settings_.gen_ability(),
                             remote_settings_.gen_ability());
}

const Stream* Connection::FindStream(std::uint32_t stream_id) const {
  auto it = streams_.find(stream_id);
  return it == streams_.end() ? nullptr : &it->second;
}

Stream* Connection::FindMutableStream(std::uint32_t stream_id) {
  auto it = streams_.find(stream_id);
  return it == streams_.end() ? nullptr : &it->second;
}

void Connection::ReleaseStream(std::uint32_t stream_id) {
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) return;
  if (!it->second.send_queue.empty()) {
    // Data is still waiting on flow-control window; keep the stream alive
    // until FlushSendQueues drains it, then erase.
    it->second.pending_release = true;
    return;
  }
  streams_.erase(it);
  stream_consumed_.erase(stream_id);
  EndStreamSpan(stream_id);
}

void Connection::EndStreamSpan(std::uint32_t stream_id) {
  auto it = stream_spans_.find(stream_id);
  if (it == stream_spans_.end()) return;
  obs::Tracer& tracer = obs::Tracer::Default();
  // Exemplar: the stream's latency bucket remembers which distributed
  // trace put it there (context read before EndSpan, while the span is
  // certainly live).
  const obs::SpanContext context = tracer.ContextOf(it->second.span);
  tracer.EndSpan(it->second.span);
  const std::uint64_t now = tracer.clock().NowNanos();
  instruments_.stream_seconds->Observe(
      static_cast<double>(now - it->second.opened_nanos) * 1e-9,
      context.trace_id, now);
  stream_spans_.erase(it);
}

std::size_t Connection::active_stream_count() const {
  std::size_t count = 0;
  for (const auto& [id, stream] : streams_) {
    (void)id;
    if (stream.state != StreamState::kClosed) ++count;
  }
  return count;
}

bool Connection::IsPeerInitiated(std::uint32_t stream_id) const {
  const bool odd = (stream_id % 2) == 1;
  return role_ == Role::kServer ? odd : !odd;
}

Stream& Connection::EnsureStream(std::uint32_t stream_id) {
  auto [it, inserted] = streams_.try_emplace(stream_id);
  Stream& stream = it->second;
  if (inserted) {
    stream.id = stream_id;
    stream.send_window = FlowWindow(remote_settings_.initial_window_size());
    stream.recv_window = FlowWindow(local_settings_.initial_window_size());
    instruments_.streams_opened->Add();
    obs::Tracer& tracer = obs::Tracer::Default();
    const obs::SpanId span = tracer.BeginAsyncSpan(
        "http2.stream", "http2", tracer.CurrentSpan());
    tracer.AddAttribute(span, "stream_id", std::to_string(stream_id));
    tracer.AddAttribute(span, "role",
                        role_ == Role::kClient ? "client" : "server");
    stream.opened_nanos = tracer.clock().NowNanos();
    stream_spans_[stream_id] = StreamSpan{span, stream.opened_nanos};
  }
  return stream;
}

Status Connection::ConnectionError(ErrorCode code, const std::string& message) {
  // Rate-limited: a malformed-peer storm (fuzzing, a broken proxy) emits
  // one error per received frame; the bucket keeps the sink usable.
  SWW_LOG_RATELIMITED(util::LogLevel::kError, kLogComponent,
                      std::string(ErrorCodeName(code)) + ": " + message);
  if (!dead_) {
    EnqueueFrame(MakeGoawayFrame(last_peer_stream_id_, code, message));
    dead_ = true;
  }
  util::ErrorCode domain = util::ErrorCode::kProtocol;
  switch (code) {
    case ErrorCode::kCompressionError: domain = util::ErrorCode::kCompression; break;
    case ErrorCode::kFlowControlError: domain = util::ErrorCode::kFlowControl; break;
    case ErrorCode::kFrameSizeError: domain = util::ErrorCode::kFrameSize; break;
    default: break;
  }
  return Error(domain, message);
}

Status Connection::Receive(BytesView bytes) {
  if (dead_) return Error(util::ErrorCode::kClosed, "connection is dead");
  stats_.bytes_received += bytes.size();
  instruments_.bytes_received->Add(bytes.size());

  // A server must first consume the 24-byte client preface (RFC 9113 §3.4).
  if (role_ == Role::kServer && !preface_received_) {
    preface_buffer_.insert(preface_buffer_.end(), bytes.begin(), bytes.end());
    if (preface_buffer_.size() < kClientPreface.size()) return Status::Ok();
    const std::string_view got(reinterpret_cast<const char*>(preface_buffer_.data()),
                               kClientPreface.size());
    if (got != kClientPreface) {
      return ConnectionError(ErrorCode::kProtocolError, "bad client preface");
    }
    preface_received_ = true;
    BytesView rest(preface_buffer_.data() + kClientPreface.size(),
                   preface_buffer_.size() - kClientPreface.size());
    frame_parser_.Feed(rest);
    preface_buffer_.clear();
  } else {
    frame_parser_.Feed(bytes);
  }

  while (true) {
    auto next = frame_parser_.Next();
    if (!next) {
      return ConnectionError(ErrorCode::kFrameSizeError, next.error().message);
    }
    if (!next.value().has_value()) break;
    Frame frame = std::move(*next.value());
    stats_.frames_received[frame.header.type]++;
    instruments_.frames_received->Add();
    const auto type_index = static_cast<std::size_t>(frame.header.type);
    if (type_index < kFrameTypeCount) {
      instruments_.frames_received_by_type[type_index]->Add();
    }
    if (tap_ != nullptr) {
      TapFrame(obs::TapDirection::kReceived, frame.header, frame.payload);
    }
    if (Status status = HandleFrame(std::move(frame)); !status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

Status Connection::HandleFrame(Frame frame) {
  // While a header block is being assembled, only CONTINUATION frames on
  // the same stream are legal (RFC 9113 §6.10).
  if (assembling_headers_ && frame.header.type != FrameType::kContinuation) {
    return ConnectionError(ErrorCode::kProtocolError,
                           "expected CONTINUATION during header block");
  }
  // The first frame from the peer must be SETTINGS (RFC 9113 §3.4).
  if (!remote_settings_received_ && frame.header.type != FrameType::kSettings) {
    return ConnectionError(ErrorCode::kProtocolError,
                           "first frame from peer was not SETTINGS");
  }

  switch (frame.header.type) {
    case FrameType::kData: return HandleData(frame);
    case FrameType::kHeaders: return HandleHeaders(frame);
    case FrameType::kPriority: return HandlePriority(frame);
    case FrameType::kRstStream: return HandleRstStream(frame);
    case FrameType::kSettings: return HandleSettings(frame);
    case FrameType::kPushPromise:
      // We never advertise push support; receiving one is a protocol error.
      return ConnectionError(ErrorCode::kProtocolError,
                             "PUSH_PROMISE received but push is disabled");
    case FrameType::kPing: return HandlePing(frame);
    case FrameType::kGoaway: return HandleGoaway(frame);
    case FrameType::kWindowUpdate: return HandleWindowUpdate(frame);
    case FrameType::kContinuation: return HandleContinuation(frame);
  }
  // Unknown frame types MUST be ignored (RFC 9113 §4.1).
  return Status::Ok();
}

Status Connection::HandleSettings(const Frame& frame) {
  if (frame.header.stream_id != 0) {
    return ConnectionError(ErrorCode::kProtocolError, "SETTINGS on stream != 0");
  }
  if (frame.header.HasFlag(kFlagAck)) {
    if (!frame.payload.empty()) {
      return ConnectionError(ErrorCode::kFrameSizeError, "SETTINGS ACK with payload");
    }
    local_settings_acked_ = true;
    events_.push_back(Event{Event::Type::kSettingsAcked, 0, ErrorCode::kNoError, 0});
    if (settings_span_ != 0) {
      obs::Tracer& tracer = obs::Tracer::Default();
      tracer.AddAttribute(settings_span_, "negotiated_gen_ability",
                          GenAbilityToString(negotiated_gen_ability()));
      tracer.EndSpan(settings_span_);
      settings_span_ = 0;
    }
    return Status::Ok();
  }
  auto entries = ParseSettingsPayload(frame);
  if (!entries) {
    return ConnectionError(ErrorCode::kFrameSizeError, entries.error().message);
  }
  const std::uint32_t old_initial_window = remote_settings_.initial_window_size();
  if (Status status = remote_settings_.ApplyAll(entries.value()); !status.ok()) {
    const ErrorCode code = status.error().code == util::ErrorCode::kFlowControl
                               ? ErrorCode::kFlowControlError
                               : ErrorCode::kProtocolError;
    return ConnectionError(code, status.error().message);
  }
  // INITIAL_WINDOW_SIZE changes adjust every stream's send window by the
  // delta (RFC 9113 §6.9.2).
  const std::int64_t delta =
      static_cast<std::int64_t>(remote_settings_.initial_window_size()) -
      static_cast<std::int64_t>(old_initial_window);
  if (delta != 0) {
    for (auto& [id, stream] : streams_) {
      (void)id;
      stream.send_window.AdjustInitial(delta);
    }
  }
  // Cap our encoder's dynamic table at the peer's advertised limit.
  encoder_.SetMaxTableSize(
      std::min<std::size_t>(remote_settings_.header_table_size(), 4096));
  remote_settings_received_ = true;
  SWW_LOG_RATELIMITED(util::LogLevel::kInfo, kLogComponent,
                      "peer settings applied; gen_ability=" +
                          GenAbilityToString(remote_settings_.gen_ability()));
  EnqueueFrameRef(FrameType::kSettings, kFlagAck, 0, {});
  events_.push_back(
      Event{Event::Type::kRemoteSettingsReceived, 0, ErrorCode::kNoError, 0});
  FlushSendQueues();
  return Status::Ok();
}

Status Connection::HandleHeaders(const Frame& frame) {
  const std::uint32_t stream_id = frame.header.stream_id;
  if (stream_id == 0) {
    return ConnectionError(ErrorCode::kProtocolError, "HEADERS on stream 0");
  }
  if (!IsPeerInitiated(stream_id) && FindStream(stream_id) == nullptr) {
    return ConnectionError(ErrorCode::kProtocolError,
                           "HEADERS on unknown locally-initiated stream");
  }
  if (IsPeerInitiated(stream_id)) {
    if (FindStream(stream_id) == nullptr) {
      if (stream_id <= last_peer_stream_id_) {
        return ConnectionError(ErrorCode::kProtocolError,
                               "peer reused or decreased stream id");
      }
      if (going_away_) {
        // After GOAWAY we refuse new streams gracefully.
        EnqueueFrame(MakeRstStreamFrame(stream_id, ErrorCode::kRefusedStream));
        return Status::Ok();
      }
      const std::uint32_t max_streams = local_settings_.max_concurrent_streams();
      if (active_stream_count() >= max_streams) {
        EnqueueFrame(MakeRstStreamFrame(stream_id, ErrorCode::kRefusedStream));
        return Status::Ok();
      }
      last_peer_stream_id_ = stream_id;
    }
  }

  std::optional<PriorityPayload> priority;
  auto block = ExtractHeaderBlockFragment(frame, &priority);
  if (!block) {
    return ConnectionError(ErrorCode::kProtocolError, block.error().message);
  }

  Stream& stream = EnsureStream(stream_id);
  if (stream.state == StreamState::kIdle) stream.state = StreamState::kOpen;
  if (stream.state == StreamState::kClosed ||
      stream.state == StreamState::kHalfClosedLocal) {
    // Peer may still send on half-closed(local); closed is an error.
    if (stream.state == StreamState::kClosed) {
      return ConnectionError(ErrorCode::kStreamClosed, "HEADERS on closed stream");
    }
  }

  header_block_ = std::move(block).value();
  assembling_stream_id_ = stream_id;
  assembling_end_stream_ = frame.header.HasFlag(kFlagEndStream);
  if (frame.header.HasFlag(kFlagEndHeaders)) {
    return FinishHeaderBlock();
  }
  assembling_headers_ = true;
  return Status::Ok();
}

Status Connection::HandleContinuation(const Frame& frame) {
  if (!assembling_headers_) {
    return ConnectionError(ErrorCode::kProtocolError,
                           "CONTINUATION without open header block");
  }
  if (frame.header.stream_id != assembling_stream_id_) {
    return ConnectionError(ErrorCode::kProtocolError,
                           "CONTINUATION on wrong stream");
  }
  header_block_.insert(header_block_.end(), frame.payload.begin(),
                       frame.payload.end());
  if (frame.header.HasFlag(kFlagEndHeaders)) {
    assembling_headers_ = false;
    return FinishHeaderBlock();
  }
  return Status::Ok();
}

Status Connection::FinishHeaderBlock() {
  assembling_headers_ = false;
  auto headers = decoder_.DecodeBlock(header_block_);
  header_block_.clear();
  if (!headers) {
    return ConnectionError(ErrorCode::kCompressionError, headers.error().message);
  }
  // Enforce SETTINGS_MAX_HEADER_LIST_SIZE (uncompressed size, RFC 9113 §6.5.2).
  std::size_t total = 0;
  for (const auto& field : headers.value()) {
    total += field.name.size() + field.value.size() + 32;
  }
  if (total > local_settings_.max_header_list_size()) {
    return ConnectionError(ErrorCode::kProtocolError, "header list too large");
  }

  Stream& stream = EnsureStream(assembling_stream_id_);
  if (!stream.saw_headers) {
    stream.headers = std::move(headers).value();
    stream.saw_headers = true;
    TapHeaders(obs::TapDirection::kReceived, assembling_stream_id_,
               stream.headers);
  } else {
    stream.trailers = std::move(headers).value();
    TapHeaders(obs::TapDirection::kReceived, assembling_stream_id_,
               stream.trailers);
  }
  events_.push_back(Event{Event::Type::kHeadersReceived, assembling_stream_id_,
                          ErrorCode::kNoError, 0});
  if (assembling_end_stream_) {
    stream.OnRemoteEnd();
    events_.push_back(Event{Event::Type::kMessageComplete, assembling_stream_id_,
                            ErrorCode::kNoError, 0});
  }
  return Status::Ok();
}

Status Connection::HandleData(const Frame& frame) {
  const std::uint32_t stream_id = frame.header.stream_id;
  if (stream_id == 0) {
    return ConnectionError(ErrorCode::kProtocolError, "DATA on stream 0");
  }
  Stream* stream = FindMutableStream(stream_id);
  if (stream == nullptr || stream->state == StreamState::kIdle) {
    return ConnectionError(ErrorCode::kProtocolError, "DATA on idle stream");
  }
  // The whole frame payload counts against flow control, padding included.
  const std::int64_t frame_cost = static_cast<std::int64_t>(frame.payload.size());
  connection_recv_window_.Consume(frame_cost);
  stream->recv_window.Consume(frame_cost);
  if (connection_recv_window_.available() < 0) {
    return ConnectionError(ErrorCode::kFlowControlError,
                           "connection receive window exceeded");
  }
  if (stream->recv_window.available() < 0) {
    return ConnectionError(ErrorCode::kFlowControlError,
                           "stream receive window exceeded");
  }
  if (!stream->CanReceiveData()) {
    // Stream half-closed(remote) or closed: STREAM_CLOSED stream error.
    EnqueueFrame(MakeRstStreamFrame(stream_id, ErrorCode::kStreamClosed));
    MaybeReplenishWindows(stream_id, frame.payload.size());
    return Status::Ok();
  }
  auto body = ExtractDataPayload(frame);
  if (!body) {
    return ConnectionError(ErrorCode::kProtocolError, body.error().message);
  }
  stream->body.insert(stream->body.end(), body.value().begin(), body.value().end());
  if (frame.header.HasFlag(kFlagEndStream)) {
    stream->OnRemoteEnd();
    events_.push_back(
        Event{Event::Type::kMessageComplete, stream_id, ErrorCode::kNoError, 0});
  }
  MaybeReplenishWindows(stream_id, frame.payload.size());
  return Status::Ok();
}

void Connection::MaybeReplenishWindows(std::uint32_t stream_id,
                                       std::size_t consumed) {
  connection_consumed_ += consumed;
  stream_consumed_[stream_id] += consumed;
  // The replenish point must stay below half the effective window, or a
  // peer that shrank INITIAL_WINDOW_SIZE below the threshold deadlocks
  // waiting for an update that never comes.
  const std::size_t stream_threshold = std::min<std::size_t>(
      options_.window_update_threshold,
      std::max<std::uint32_t>(1u, local_settings_.initial_window_size() / 2));
  // WINDOW_UPDATE payloads are 4 bytes; build them on the stack and go
  // straight through the zero-copy lane.
  const auto enqueue_window_update = [this](std::uint32_t on_stream,
                                            std::uint32_t increment) {
    const std::uint32_t wire = increment & 0x7fffffffu;
    const std::uint8_t payload[4] = {
        static_cast<std::uint8_t>(wire >> 24), static_cast<std::uint8_t>(wire >> 16),
        static_cast<std::uint8_t>(wire >> 8), static_cast<std::uint8_t>(wire)};
    EnqueueFrameRef(FrameType::kWindowUpdate, 0, on_stream,
                    BytesView(payload, sizeof(payload)));
  };
  if (connection_consumed_ >= options_.window_update_threshold) {
    enqueue_window_update(0, static_cast<std::uint32_t>(connection_consumed_));
    (void)connection_recv_window_.Widen(
        static_cast<std::int64_t>(connection_consumed_));
    connection_consumed_ = 0;
  }
  Stream* stream = FindMutableStream(stream_id);
  if (stream != nullptr && !stream->remote_end &&
      stream_consumed_[stream_id] >= stream_threshold) {
    enqueue_window_update(stream_id,
                          static_cast<std::uint32_t>(stream_consumed_[stream_id]));
    (void)stream->recv_window.Widen(
        static_cast<std::int64_t>(stream_consumed_[stream_id]));
    stream_consumed_[stream_id] = 0;
  }
}

Status Connection::HandlePing(const Frame& frame) {
  if (frame.header.stream_id != 0) {
    return ConnectionError(ErrorCode::kProtocolError, "PING on stream != 0");
  }
  auto opaque = ParsePingPayload(frame);
  if (!opaque) {
    return ConnectionError(ErrorCode::kFrameSizeError, opaque.error().message);
  }
  if (frame.header.HasFlag(kFlagAck)) {
    events_.push_back(
        Event{Event::Type::kPingAcked, 0, ErrorCode::kNoError, opaque.value()});
  } else {
    EnqueueFrame(MakePingFrame(opaque.value(), /*ack=*/true));
  }
  return Status::Ok();
}

Status Connection::HandleGoaway(const Frame& frame) {
  auto payload = ParseGoawayPayload(frame);
  if (!payload) {
    return ConnectionError(ErrorCode::kFrameSizeError, payload.error().message);
  }
  going_away_ = true;
  events_.push_back(Event{Event::Type::kGoawayReceived, payload.value().last_stream_id,
                          payload.value().error_code, 0});
  return Status::Ok();
}

Status Connection::HandleWindowUpdate(const Frame& frame) {
  auto increment = ParseWindowUpdatePayload(frame);
  if (!increment) {
    if (increment.error().code == util::ErrorCode::kProtocol &&
        frame.header.stream_id != 0) {
      // Zero increment on a stream is a stream error.
      EnqueueFrame(MakeRstStreamFrame(frame.header.stream_id,
                                      ErrorCode::kProtocolError));
      return Status::Ok();
    }
    return ConnectionError(ErrorCode::kProtocolError, increment.error().message);
  }
  if (frame.header.stream_id == 0) {
    if (Status status = connection_send_window_.Widen(increment.value());
        !status.ok()) {
      return ConnectionError(ErrorCode::kFlowControlError, status.error().message);
    }
  } else {
    Stream* stream = FindMutableStream(frame.header.stream_id);
    if (stream != nullptr) {
      if (Status status = stream->send_window.Widen(increment.value());
          !status.ok()) {
        EnqueueFrame(MakeRstStreamFrame(frame.header.stream_id,
                                        ErrorCode::kFlowControlError));
        return Status::Ok();
      }
    }
  }
  FlushSendQueues();
  return Status::Ok();
}

Status Connection::HandleRstStream(const Frame& frame) {
  if (frame.header.stream_id == 0) {
    return ConnectionError(ErrorCode::kProtocolError, "RST_STREAM on stream 0");
  }
  auto code = ParseRstStreamPayload(frame);
  if (!code) {
    return ConnectionError(ErrorCode::kFrameSizeError, code.error().message);
  }
  Stream* stream = FindMutableStream(frame.header.stream_id);
  if (stream == nullptr) {
    // RST for an idle stream we never saw is a protocol error; for a
    // released stream it is benign.
    if (IsPeerInitiated(frame.header.stream_id) &&
        frame.header.stream_id > last_peer_stream_id_) {
      return ConnectionError(ErrorCode::kProtocolError, "RST_STREAM on idle stream");
    }
    return Status::Ok();
  }
  stream->state = StreamState::kClosed;
  stream->send_queue.clear();
  events_.push_back(Event{Event::Type::kStreamReset, frame.header.stream_id,
                          code.value(), 0});
  return Status::Ok();
}

Status Connection::HandlePriority(const Frame& frame) {
  if (frame.header.stream_id == 0) {
    return ConnectionError(ErrorCode::kProtocolError, "PRIORITY on stream 0");
  }
  auto priority = ParsePriorityPayload(frame);
  if (!priority) {
    // PRIORITY with a bad length is a stream error (RFC 9113 §6.3).
    EnqueueFrame(MakeRstStreamFrame(frame.header.stream_id,
                                    ErrorCode::kFrameSizeError));
    return Status::Ok();
  }
  if (priority.value().dependency == frame.header.stream_id) {
    EnqueueFrame(MakeRstStreamFrame(frame.header.stream_id,
                                    ErrorCode::kProtocolError));
  }
  // Scheduling hints are accepted but we serve streams in submission order.
  return Status::Ok();
}

Result<std::uint32_t> Connection::SubmitRequest(const hpack::HeaderList& headers,
                                                BytesView body,
                                                bool end_stream_after_body) {
  if (role_ != Role::kClient) {
    return Error(util::ErrorCode::kInvalidArgument,
                 "SubmitRequest is client-only");
  }
  if (dead_ || going_away_) {
    return Error(util::ErrorCode::kClosed, "connection is closing");
  }
  const std::uint32_t stream_id = next_stream_id_;
  next_stream_id_ += 2;
  Stream& stream = EnsureStream(stream_id);
  stream.state = StreamState::kOpen;

  const bool end_stream = body.empty() && end_stream_after_body;
  EmitHeaderBlock(stream_id, headers, end_stream);
  if (end_stream) {
    stream.OnLocalEnd();
    return stream_id;
  }
  if (!body.empty()) {
    if (Status status = SubmitData(stream_id, body, end_stream_after_body);
        !status.ok()) {
      return status.error();
    }
  }
  return stream_id;
}

Status Connection::SubmitHeaders(std::uint32_t stream_id,
                                 const hpack::HeaderList& headers,
                                 bool end_stream) {
  Stream* stream = FindMutableStream(stream_id);
  if (stream == nullptr) {
    return Error(util::ErrorCode::kNotFound, "unknown stream");
  }
  if (stream->state == StreamState::kClosed) {
    return Error(util::ErrorCode::kClosed, "stream is closed");
  }
  EmitHeaderBlock(stream_id, headers, end_stream);
  if (end_stream) stream->OnLocalEnd();
  return Status::Ok();
}

void Connection::EmitHeaderBlock(std::uint32_t stream_id,
                                 const hpack::HeaderList& headers,
                                 bool end_stream) {
  // One reusable buffer per connection: after warm-up the encode + frame
  // emission path performs no heap allocation and copies the block exactly
  // once (into the output arena).
  encode_buffer_.clear();
  encoder_.EncodeBlockInto(headers, encode_buffer_);
  const std::uint8_t stream_flags = end_stream ? kFlagEndStream : 0;
  const std::size_t max_fragment = remote_settings_.max_frame_size();
  BytesView view(encode_buffer_);
  if (view.size() <= max_fragment) {
    EnqueueFrameRef(FrameType::kHeaders,
                    static_cast<std::uint8_t>(kFlagEndHeaders | stream_flags),
                    stream_id, view);
  } else {
    EnqueueFrameRef(FrameType::kHeaders, stream_flags, stream_id,
                    view.first(max_fragment));
    view = view.subspan(max_fragment);
    while (view.size() > max_fragment) {
      EnqueueFrameRef(FrameType::kContinuation, 0, stream_id,
                      view.first(max_fragment));
      view = view.subspan(max_fragment);
    }
    EnqueueFrameRef(FrameType::kContinuation, kFlagEndHeaders, stream_id, view);
  }
  TapHeaders(obs::TapDirection::kSent, stream_id, headers);
}

Status Connection::SubmitData(std::uint32_t stream_id, BytesView data,
                              bool end_stream) {
  Stream* stream = FindMutableStream(stream_id);
  if (stream == nullptr) {
    return Error(util::ErrorCode::kNotFound, "unknown stream");
  }
  if (!stream->CanSendData()) {
    return Error(util::ErrorCode::kClosed,
                 std::string("cannot send data in state ") +
                     StreamStateName(stream->state));
  }
  Stream::PendingData pending;
  pending.data.assign(data.begin(), data.end());
  pending.end_stream = end_stream;
  stream->send_queue.push_back(std::move(pending));
  FlushStreamSendQueue(*stream);
  return Status::Ok();
}

void Connection::FlushSendQueues() {
  for (auto it = streams_.begin(); it != streams_.end();) {
    FlushStreamSendQueue(it->second);
    if (it->second.pending_release && it->second.send_queue.empty()) {
      stream_consumed_.erase(it->first);
      EndStreamSpan(it->first);
      it = streams_.erase(it);
    } else {
      ++it;
    }
  }
}

void Connection::FlushStreamSendQueue(Stream& stream) {
  const std::size_t max_frame = remote_settings_.max_frame_size();
  while (!stream.send_queue.empty()) {
    Stream::PendingData& pending = stream.send_queue.front();
    if (pending.data.empty()) {
      // Bare END_STREAM marker.
      if (pending.end_stream) {
        EnqueueFrameRef(FrameType::kData, kFlagEndStream, stream.id, {});
        stream.OnLocalEnd();
      }
      stream.send_queue.pop_front();
      continue;
    }
    const std::int64_t window = std::min(connection_send_window_.available(),
                                         stream.send_window.available());
    if (window <= 0) {  // blocked on flow control
      ++stats_.flow_control_stalls;
      instruments_.flow_control_stalls->Add();
      return;
    }
    const std::size_t chunk_size =
        std::min({pending.data.size(), static_cast<std::size_t>(window), max_frame});
    BytesView chunk(pending.data.data(), chunk_size);
    const bool is_last_chunk = chunk_size == pending.data.size();
    const bool end_stream = is_last_chunk && pending.end_stream;
    EnqueueFrameRef(FrameType::kData, end_stream ? kFlagEndStream : 0,
                    stream.id, chunk);
    connection_send_window_.Consume(static_cast<std::int64_t>(chunk_size));
    stream.send_window.Consume(static_cast<std::int64_t>(chunk_size));
    if (is_last_chunk) {
      if (end_stream) stream.OnLocalEnd();
      stream.send_queue.pop_front();
    } else {
      pending.data.erase(pending.data.begin(),
                         pending.data.begin() + static_cast<std::ptrdiff_t>(chunk_size));
    }
  }
}

Status Connection::ResetStream(std::uint32_t stream_id, ErrorCode error) {
  Stream* stream = FindMutableStream(stream_id);
  if (stream == nullptr) {
    return Error(util::ErrorCode::kNotFound, "unknown stream");
  }
  EnqueueFrame(MakeRstStreamFrame(stream_id, error));
  stream->state = StreamState::kClosed;
  stream->send_queue.clear();
  return Status::Ok();
}

void Connection::SendPing(std::uint64_t opaque) {
  EnqueueFrame(MakePingFrame(opaque, /*ack=*/false));
}

void Connection::SendGoaway(ErrorCode error, std::string_view debug_data) {
  EnqueueFrame(MakeGoawayFrame(last_peer_stream_id_, error, debug_data));
  going_away_ = true;
}

}  // namespace sww::http2
