// device.hpp — calibrated device models for generation time and energy.
//
// The paper's evaluation hardware (§6.1):
//   * laptop — MacBook Pro, M1 Pro, 16 GB, 16-core integrated GPU, FP16,
//     no large text encoder, REQUIRES ATTENTION SPLITTING (the memory-
//     constrained path that blows up at 1024×1024 — §6.3.1 reports 310 s);
//   * workstation — Threadripper Pro, 128 GB, 2× NVIDIA ADA 4000, FP16,
//     large text encoder, no attention splitting.
//
// Instead of pretending wall-clock on this machine matches an M1 Pro, the
// device model computes *simulated* seconds from calibrated constants
// (DESIGN.md §4):
//
//   image:  t = encoder_overhead + base_coeff · (steps/15)
//                                 · (model_step_cost / sd3_step_cost)
//                                 · (pixels/256²)^pixel_exponent
//
// The three Table 2 rows per device pin (encoder_overhead, base_coeff,
// pixel_exponent) exactly for SD 3 Medium at 15 steps; pixel_exponent 2.30
// on the laptop vs 1.34 on the workstation IS the attention-splitting
// penalty.  Table 1's per-step numbers at 224² are carried verbatim in the
// model specs.  Energy is power × time with per-task power draw fitted to
// Table 2's energy cells.
#pragma once

#include <string>

#include "genai/model_specs.hpp"

namespace sww::energy {

struct DeviceProfile {
  std::string name;
  bool attention_splitting = false;

  // Image generation time model (seconds).
  double encoder_overhead_s;  ///< fixed per-image cost (text encoder, VAE…)
  double base_coeff_s;        ///< variable cost of SD3@15steps@256²
  double pixel_exponent;      ///< superlinearity in pixel count

  // Per-task average power draw (watts), fitted to Table 2's energy cells.
  double image_power_w;
  double text_power_w;

  // Text generation (seconds) = model base time × slowdown × length wobble.
  double text_slowdown;       ///< 1.0 for the workstation reference
};

/// The paper's two evaluation machines.
const DeviceProfile& Laptop();
const DeviceProfile& Workstation();

/// Simulated seconds to generate a width×height image with `steps`
/// denoising steps on `device`.  `spec.server_only` models (DALLE-3) have
/// no client-side timing; the function returns 0 for them.
double ImageGenerationSeconds(const DeviceProfile& device,
                              const genai::ImageModelSpec& spec, int steps,
                              int width, int height);

/// Energy (Wh) for the same generation.
double ImageGenerationEnergyWh(const DeviceProfile& device,
                               const genai::ImageModelSpec& spec, int steps,
                               int width, int height);

/// Simulated seconds to expand text to ~`words` words.  Implements the
/// §6.3.2 shape: weak, non-monotonic length dependence (reasoning-token
/// overhead makes tightly-bounded 50-word outputs *slower* than 100/150
/// for the DeepSeek-R1 family), and a ≈2.5× laptop/workstation ratio.
double TextGenerationSeconds(const DeviceProfile& device,
                             const genai::TextModelSpec& spec, int words);

double TextGenerationEnergyWh(const DeviceProfile& device,
                              const genai::TextModelSpec& spec, int words);

/// Table 1's "time per step" at the 224×224 operating point (seconds).
double TimePerStep224(const DeviceProfile& device,
                      const genai::ImageModelSpec& spec);

/// Simulated seconds to upscale to an output of out_width×out_height.
/// §2.2: "Content upscaling is also usually faster than content
/// generation, with sub-second inference" — the model is a small fixed
/// cost plus a per-megapixel term, sub-second at display sizes on both
/// devices.
double UpscaleSeconds(const DeviceProfile& device, int out_width,
                      int out_height);
double UpscaleEnergyWh(const DeviceProfile& device, int out_width,
                       int out_height);

}  // namespace sww::energy
