#include "energy/device.hpp"

#include <cmath>

namespace sww::energy {

namespace {
// Calibration anchor: SD 3 Medium's step costs (the model Table 2 uses).
constexpr double kSd3StepLaptop = 0.38;
constexpr double kSd3StepWorkstation = 0.05;
constexpr double kReferencePixels = 256.0 * 256.0;

/// Per-model "thinking token" constants for the text length wobble.
/// tokens(w) = thinking + short_penalty / w + w;   wobble = tokens(w)/tokens(250).
/// The R1 family burns a reasoning budget regardless of output length and
/// spends extra effort fitting tight short outputs — which reproduces the
/// paper's observation that 50-word generations take longer than 100- and
/// 150-word ones for three of the four models.
struct Wobble {
  double thinking;
  double short_penalty;
};

Wobble WobbleFor(const genai::TextModelSpec& spec) {
  if (spec.name == "llama-3.2") {
    // Non-reasoning model: nearly monotonic in length.
    return Wobble{30.0, 1500.0};
  }
  return Wobble{150.0, 9000.0};
}

double LengthWobble(const genai::TextModelSpec& spec, int words) {
  const Wobble w = WobbleFor(spec);
  auto tokens = [&w](double n) { return w.thinking + w.short_penalty / n + n; };
  // Damped toward 1: generation time has only a *weak* dependence on the
  // requested length (§6.3.2), anchored at the 250-word Table 2 row.
  const double raw = tokens(static_cast<double>(words)) / tokens(250.0);
  return 1.0 + 0.35 * (raw - 1.0);
}

}  // namespace

const DeviceProfile& Laptop() {
  static const DeviceProfile profile = {
      "laptop (M1 Pro)",
      /*attention_splitting=*/true,
      // Fit of Table 2's laptop column (7 s / 19 s / 310 s at 256²/512²/1024²):
      /*encoder_overhead_s=*/6.48,
      /*base_coeff_s=*/0.516,
      /*pixel_exponent=*/2.30,
      /*image_power_w=*/10.4,
      /*text_power_w=*/1.125,
      /*text_slowdown=*/0.0,  // per-model slowdown from the spec is used
  };
  return profile;
}

const DeviceProfile& Workstation() {
  static const DeviceProfile profile = {
      "workstation (2x ADA 4000)",
      /*attention_splitting=*/false,
      // Fit of Table 2's workstation column (1.0 s / 1.7 s / 6.2 s):
      /*encoder_overhead_s=*/0.871,
      /*base_coeff_s=*/0.129,
      /*pixel_exponent=*/1.34,
      /*image_power_w=*/130.0,
      /*text_power_w=*/141.2,
      /*text_slowdown=*/1.0,
  };
  return profile;
}

double ImageGenerationSeconds(const DeviceProfile& device,
                              const genai::ImageModelSpec& spec, int steps,
                              int width, int height) {
  if (spec.server_only) return 0.0;
  const double sd3_step = device.attention_splitting ? kSd3StepLaptop
                                                     : kSd3StepWorkstation;
  const double model_step = device.attention_splitting
                                ? spec.step_cost_laptop_s
                                : spec.step_cost_workstation_s;
  const double pixels = static_cast<double>(width) * height;
  const double pixel_factor =
      std::pow(pixels / kReferencePixels, device.pixel_exponent);
  return device.encoder_overhead_s +
         device.base_coeff_s * (steps / 15.0) * (model_step / sd3_step) *
             pixel_factor;
}

double ImageGenerationEnergyWh(const DeviceProfile& device,
                               const genai::ImageModelSpec& spec, int steps,
                               int width, int height) {
  return ImageGenerationSeconds(device, spec, steps, width, height) *
         device.image_power_w / 3600.0;
}

double TextGenerationSeconds(const DeviceProfile& device,
                             const genai::TextModelSpec& spec, int words) {
  const double slowdown =
      device.attention_splitting ? spec.laptop_slowdown : 1.0;
  return spec.base_time_workstation_s * slowdown * LengthWobble(spec, words);
}

double TextGenerationEnergyWh(const DeviceProfile& device,
                              const genai::TextModelSpec& spec, int words) {
  return TextGenerationSeconds(device, spec, words) * device.text_power_w /
         3600.0;
}

double TimePerStep224(const DeviceProfile& device,
                      const genai::ImageModelSpec& spec) {
  if (spec.server_only) return 0.0;
  return device.attention_splitting ? spec.step_cost_laptop_s
                                    : spec.step_cost_workstation_s;
}

double UpscaleSeconds(const DeviceProfile& device, int out_width,
                      int out_height) {
  const double megapixels =
      static_cast<double>(out_width) * out_height / 1e6;
  // Laptop ≈ 0.05 s + 0.35 s/MPx; workstation ≈ 0.02 s + 0.08 s/MPx —
  // sub-second up to 4K-frame outputs, far below generation cost.
  return device.attention_splitting ? 0.05 + 0.35 * megapixels
                                    : 0.02 + 0.08 * megapixels;
}

double UpscaleEnergyWh(const DeviceProfile& device, int out_width,
                       int out_height) {
  return UpscaleSeconds(device, out_width, out_height) * device.image_power_w /
         3600.0;
}

}  // namespace sww::energy
