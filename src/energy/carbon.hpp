// carbon.hpp — embodied carbon accounting (§6.4, §7 "Sustainability").
//
// "Storage devices have a high environmental toll, amounting to
// 6-7 kgCO2e per terabyte of SSD.  With exabyte scale storage, even modest
// compression can save millions of kgCO2e."  This module does that
// arithmetic for the CDN/storage benches.
#pragma once

#include <cstdint>

namespace sww::energy {

/// Mid-point of the paper's cited 6-7 kgCO2e per TB of SSD.
inline constexpr double kSsdKgCo2PerTB = 6.5;

/// Embodied carbon of `bytes` of SSD storage, kgCO2e (decimal TB).
double EmbodiedCarbonKg(std::uint64_t bytes);
double EmbodiedCarbonKgFromTB(double terabytes);

/// Carbon saved by compressing a corpus of `original_bytes` by `factor`.
double CarbonSavedKg(double original_terabytes, double compression_factor);

/// Grams CO2e per kWh of grid electricity (world average, for converting
/// operational energy to carbon in the benches).
inline constexpr double kGridGramsCo2PerKwh = 436.0;

double OperationalCarbonGrams(double energy_wh);

}  // namespace sww::energy
