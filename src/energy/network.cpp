#include "energy/network.hpp"

namespace sww::energy {

double TransmissionSeconds(std::uint64_t bytes, double mbps) {
  return static_cast<double>(bytes) * 8.0 / (mbps * 1e6);
}

double TransmissionEnergyWh(std::uint64_t bytes) {
  return static_cast<double>(bytes) / 1e6 * kWhPerMegabyte;
}

double FleetTraffic::MonthlyEnergySavingsMWh() const {
  // Traffic saved per month in MB, times Wh/MB, to MWh.
  const double saved_exabytes =
      monthly_exabytes * (1.0 - 1.0 / compression_factor);
  const double saved_megabytes = saved_exabytes * 1e12;
  return saved_megabytes * kWhPerMegabyte / 1e6;
}

}  // namespace sww::energy
