#include "energy/carbon.hpp"

namespace sww::energy {

double EmbodiedCarbonKg(std::uint64_t bytes) {
  return static_cast<double>(bytes) / 1e12 * kSsdKgCo2PerTB;
}

double EmbodiedCarbonKgFromTB(double terabytes) {
  return terabytes * kSsdKgCo2PerTB;
}

double CarbonSavedKg(double original_terabytes, double compression_factor) {
  if (compression_factor <= 1.0) return 0.0;
  const double remaining = original_terabytes / compression_factor;
  return EmbodiedCarbonKgFromTB(original_terabytes - remaining);
}

double OperationalCarbonGrams(double energy_wh) {
  return energy_wh / 1000.0 * kGridGramsCo2PerKwh;
}

}  // namespace sww::energy
