// network.hpp — network transmission time and energy (§6.4).
//
// Constants from the paper: a "typical 100 Mbps link" for transmission
// time, and Telefónica's 2024 consumption of 38 MWh/Petabyte
// (= 0.038 Wh/MB) for energy per unit of traffic.  The paper notes network
// energy today is dominated by *static* power — these figures are the
// traffic-proportional accounting it uses for the §6.4 comparison.
#pragma once

#include <cstdint>

namespace sww::energy {

inline constexpr double kDefaultLinkMbps = 100.0;
/// Telefónica 2024: 38 MWh / PB  →  0.038 Wh / MB (decimal megabytes).
inline constexpr double kWhPerMegabyte = 0.038;

/// Seconds to transmit `bytes` over a link of `mbps` megabits/second.
double TransmissionSeconds(std::uint64_t bytes, double mbps = kDefaultLinkMbps);

/// Traffic-proportional transmission energy in Wh.
double TransmissionEnergyWh(std::uint64_t bytes);

/// Mobile-web fleet model (§7): monthly exabytes of mobile web traffic and
/// the petabytes/month it shrinks to under a given compression factor.
struct FleetTraffic {
  double monthly_exabytes = 2.5;      ///< paper: "2-3 Exabytes/month"
  double compression_factor = 100.0;  ///< "approximately two orders of magnitude"

  double CompressedPetabytesPerMonth() const {
    return monthly_exabytes * 1000.0 / compression_factor;
  }
  double MonthlyEnergySavingsMWh() const;
};

}  // namespace sww::energy
