// simd_differential_test — randomized differential suites for the SIMD
// compute fast lanes (PR 7), following the PR 5 wire-lane playbook: the
// scalar lane is the in-tree oracle, and every vector lane must agree
// with it TO THE BIT on 10k randomized inputs per kernel.  Nothing here
// uses tolerances: a single flipped bit in any lane is a failure.
//
// Layers covered:
//   * util::simd kernels directly — DotPairwise (plus an independent
//     re-implementation of the canonical fixed-tree semantics), SumTree,
//     Blend, Axpy, CounterRangeRow, MatchLength;
//   * whole product paths driven through each lane via SetActiveLane —
//     genai::Cosine, the LZ77 tokenizer, and a full diffusion render.
//
// The suite is also run under ASAN/UBSAN and with SWW_SIMD forced to each
// lane by the simd-differential CI job.
#include "util/simd.hpp"

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "compress/swz.hpp"
#include "genai/diffusion.hpp"
#include "genai/embedding.hpp"
#include "metrics/clip.hpp"
#include "util/rng.hpp"

namespace sww {
namespace {

namespace simd = util::simd;

constexpr int kInputs = 10000;

/// The vector lanes available on this host (scalar always included, as
/// the oracle everything else is diffed against).
std::vector<simd::Lane> SupportedLanes() {
  std::vector<simd::Lane> lanes = {simd::Lane::kScalar};
  if (simd::LaneSupported(simd::Lane::kSse2)) lanes.push_back(simd::Lane::kSse2);
  if (simd::LaneSupported(simd::Lane::kAvx2)) lanes.push_back(simd::Lane::kAvx2);
  return lanes;
}

/// Bitwise double equality (== would conflate +0.0 and -0.0).
bool SameBits(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(a));
  std::memcpy(&ub, &b, sizeof(b));
  return ua == ub;
}

/// Bitwise buffer equality; tolerates n == 0 (where vector::data() may be
/// null and memcmp would be undefined).
bool SameBuffers(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Independent statement of the canonical reduction semantics, written as
/// directly as possible: zero-pad to whole 64-element blocks, reduce each
/// block by a balanced stride-halving tree, combine block sums by the
/// same tree over the block count padded to a power of two.  The simd
/// layer's shared driver is NOT used here, so a bug in it cannot hide.
double ReferenceTreeReduce(std::vector<double> terms) {
  if (terms.empty()) return 0.0;
  terms.resize(((terms.size() + 63) / 64) * 64, 0.0);
  std::vector<double> sums;
  for (std::size_t begin = 0; begin < terms.size(); begin += 64) {
    double block[64];
    std::memcpy(block, terms.data() + begin, sizeof(block));
    for (std::size_t s = 32; s >= 1; s /= 2) {
      for (std::size_t i = 0; i < s; ++i) block[i] += block[i + s];
    }
    sums.push_back(block[0]);
  }
  std::size_t padded = 1;
  while (padded < sums.size()) padded *= 2;
  sums.resize(padded, 0.0);
  // Adjacent-pair folding: (b0+b1), (b2+b3), … — the contiguous balanced
  // tree the canonical semantics prescribes for combining block sums.
  while (sums.size() > 1) {
    std::vector<double> next(sums.size() / 2);
    for (std::size_t i = 0; i < next.size(); ++i) {
      next[i] = sums[2 * i] + sums[2 * i + 1];
    }
    sums = std::move(next);
  }
  return sums[0];
}

TEST(SimdDifferential, LaneNamesRoundTrip) {
  EXPECT_EQ(simd::LaneName(simd::Lane::kScalar), "scalar");
  EXPECT_EQ(simd::LaneName(simd::Lane::kSse2), "sse2");
  EXPECT_EQ(simd::LaneName(simd::Lane::kAvx2), "avx2");
  EXPECT_TRUE(simd::LaneSupported(simd::Lane::kScalar));
  EXPECT_TRUE(simd::LaneSupported(simd::BestSupportedLane()));
}

TEST(SimdDifferential, SetActiveLaneClampsToSupported) {
  const simd::Lane before = simd::ActiveLane();
  EXPECT_EQ(simd::SetActiveLane(simd::Lane::kScalar), simd::Lane::kScalar);
  EXPECT_EQ(simd::ActiveLane(), simd::Lane::kScalar);
  // Requesting the best lane always succeeds; anything above it clamps.
  EXPECT_EQ(simd::SetActiveLane(simd::BestSupportedLane()),
            simd::BestSupportedLane());
  simd::SetActiveLane(before);
}

TEST(SimdDifferential, DotPairwiseMatchesOracleAndReference) {
  util::Rng rng(0x51D0D01ULL);
  const std::vector<simd::Lane> lanes = SupportedLanes();
  for (int trial = 0; trial < kInputs; ++trial) {
    // Mixed sizes: the embedding dimension (64), ragged tails, multiple
    // blocks, and wide magnitude spreads to exercise rounding.
    const std::size_t n = trial % 4 == 0
                              ? 64
                              : static_cast<std::size_t>(rng.NextBounded(200));
    std::vector<double> a(n);
    std::vector<double> b(n);
    std::vector<double> products(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.NextGaussian() * std::pow(10.0, rng.NextRange(-6.0, 6.0));
      b[i] = rng.NextGaussian();
      products[i] = a[i] * b[i];
    }
    const double reference = ReferenceTreeReduce(products);
    const double oracle =
        simd::DotPairwise(a.data(), b.data(), n, simd::Lane::kScalar);
    ASSERT_TRUE(SameBits(oracle, reference))
        << "scalar oracle diverged from the canonical semantics at n=" << n;
    for (simd::Lane lane : lanes) {
      const double got = simd::DotPairwise(a.data(), b.data(), n, lane);
      ASSERT_TRUE(SameBits(got, oracle))
          << simd::LaneName(lane) << " dot diverged at n=" << n << ": " << got
          << " vs " << oracle;
    }
  }
}

TEST(SimdDifferential, SumTreeMatchesOracleAndReference) {
  util::Rng rng(0x51D50FULL);
  const std::vector<simd::Lane> lanes = SupportedLanes();
  for (int trial = 0; trial < kInputs; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.NextBounded(300));
    std::vector<double> x(n);
    for (double& v : x) v = rng.NextRange(-1e6, 1e6);
    const double reference = ReferenceTreeReduce(x);
    const double oracle = simd::SumTree(x.data(), n, simd::Lane::kScalar);
    ASSERT_TRUE(SameBits(oracle, reference)) << "n=" << n;
    for (simd::Lane lane : lanes) {
      ASSERT_TRUE(SameBits(simd::SumTree(x.data(), n, lane), oracle))
          << simd::LaneName(lane) << " sum diverged at n=" << n;
    }
  }
}

TEST(SimdDifferential, BlendMatchesOracleBitwise) {
  util::Rng rng(0xB1E2D0ULL);
  const std::vector<simd::Lane> lanes = SupportedLanes();
  for (int trial = 0; trial < kInputs; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.NextBounded(130));
    const double t = rng.NextDouble();
    std::vector<double> dst(n);
    std::vector<double> src(n);
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = rng.NextGaussian(0.0, 52.0);
      src[i] = rng.NextGaussian(0.0, 52.0);
    }
    std::vector<double> expected = dst;
    simd::Blend(expected.data(), src.data(), t, n, simd::Lane::kScalar);
    for (simd::Lane lane : lanes) {
      std::vector<double> got = dst;
      simd::Blend(got.data(), src.data(), t, n, lane);
      ASSERT_TRUE(SameBuffers(got, expected))
          << simd::LaneName(lane) << " blend diverged at n=" << n;
    }
  }
}

TEST(SimdDifferential, AxpyMatchesOracleBitwise) {
  util::Rng rng(0xA79ULL);
  const std::vector<simd::Lane> lanes = SupportedLanes();
  for (int trial = 0; trial < kInputs; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.NextBounded(130));
    const double scale = rng.NextGaussian() * 50.0;
    std::vector<double> dst(n);
    std::vector<double> src(n);
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = rng.NextGaussian();
      src[i] = rng.NextGaussian();
    }
    std::vector<double> expected = dst;
    simd::Axpy(expected.data(), src.data(), scale, n, simd::Lane::kScalar);
    for (simd::Lane lane : lanes) {
      std::vector<double> got = dst;
      simd::Axpy(got.data(), src.data(), scale, n, lane);
      ASSERT_TRUE(SameBuffers(got, expected))
          << simd::LaneName(lane) << " axpy diverged at n=" << n;
    }
  }
}

TEST(SimdDifferential, CounterRangeRowMatchesStatelessHash) {
  util::Rng rng(0xC0117E4ULL);
  const std::vector<simd::Lane> lanes = SupportedLanes();
  for (int trial = 0; trial < kInputs; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.NextBounded(70));
    const std::uint64_t seed = rng.NextU64();
    const std::uint64_t x0 = rng.NextBounded(1 << 20);
    const std::uint64_t y = rng.NextBounded(1 << 20);
    const double lo = rng.NextRange(-100.0, 0.0);
    const double hi = rng.NextRange(0.0, 100.0);
    // The ground truth is the public stateless hash itself, element by
    // element — CounterRangeRow in any lane must reproduce it exactly.
    std::vector<double> expected(n);
    for (std::size_t i = 0; i < n; ++i) {
      expected[i] = util::CounterRange(seed, x0 + i, y, lo, hi);
    }
    for (simd::Lane lane : lanes) {
      std::vector<double> got(n);
      simd::CounterRangeRow(seed, x0, y, lo, hi, got.data(), n, lane);
      ASSERT_TRUE(SameBuffers(got, expected))
          << simd::LaneName(lane) << " texture row diverged at n=" << n;
    }
  }
}

TEST(SimdDifferential, MatchLengthMatchesOracle) {
  util::Rng rng(0x3A7C4ULL);
  const std::vector<simd::Lane> lanes = SupportedLanes();
  for (int trial = 0; trial < kInputs; ++trial) {
    const std::size_t limit = static_cast<std::size_t>(rng.NextBounded(160));
    std::vector<std::uint8_t> a(limit + 1, 0);
    for (auto& byte : a) byte = static_cast<std::uint8_t>(rng.NextBounded(4));
    std::vector<std::uint8_t> b = a;
    // Plant the first mismatch at a controlled position (sometimes past
    // the limit, so full-match and every partial position are covered —
    // including inside and at the edge of 16/32-byte vector steps).
    const std::size_t mismatch =
        static_cast<std::size_t>(rng.NextBounded(limit + 8));
    if (mismatch < limit) b[mismatch] ^= 0x5a;
    const std::size_t expected =
        simd::MatchLength(a.data(), b.data(), limit, simd::Lane::kScalar);
    ASSERT_EQ(expected, std::min(mismatch, limit));
    for (simd::Lane lane : lanes) {
      ASSERT_EQ(simd::MatchLength(a.data(), b.data(), limit, lane), expected)
          << simd::LaneName(lane) << " at limit=" << limit
          << " mismatch=" << mismatch;
    }
  }
}

/// Whole-path differential: drive the product code through each lane via
/// the dispatch override and require byte-identical artifacts.
class LaneRoundTrip : public ::testing::Test {
 protected:
  void TearDown() override { simd::SetActiveLane(saved_); }
  const simd::Lane saved_ = simd::ActiveLane();
};

TEST_F(LaneRoundTrip, CosineIdenticalAcrossLanes) {
  util::Rng rng(0xC051ULL);
  for (int trial = 0; trial < kInputs; ++trial) {
    genai::Vec a;
    genai::Vec b;
    for (double& v : a) v = rng.NextGaussian();
    for (double& v : b) v = rng.NextGaussian();
    simd::SetActiveLane(simd::Lane::kScalar);
    const double expected = genai::Cosine(a, b);
    for (simd::Lane lane : SupportedLanes()) {
      simd::SetActiveLane(lane);
      ASSERT_TRUE(SameBits(genai::Cosine(a, b), expected))
          << simd::LaneName(lane) << " cosine diverged at trial " << trial;
    }
  }
}

TEST_F(LaneRoundTrip, Lz77TokenizeIdenticalAcrossLanes) {
  util::Rng rng(0x1277ULL);
  for (int trial = 0; trial < kInputs; ++trial) {
    // Mix compressible (tiny alphabet, planted repeats) and random data.
    const std::size_t size = static_cast<std::size_t>(rng.NextBounded(400));
    util::Bytes data(size);
    const std::uint64_t alphabet = 2 + rng.NextBounded(250);
    for (auto& byte : data) {
      byte = static_cast<std::uint8_t>(rng.NextBounded(alphabet));
    }
    if (size > 16 && rng.NextBool(0.5)) {
      const std::size_t span = 1 + rng.NextBounded(size / 2);
      std::memcpy(data.data() + size - span, data.data(), span);
    }
    simd::SetActiveLane(simd::Lane::kScalar);
    const util::Bytes expected = compress::Lz77Tokenize(data);
    auto round = compress::Lz77Reconstruct(expected, data.size());
    ASSERT_TRUE(round.ok());
    ASSERT_EQ(round.value(), data);
    for (simd::Lane lane : SupportedLanes()) {
      simd::SetActiveLane(lane);
      ASSERT_EQ(compress::Lz77Tokenize(data), expected)
          << simd::LaneName(lane) << " op stream diverged at trial " << trial;
    }
  }
}

TEST_F(LaneRoundTrip, DiffusionRenderIdenticalAcrossLanes) {
  const genai::DiffusionModel model(genai::ImageModels().front());
  struct Case {
    const char* prompt;
    int width;
    int height;
    int steps;
    std::uint64_t seed;
  };
  const Case cases[] = {
      {"a goldfish in a bowl", 96, 64, 28, 7},
      {"small world web of ai", 33, 17, 4, 99},  // ragged row widths
      {"night city neon rain", 128, 128, 50, 3141},
  };
  for (const Case& c : cases) {
    simd::SetActiveLane(simd::Lane::kScalar);
    auto expected = model.Generate(c.prompt, c.width, c.height, c.steps, c.seed);
    ASSERT_TRUE(expected.ok());
    for (simd::Lane lane : SupportedLanes()) {
      simd::SetActiveLane(lane);
      auto got = model.Generate(c.prompt, c.width, c.height, c.steps, c.seed);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got.value().image.data(), expected.value().image.data())
          << simd::LaneName(lane) << " rendered different bytes for \""
          << c.prompt << "\"";
      ASSERT_TRUE(SameBits(
          metrics::ClipScore(c.prompt, got.value().image),
          metrics::ClipScore(c.prompt, expected.value().image)));
    }
  }
}

TEST_F(LaneRoundTrip, SwzCompressIdenticalAcrossLanes) {
  // End to end through the coder: tokenize + Huffman + framing.
  const std::string page(
      "<html><body>the small world web of ai — prompts, not pixels; "
      "prompts, not pixels; prompts, not pixels</body></html>");
  util::Bytes data(page.begin(), page.end());
  simd::SetActiveLane(simd::Lane::kScalar);
  const util::Bytes expected = compress::SwzCompress(data);
  for (simd::Lane lane : SupportedLanes()) {
    simd::SetActiveLane(lane);
    ASSERT_EQ(compress::SwzCompress(data), expected) << simd::LaneName(lane);
    auto back = compress::SwzDecompress(expected);
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back.value(), data);
  }
}

}  // namespace
}  // namespace sww
