// Tests for the BENCH_sww.json regression gate: exact modeled comparison,
// wall-median tolerance, missing-vs-added semantics, schema validation.
#include <gtest/gtest.h>

#include <string>

#include "json/json.hpp"
#include "obs/bench.hpp"
#include "obs/bench_diff.hpp"

namespace sww::obs::bench {
namespace {

/// A minimal BENCH document with one benchmark, one modeled metric, and
/// one wall kernel median.
json::Value MakeDoc(double modeled, double median_ns,
                    const std::string& digest = "aa55") {
  State state("demo");
  state.Modeled("value", modeled);
  state.ModeledText("digest", digest);
  BenchResult result = state.TakeResult();
  WallStats wall;
  wall.iterations = 10;
  wall.median_ns = median_ns;
  wall.mean_ns = median_ns;
  wall.min_ns = median_ns;
  wall.p95_ns = median_ns;
  wall.total_ns = median_ns * 10;
  result.wall["kernel"] = wall;
  return ResultsToJson({std::move(result)}, /*modeled_only=*/false);
}

TEST(CompareBenchJson, IdenticalDocumentsPass) {
  const json::Value doc = MakeDoc(1.5, 100.0);
  auto result = CompareBenchJson(doc, doc, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().ok());
  EXPECT_EQ(result.value().compared_modeled, 2u);  // value + digest
  EXPECT_EQ(result.value().compared_wall, 1u);
  EXPECT_TRUE(result.value().regressions.empty());
}

TEST(CompareBenchJson, ModeledDriftTripsExactGate) {
  // One part in 10^8 — far below any reasonable tolerance, but modeled
  // metrics gate exactly: this must fail.
  auto result = CompareBenchJson(MakeDoc(1.5, 100.0),
                                 MakeDoc(1.50000001, 100.0), {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().ok());
  ASSERT_EQ(result.value().regressions.size(), 1u);
  EXPECT_EQ(result.value().regressions[0].metric, "modeled.value");
}

TEST(CompareBenchJson, ModeledTextDriftTripsExactGate) {
  auto result = CompareBenchJson(MakeDoc(1.5, 100.0, "aa55"),
                                 MakeDoc(1.5, 100.0, "aa56"), {});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().regressions.size(), 1u);
  EXPECT_EQ(result.value().regressions[0].metric, "modeled_text.digest");
}

TEST(CompareBenchJson, WallWithinToleranceIsNotARegression) {
  CompareOptions options;
  options.wall_tolerance = 0.25;
  auto result =
      CompareBenchJson(MakeDoc(1.5, 100.0), MakeDoc(1.5, 124.0), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().ok());
}

TEST(CompareBenchJson, WallBeyondToleranceRegresses) {
  CompareOptions options;
  options.wall_tolerance = 0.25;
  auto result =
      CompareBenchJson(MakeDoc(1.5, 100.0), MakeDoc(1.5, 130.0), options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().ok());
  ASSERT_EQ(result.value().regressions.size(), 1u);
  EXPECT_EQ(result.value().regressions[0].metric, "wall.kernel");
}

TEST(CompareBenchJson, FasterWallIsReportedAsImprovement) {
  auto result = CompareBenchJson(MakeDoc(1.5, 100.0), MakeDoc(1.5, 60.0), {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().ok());
  ASSERT_EQ(result.value().improvements.size(), 1u);
}

TEST(CompareBenchJson, ModeledOnlySkipsWallGate) {
  CompareOptions options;
  options.modeled_only = true;
  auto result =
      CompareBenchJson(MakeDoc(1.5, 100.0), MakeDoc(1.5, 900.0), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().ok());
  EXPECT_EQ(result.value().compared_wall, 0u);
}

TEST(CompareBenchJson, NegativeToleranceDisablesWallGate) {
  CompareOptions options;
  options.wall_tolerance = -1.0;
  auto result =
      CompareBenchJson(MakeDoc(1.5, 100.0), MakeDoc(1.5, 900.0), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().ok());
}

TEST(CompareBenchJson, MissingBenchmarkFails) {
  const json::Value baseline = MakeDoc(1.5, 100.0);
  const json::Value empty = ResultsToJson({}, false);
  auto result = CompareBenchJson(baseline, empty, {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().ok());
  ASSERT_EQ(result.value().missing_benchmarks.size(), 1u);
  EXPECT_EQ(result.value().missing_benchmarks[0], "demo");
}

TEST(CompareBenchJson, MissingModeledMetricFails) {
  State base_state("demo");
  base_state.Modeled("kept", 1.0);
  base_state.Modeled("dropped", 2.0);
  State cur_state("demo");
  cur_state.Modeled("kept", 1.0);
  auto result = CompareBenchJson(ResultsToJson({base_state.result()}, true),
                                 ResultsToJson({cur_state.result()}, true), {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().ok());
  ASSERT_EQ(result.value().missing_metrics.size(), 1u);
  EXPECT_EQ(result.value().missing_metrics[0], "demo.modeled.dropped");
}

TEST(CompareBenchJson, AddedBenchmarksAndMetricsPass) {
  // Growth is the point of the trajectory: new benchmarks/metrics in the
  // current file must not fail the gate.
  State base_state("demo");
  base_state.Modeled("value", 1.0);
  State cur_state("demo");
  cur_state.Modeled("value", 1.0);
  cur_state.Modeled("extra", 9.0);
  State new_bench("newcomer");
  new_bench.Modeled("fresh", 3.0);
  auto result = CompareBenchJson(
      ResultsToJson({base_state.result()}, true),
      ResultsToJson({cur_state.result(), new_bench.result()}, true), {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().ok());
  EXPECT_EQ(result.value().added_benchmarks.size(), 1u);
  EXPECT_EQ(result.value().added_metrics.size(), 1u);
}

TEST(CompareBenchJson, SchemaMismatchIsAnErrorNotARegression) {
  json::Value wrong = MakeDoc(1.5, 100.0);
  wrong.Set("schema", "sww-bench/999");
  auto as_current = CompareBenchJson(MakeDoc(1.5, 100.0), wrong, {});
  EXPECT_FALSE(as_current.ok());
  auto as_baseline = CompareBenchJson(wrong, MakeDoc(1.5, 100.0), {});
  EXPECT_FALSE(as_baseline.ok());
}

TEST(CompareBenchJson, NonObjectDocumentIsAnError) {
  auto result = CompareBenchJson(json::Value(3.0), MakeDoc(1.5, 100.0), {});
  EXPECT_FALSE(result.ok());
}

TEST(RenderCompareText, VerdictLineMatchesOkState) {
  auto pass = CompareBenchJson(MakeDoc(1.0, 10.0), MakeDoc(1.0, 10.0), {});
  ASSERT_TRUE(pass.ok());
  EXPECT_NE(RenderCompareText(pass.value()).find("OK: no regressions"),
            std::string::npos);
  auto fail = CompareBenchJson(MakeDoc(1.0, 10.0), MakeDoc(2.0, 10.0), {});
  ASSERT_TRUE(fail.ok());
  const std::string text = RenderCompareText(fail.value());
  EXPECT_NE(text.find("FAIL: regression gate tripped"), std::string::npos);
  EXPECT_NE(text.find("REGRESSION demo modeled.value"), std::string::npos);
}

}  // namespace
}  // namespace sww::obs::bench
