// Tests for the content store and its storage accounting (§2.1/§2.2).
#include <gtest/gtest.h>

#include "core/content_store.hpp"
#include "core/page_builder.hpp"

namespace sww::core {
namespace {

TEST(ContentStore, AddAndFindPage) {
  ContentStore store;
  ASSERT_TRUE(store.AddPage("/", MakeGoldfishPage()).ok());
  const PageEntry* page = store.FindPage("/");
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(page->item_types.size(), 1u);
  EXPECT_EQ(page->item_types[0], html::GeneratedContentType::kImage);
  EXPECT_EQ(store.FindPage("/missing"), nullptr);
}

TEST(ContentStore, RejectsPagesWithInvalidGeneratedContent) {
  ContentStore store;
  const std::string bad =
      R"(<div class="generated content" content-type="img" metadata='{bad'></div>)";
  EXPECT_FALSE(store.AddPage("/bad", bad).ok());
  EXPECT_EQ(store.FindPage("/bad"), nullptr);
}

TEST(ContentStore, AssetsStoredVerbatim) {
  ContentStore store;
  store.AddAsset("/a.ppm", util::ToBytes("P6..."), "image/x-portable-pixmap");
  const Asset* asset = store.FindAsset("/a.ppm");
  ASSERT_NE(asset, nullptr);
  EXPECT_EQ(asset->content_type, "image/x-portable-pixmap");
  EXPECT_EQ(asset->bytes.size(), 5u);
}

TEST(ContentStore, TraditionalItemBytesModel) {
  json::Value img{json::Object{}};
  img.Set("prompt", "p");
  img.Set("width", 512);
  img.Set("height", 512);
  EXPECT_EQ(TraditionalItemBytes(html::GeneratedContentType::kImage, img),
            32768u);  // Table 2 medium image
  json::Value txt{json::Object{}};
  txt.Set("prompt", "p");
  txt.Set("words", 250);
  EXPECT_EQ(TraditionalItemBytes(html::GeneratedContentType::kText, txt),
            1250u);  // Table 2 text block
}

TEST(ContentStore, StatsComputeCompressionRatio) {
  ContentStore store;
  const LandscapePage page = MakeLandscapeSearchPage(49);
  ASSERT_TRUE(store.AddPage("/landscape", page.html).ok());
  const StorageStats stats = store.Stats();
  EXPECT_EQ(stats.page_count, 1u);
  EXPECT_GT(stats.traditional_bytes, stats.prompt_bytes);
  // 49 materialized 256×192 results vs a prompt page: double-digit ratio.
  EXPECT_GT(stats.CompressionRatio(), 10.0);
}

TEST(ContentStore, UniqueAssetsCountedSeparately) {
  ContentStore store;
  store.AddAsset("/u.ppm", util::Bytes(1000, 1), "image/x-portable-pixmap");
  const StorageStats stats = store.Stats();
  EXPECT_EQ(stats.unique_asset_bytes, 1000u);
  EXPECT_EQ(stats.prompt_bytes, 0u);
}

TEST(ContentStore, PagePathsListsEverything) {
  ContentStore store;
  ASSERT_TRUE(store.AddPage("/a", MakeGoldfishPage()).ok());
  ASSERT_TRUE(store.AddPage("/b", MakeGoldfishPage()).ok());
  EXPECT_EQ(store.PagePaths().size(), 2u);
}

// --- workload builders ----------------------------------------------------------

TEST(PageBuilder, LandscapePromptsInPaperRange) {
  // §6.2: prompts "ranging from 120 characters to 262 characters".
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const std::string prompt = MakeLandscapePrompt(seed);
    EXPECT_GE(prompt.size(), 120u) << seed;
    EXPECT_LE(prompt.size(), 262u) << seed;
  }
}

TEST(PageBuilder, LandscapePageHas49ImagesAndFig2Sizes) {
  const LandscapePage page = MakeLandscapeSearchPage();
  EXPECT_EQ(page.prompts.size(), 49u);
  // The paper's Figure 2 page: ~1.4 MB of images vs ~8.9 kB of metadata.
  EXPECT_NEAR(static_cast<double>(page.traditional_image_bytes), 1.4e6, 0.1e6);
  EXPECT_LT(page.total_metadata_bytes, 15000u);
  const double ratio = static_cast<double>(page.traditional_image_bytes) /
                       static_cast<double>(page.total_metadata_bytes);
  EXPECT_GT(ratio, 50.0);
}

TEST(PageBuilder, TravelBlogMixesGeneratedAndUnique) {
  const TravelBlogPage page = MakeTravelBlogPage(3, 2);
  EXPECT_EQ(page.unique_asset_paths.size(), 2u);
  ContentStore store;
  ASSERT_TRUE(store.AddPage("/blog", page.html).ok());
  const PageEntry* entry = store.FindPage("/blog");
  ASSERT_NE(entry, nullptr);
  // 1 text div + 3 stock image divs.
  EXPECT_EQ(entry->item_types.size(), 4u);
}

TEST(PageBuilder, NewsArticleHitsTargetBytes) {
  // §6.2's text experiment starts from a 2,400 B article.
  EXPECT_EQ(MakeNewsArticleText(2400).size(), 2400u);
  const std::string html = MakeNewsArticleHtml(2400);
  EXPECT_NEAR(static_cast<double>(html.size()), 2400.0, 10.0);
}

TEST(PageBuilder, BuildersAreDeterministic) {
  EXPECT_EQ(MakeLandscapeSearchPage().html, MakeLandscapeSearchPage().html);
  EXPECT_EQ(MakeNewsArticleText(1000, 5), MakeNewsArticleText(1000, 5));
  EXPECT_NE(MakeNewsArticleText(1000, 5), MakeNewsArticleText(1000, 6));
}

}  // namespace
}  // namespace sww::core
