// Tests for the swz content coding: bit IO, dynamic Huffman, LZ77, the
// container, and the end-to-end HTTP content-encoding path.
#include <gtest/gtest.h>

#include "compress/bitio.hpp"
#include "compress/huffman_coder.hpp"
#include "compress/swz.hpp"
#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "util/rng.hpp"

namespace sww::compress {
namespace {

// --- bit IO -------------------------------------------------------------------

TEST(BitIo, RoundTripsMixedWidths) {
  BitWriter writer;
  writer.Write(0b101, 3);
  writer.Write(0xffff, 16);
  writer.Write(0, 1);
  writer.Write(0x12345678, 32);
  const util::Bytes bytes = std::move(writer).Finish();
  BitReader reader(bytes);
  EXPECT_EQ(reader.Read(3).value(), 0b101u);
  EXPECT_EQ(reader.Read(16).value(), 0xffffu);
  EXPECT_EQ(reader.Read(1).value(), 0u);
  EXPECT_EQ(reader.Read(32).value(), 0x12345678u);
}

TEST(BitIo, ReadPastEndIsTruncated) {
  BitWriter writer;
  writer.Write(1, 1);
  const util::Bytes bytes = std::move(writer).Finish();
  BitReader reader(bytes);
  ASSERT_TRUE(reader.Read(8).ok());   // padding bits readable
  EXPECT_FALSE(reader.Read(8).ok());  // past the final byte
}

TEST(BitIo, WriterCountsBits) {
  BitWriter writer;
  writer.Write(0, 5);
  writer.Write(0, 11);
  EXPECT_EQ(writer.bit_count(), 16u);
}

// --- dynamic Huffman -----------------------------------------------------------

TEST(HuffmanCoder, RoundTripText) {
  std::string text;
  for (int i = 0; i < 12; ++i) {
    text += "the quick brown fox jumps over the lazy dog, repeatedly; ";
  }
  const util::Bytes data = util::ToBytes(text);
  const util::Bytes coded = HuffmanCompress(data);
  auto decoded = HuffmanDecompress(coded, data.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), data);
  // English text entropy-codes below 8 bits/symbol even with the 128-byte
  // length table amortized over this input.
  EXPECT_LT(coded.size(), data.size());
}

TEST(HuffmanCoder, SingleSymbolAlphabet) {
  const util::Bytes data(500, 'a');
  const util::Bytes coded = HuffmanCompress(data);
  auto decoded = HuffmanDecompress(coded, data.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), data);
  EXPECT_LT(coded.size(), 200u);  // ~1 bit/symbol + table
}

TEST(HuffmanCoder, EmptyInput) {
  const util::Bytes coded = HuffmanCompress({});
  auto decoded = HuffmanDecompress(coded, 0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(HuffmanCoder, RandomBytesRoundTrip) {
  util::Rng rng(31337);
  for (int trial = 0; trial < 30; ++trial) {
    util::Bytes data(rng.NextBounded(2000));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.NextBounded(256));
    auto decoded = HuffmanDecompress(HuffmanCompress(data), data.size());
    ASSERT_TRUE(decoded.ok()) << "trial " << trial;
    EXPECT_EQ(decoded.value(), data);
  }
}

TEST(HuffmanCoder, TruncatedStreamRejected) {
  const util::Bytes data = util::ToBytes("some reasonable input text here");
  util::Bytes coded = HuffmanCompress(data);
  coded.resize(coded.size() / 2);
  EXPECT_FALSE(HuffmanDecompress(coded, data.size()).ok());
}

TEST(HuffmanCoder, CanonicalCodesAreMonotone) {
  std::array<std::uint64_t, kSymbolCount> frequencies{};
  frequencies['a'] = 100;
  frequencies['b'] = 50;
  frequencies['c'] = 10;
  frequencies['d'] = 1;
  const HuffmanCode code = HuffmanCode::FromFrequencies(frequencies);
  EXPECT_LE(code.lengths['a'], code.lengths['b']);
  EXPECT_LE(code.lengths['b'], code.lengths['c']);
  EXPECT_LE(code.lengths['c'], code.lengths['d']);
  EXPECT_EQ(code.lengths['z'], 0);
}

// --- LZ77 ----------------------------------------------------------------------

TEST(Lz77, RoundTripWithRepeats) {
  const std::string text =
      "abcabcabcabc---abcabcabcabc---abcabcabcabc---tail";
  const util::Bytes data = util::ToBytes(text);
  const util::Bytes ops = Lz77Tokenize(data);
  EXPECT_LT(ops.size(), data.size());  // repeats became matches
  auto rebuilt = Lz77Reconstruct(ops, data.size());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt.value(), data);
}

TEST(Lz77, OverlappingMatchRunLengthEncoding) {
  // "aaaa..." forces distance-1 overlapping copies.
  const util::Bytes data(1000, 'x');
  const util::Bytes ops = Lz77Tokenize(data);
  EXPECT_LT(ops.size(), 50u);
  auto rebuilt = Lz77Reconstruct(ops, data.size());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt.value(), data);
}

TEST(Lz77, MalformedOpsRejected) {
  // Match referring before the start of output.
  const util::Bytes bad = {0x80, 0x00, 0x05};
  EXPECT_FALSE(Lz77Reconstruct(bad, 4).ok());
  // Literal run past the end.
  const util::Bytes truncated = {0x05, 'a'};
  EXPECT_FALSE(Lz77Reconstruct(truncated, 6).ok());
}

// --- container -------------------------------------------------------------------

TEST(Swz, RoundTripHtmlPage) {
  const std::string page = core::MakeLandscapeSearchPage(20).html;
  const util::Bytes data = util::ToBytes(page);
  const util::Bytes compressed = SwzCompress(data);
  auto decoded = SwzDecompress(compressed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), data);
  // Repetitive prompt-page HTML compresses well.
  EXPECT_GT(SwzRatio(data), 2.0);
}

TEST(Swz, RoundTripEmptyAndTiny) {
  for (const std::string text : {std::string(""), std::string("x"),
                                 std::string("ab")}) {
    auto decoded = SwzDecompress(SwzCompress(util::ToBytes(text)));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(util::ToString(decoded.value()), text);
  }
}

TEST(Swz, RandomDataRoundTripsEvenIfIncompressible) {
  util::Rng rng(7777);
  util::Bytes data(4096);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.NextBounded(256));
  const util::Bytes compressed = SwzCompress(data);
  auto decoded = SwzDecompress(compressed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), data);
}

TEST(Swz, BadMagicAndCorruptionRejected) {
  EXPECT_FALSE(SwzDecompress(util::ToBytes("GZIPnope")).ok());
  EXPECT_FALSE(SwzDecompress({}).ok());
  util::Bytes compressed = SwzCompress(util::ToBytes(
      "a body long enough to produce a few coded bytes after the table"));
  compressed.resize(compressed.size() - 4);
  EXPECT_FALSE(SwzDecompress(compressed).ok());
}

TEST(Swz, FuzzedContainersNeverCrash) {
  util::Rng rng(0xC0DE);
  for (int trial = 0; trial < 300; ++trial) {
    util::Bytes junk(rng.NextBounded(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.NextBounded(256));
    // Prefix half of them with a valid magic to reach deeper code.
    if (rng.NextBool() && junk.size() >= 4) {
      junk[0] = 'S';
      junk[1] = 'W';
      junk[2] = 'Z';
      junk[3] = '1';
    }
    (void)SwzDecompress(junk);
  }
  SUCCEED();
}

// --- end-to-end content coding ------------------------------------------------------

TEST(SwzE2E, CompressedPageFetchSavesWireBytes) {
  core::ContentStore store;
  const core::LandscapePage page = core::MakeLandscapeSearchPage(20);
  ASSERT_TRUE(store.AddPage("/landscape", page.html).ok());

  core::LocalSession::Options plain;
  plain.client.generator.inference_steps = 3;
  auto plain_session = core::LocalSession::Start(&store, plain);
  auto plain_fetch = plain_session.value()->FetchPage("/landscape");
  ASSERT_TRUE(plain_fetch.ok());

  core::LocalSession::Options coded;
  coded.client.generator.inference_steps = 3;
  coded.client.accept_compression = true;
  auto coded_session = core::LocalSession::Start(&store, coded);
  auto coded_fetch = coded_session.value()->FetchPage("/landscape");
  ASSERT_TRUE(coded_fetch.ok());

  // Same final content...
  EXPECT_EQ(plain_fetch.value().final_html, coded_fetch.value().final_html);
  EXPECT_EQ(plain_fetch.value().files, coded_fetch.value().files);
  // ...for less than half the page bytes on the wire.
  EXPECT_LT(coded_fetch.value().page_bytes,
            plain_fetch.value().page_bytes / 2);
  EXPECT_EQ(coded_fetch.value().response.Header("content-encoding").value_or(""),
            "swz");
}

TEST(SwzE2E, ServerSkipsCodingWhenNotAccepted) {
  core::ContentStore store;
  ASSERT_TRUE(store.AddPage("/", core::MakeGoldfishPage()).ok());
  auto session = core::LocalSession::Start(&store, {});
  auto fetch = session.value()->FetchPage("/");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().response.Header("content-encoding").value_or(""), "");
}

TEST(SwzE2E, TinyBodiesStayUncoded) {
  core::ContentStore store;
  ASSERT_TRUE(store.AddPage("/tiny",
                            "<html><body><p>hi</p></body></html>").ok());
  core::LocalSession::Options options;
  options.client.accept_compression = true;
  auto session = core::LocalSession::Start(&store, options);
  auto fetch = session.value()->FetchPage("/tiny");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().response.Header("content-encoding").value_or(""), "");
}

}  // namespace
}  // namespace sww::compress
