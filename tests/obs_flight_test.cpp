// obs_flight_test — the flight recorder in isolation: ring-buffer
// overwrite semantics, annotation, rendering, and the drop count
// surfacing in the run analyzer's report.
#include <gtest/gtest.h>

#include <string>

#include "obs/flight.hpp"
#include "obs/report.hpp"

namespace sww::obs {
namespace {

FrameRecord MakeRecord(TapDirection direction, std::uint8_t type,
                       const char* type_name, std::uint32_t stream_id,
                       std::uint64_t t_nanos) {
  FrameRecord record;
  record.direction = direction;
  record.type = type;
  record.type_name = type_name;
  record.stream_id = stream_id;
  record.length = 9;
  record.timestamp_nanos = t_nanos;
  return record;
}

TEST(ConnectionTap, RingOverwritesOldestAndCountsDrops) {
  ConnectionTap tap("ring", /*capacity=*/4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    tap.Record(MakeRecord(TapDirection::kSent, 0, "DATA", i, i * 100));
  }
  EXPECT_EQ(tap.total_recorded(), 10u);
  EXPECT_EQ(tap.total_sent(), 10u);
  EXPECT_EQ(tap.total_received(), 0u);
  EXPECT_EQ(tap.dropped(), 6u);

  // The four newest survive, oldest-first.
  const std::vector<FrameRecord> records = tap.Records();
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(records[i].stream_id, 6u + i);
    EXPECT_EQ(records[i].sequence, 6u + i);
  }
}

TEST(ConnectionTap, AnnotateAttachesToNewestMatch) {
  ConnectionTap tap("annotate", 8);
  tap.Record(MakeRecord(TapDirection::kSent, 1, "HEADERS", 1, 10));
  tap.Record(MakeRecord(TapDirection::kSent, 0, "DATA", 1, 20));
  tap.Record(MakeRecord(TapDirection::kSent, 1, "HEADERS", 3, 30));
  tap.Annotate(TapDirection::kSent, 1, 3, {{":path", "/"}});
  tap.Annotate(TapDirection::kReceived, 1, 99, {{"lost", "yes"}});  // no match

  const std::vector<FrameRecord> records = tap.Records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_TRUE(records[0].details.empty());
  EXPECT_TRUE(records[1].details.empty());
  ASSERT_EQ(records[2].details.size(), 1u);
  EXPECT_EQ(records[2].details[0].first, ":path");
}

TEST(ConnectionTap, ClearEmptiesButKeepsHandle) {
  FlightRecorder recorder;
  ConnectionTap& tap = recorder.GetTap("conn", 4);
  tap.Record(MakeRecord(TapDirection::kReceived, 4, "SETTINGS", 0, 1));
  recorder.Clear();
  EXPECT_EQ(tap.total_recorded(), 0u);
  EXPECT_TRUE(tap.Records().empty());
  // Same handle returned after Clear, capacity honored only on creation.
  EXPECT_EQ(&recorder.GetTap("conn", 999), &tap);
  EXPECT_EQ(tap.capacity(), 4u);
}

TEST(FlightRecorder, RenderMergesTapsByTimestamp) {
  FlightRecorder recorder;
  ConnectionTap& a = recorder.GetTap("alpha");
  ConnectionTap& b = recorder.GetTap("beta");
  a.Record(MakeRecord(TapDirection::kSent, 4, "SETTINGS", 0, 200));
  b.Record(MakeRecord(TapDirection::kReceived, 4, "SETTINGS", 0, 100));

  const std::string text = RenderFramesText(recorder.taps());
  const std::size_t beta_at = text.find("beta < SETTINGS");
  const std::size_t alpha_at = text.find("alpha > SETTINGS");
  ASSERT_NE(beta_at, std::string::npos) << text;
  ASSERT_NE(alpha_at, std::string::npos) << text;
  EXPECT_LT(beta_at, alpha_at) << "records must merge in timestamp order";
  EXPECT_NE(text.find("# tap alpha: recorded=1"), std::string::npos);

  const std::string jsonl = RenderFramesJsonLines(recorder.taps());
  EXPECT_NE(jsonl.find("\"kind\":\"frame\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"tap_summary\""), std::string::npos);
}

TEST(RunReport, DropCountAndFrameMixSurfaceFromTaps) {
  ConnectionTap tap("drops", 2);
  for (int i = 0; i < 5; ++i) {
    tap.Record(MakeRecord(TapDirection::kSent, 0, "DATA", 1, 10 * i));
  }
  FrameRecord settings =
      MakeRecord(TapDirection::kSent, 4, "SETTINGS", 0, 100);
  settings.details.emplace_back("GEN_ABILITY", "1");
  tap.Record(std::move(settings));

  const RunReport report = AnalyzeRun({}, {}, {&tap});
  EXPECT_EQ(report.frames_recorded, 6u);
  EXPECT_EQ(report.frames_tapped, 2u);
  EXPECT_EQ(report.frames_dropped, 4u);
  EXPECT_EQ(report.frame_mix.at("SETTINGS"), 1u);
  EXPECT_EQ(report.frame_mix.at("DATA"), 1u);
  EXPECT_TRUE(report.settings_gen_ability_seen);

  const std::string text = RenderReportText(report);
  EXPECT_NE(text.find("frames_dropped:  4"), std::string::npos) << text;
  const std::string jsonl = RenderReportJsonLines(report);
  EXPECT_NE(jsonl.find("\"frames_dropped\":4"), std::string::npos) << jsonl;
}

}  // namespace
}  // namespace sww::obs
