// Tests for the metrics module: Elo, SBERT/CLIP mapping behaviour, stats.
#include <gtest/gtest.h>

#include "genai/model_specs.hpp"
#include "metrics/elo.hpp"
#include "metrics/sbert.hpp"
#include "metrics/stats.hpp"

namespace sww::metrics {
namespace {

// --- Elo algorithm ------------------------------------------------------------

TEST(Elo, ExpectedScoreProperties) {
  EXPECT_DOUBLE_EQ(EloExpectedScore(1000, 1000), 0.5);
  // A 400-point gap is a 10:1 expectation by construction of the scale.
  EXPECT_NEAR(EloExpectedScore(1400, 1000), 10.0 / 11.0, 1e-9);
  EXPECT_NEAR(EloExpectedScore(1000, 1400) + EloExpectedScore(1400, 1000), 1.0,
              1e-12);
}

TEST(Elo, UpdateIsZeroSum) {
  const EloUpdate update = EloApply(1200, 1000, 1.0, 16);
  EXPECT_NEAR((update.rating_a - 1200) + (update.rating_b - 1000), 0.0, 1e-12);
  EXPECT_GT(update.rating_a, 1200);
}

TEST(Elo, UpsetMovesRatingsMore) {
  // The weaker player winning shifts more points than the favorite winning.
  const EloUpdate upset = EloApply(1000, 1400, 1.0, 16);
  const EloUpdate expected = EloApply(1400, 1000, 1.0, 16);
  EXPECT_GT(upset.rating_a - 1000, expected.rating_a - 1400);
}

TEST(EloArena, RecoversLatentOrdering) {
  EloArena arena(17, 16.0);
  arena.AddPlayer("weak", 700);
  arena.AddPlayer("mid", 900);
  arena.AddPlayer("strong", 1150);
  arena.RunRoundRobin(600);
  arena.AnchorToLatentMean();
  const ArenaPlayer* weak = arena.Find("weak");
  const ArenaPlayer* mid = arena.Find("mid");
  const ArenaPlayer* strong = arena.Find("strong");
  ASSERT_NE(weak, nullptr);
  EXPECT_LT(weak->rating, mid->rating);
  EXPECT_LT(mid->rating, strong->rating);
  EXPECT_NEAR(weak->rating, 700, 80);
  EXPECT_NEAR(strong->rating, 1150, 80);
}

TEST(EloArena, ReproducesTable1Ratings) {
  // The Table 1 ELO column: run the arena with the paper's values as
  // latent strengths and check the estimates land nearby.
  EloArena arena(7, 8.0);
  for (const auto& spec : genai::ImageModels()) {
    arena.AddPlayer(spec.name, spec.elo_quality);
  }
  arena.RunRoundRobin(2000);
  arena.AnchorToLatentMean();
  for (const auto& player : arena.players()) {
    EXPECT_NEAR(player.rating, player.latent_strength, 70) << player.name;
  }
  // SD 2.1 is "significantly worse"; GPT-4o leads the arena.
  EXPECT_LT(arena.Find("sd-2.1-base")->rating,
            arena.Find("sd-3-medium")->rating - 100);
  EXPECT_GT(arena.Find("gpt-4o")->rating,
            arena.Find("sd-3.5-medium")->rating + 100);
}

TEST(EloArena, GamesAndWinsAccounted) {
  EloArena arena(3);
  arena.AddPlayer("a", 1000);
  arena.AddPlayer("b", 1000);
  arena.RunRoundRobin(10);
  EXPECT_EQ(arena.Find("a")->games, 10u);
  EXPECT_EQ(arena.Find("a")->wins + arena.Find("b")->wins, 10u);
}

// --- SBERT scale ----------------------------------------------------------------

TEST(Sbert, VerbatimContentScoresHigh) {
  const std::vector<std::string> bullets = {"mountain trail valley"};
  EXPECT_GT(SbertScore(bullets, "the mountain trail crosses the valley"), 0.9);
}

TEST(Sbert, UnrelatedTextScoresLow) {
  const std::vector<std::string> bullets = {"mountain trail valley"};
  EXPECT_LT(SbertScore(bullets, "the quarterly report shows revenue growth"),
            0.55);
}

TEST(Sbert, MonotonicInContentOverlap) {
  const std::vector<std::string> bullets = {"alpha beta gamma delta"};
  const double full = SbertScore(bullets, "alpha beta gamma delta here");
  const double half = SbertScore(bullets, "alpha beta something else here");
  const double none = SbertScore(bullets, "totally unrelated words only here");
  EXPECT_GT(full, half);
  EXPECT_GT(half, none);
}

TEST(Sbert, PairwiseOverloadAgrees) {
  EXPECT_GT(SbertScore("mountain lake", "a mountain beside a lake"), 0.85);
}

// --- stats -----------------------------------------------------------------------

TEST(Stats, WordOvershootSign) {
  EXPECT_DOUBLE_EQ(WordOvershootPercent(100, 120), 20.0);
  EXPECT_DOUBLE_EQ(WordOvershootPercent(100, 80), -20.0);
  EXPECT_DOUBLE_EQ(WordOvershootPercent(0, 50), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> values = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(Stats, SummaryMoments) {
  const Summary summary = Summarize({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_EQ(summary.count, 8u);
  EXPECT_DOUBLE_EQ(summary.mean, 5.0);
  EXPECT_DOUBLE_EQ(summary.stddev, 2.0);
  EXPECT_DOUBLE_EQ(summary.min, 2.0);
  EXPECT_DOUBLE_EQ(summary.max, 9.0);
}

TEST(Stats, SummaryEmptyIsZeros) {
  const Summary summary = Summarize({});
  EXPECT_EQ(summary.count, 0u);
  EXPECT_DOUBLE_EQ(summary.mean, 0.0);
}

TEST(Stats, MedianAbsoluteDeviationKnownVectors) {
  // Deviations from median 3: {2, 1, 0, 1, 97} → MAD 1; the outlier that
  // would wreck a stddev barely registers.
  EXPECT_DOUBLE_EQ(MedianAbsoluteDeviation({1, 2, 3, 4, 100}), 1.0);
  EXPECT_DOUBLE_EQ(MedianAbsoluteDeviation({5, 5, 5, 5}), 0.0);
  // Median 25; deviations {15, 5, 5, 15} → interpolated median 10.
  EXPECT_DOUBLE_EQ(MedianAbsoluteDeviation({10, 20, 30, 40}), 10.0);
  EXPECT_DOUBLE_EQ(MedianAbsoluteDeviation({7}), 0.0);
  EXPECT_DOUBLE_EQ(MedianAbsoluteDeviation({}), 0.0);
}

TEST(Stats, FormatSummaryIsReadable) {
  const std::string text = FormatSummary(Summarize({1, 2, 3}));
  EXPECT_NE(text.find("n=3"), std::string::npos);
  EXPECT_NE(text.find("mean=2.000"), std::string::npos);
}

}  // namespace
}  // namespace sww::metrics
