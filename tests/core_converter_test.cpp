// Tests for the webpage conversion pipeline (§4.2): legacy pages →
// generated-content pages, CMS tagging, and round-trip serving.
#include <gtest/gtest.h>

#include "core/converter.hpp"
#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "genai/diffusion.hpp"
#include "html/generated_content.hpp"
#include "html/parser.hpp"

namespace sww::core {
namespace {

PageConverter MakeConverter(ConverterOptions options = {}) {
  return PageConverter(
      genai::PromptInverter(genai::PromptInverter::DefaultVocabulary()),
      genai::TextModel(genai::FindTextModel(genai::kDeepseek8b).value()),
      options);
}

genai::Image MakePhoto(std::string_view prompt, int size = 128) {
  genai::DiffusionModel model(genai::FindImageModel(genai::kDalle3).value());
  return model.Generate(prompt, size, size, 20, 77).value().image;
}

TEST(Converter, ConvertsImagesToPromptDivs) {
  auto doc = html::ParseDocument(
      R"(<body><img src="/pics/lake.jpg" width="128" height="128"/></body>)")
      .value();
  std::map<std::string, genai::Image> payloads;
  payloads["/pics/lake.jpg"] = MakePhoto("a mountain lake with forest");
  PageConverter converter = MakeConverter();
  auto report = converter.Convert(*doc, payloads);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().images_converted, 1u);
  EXPECT_EQ(report.value().images_kept_unique, 0u);
  // The page now contains a valid generated-content div named after the file.
  auto extraction = html::ExtractGeneratedContent(*doc);
  ASSERT_EQ(extraction.specs.size(), 1u);
  EXPECT_EQ(extraction.specs[0].name(), "lake");
  EXPECT_EQ(extraction.specs[0].width(), 128);
  EXPECT_FALSE(extraction.specs[0].prompt().empty());
}

TEST(Converter, CmsUniqueTagIsRespected) {
  // §4.2: the CMS one-bit flag — "unique" content stays untouched.
  auto doc = html::ParseDocument(
      R"(<body><img src="/a.jpg" data-sww="unique"/>)"
      R"(<img src="/b.jpg" data-sww="generatable"/></body>)")
      .value();
  std::map<std::string, genai::Image> payloads;
  payloads["/a.jpg"] = MakePhoto("a city street");
  payloads["/b.jpg"] = MakePhoto("a pine forest");
  auto report = MakeConverter().Convert(*doc, payloads);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().images_converted, 1u);
  EXPECT_EQ(report.value().images_kept_unique, 1u);
  // The unique image is still an <img>.
  ASSERT_EQ(doc->FindByTag("img").size(), 1u);
  EXPECT_EQ(doc->FindByTag("img")[0]->GetAttribute("src").value(), "/a.jpg");
}

TEST(Converter, UntaggedImagesFollowDefaultPolicy) {
  auto doc = html::ParseDocument(R"(<body><img src="/c.jpg"/></body>)").value();
  std::map<std::string, genai::Image> payloads;
  payloads["/c.jpg"] = MakePhoto("a harbor");
  ConverterOptions no_defaults;
  no_defaults.convert_untagged_images = false;
  auto report = MakeConverter(no_defaults).Convert(*doc, payloads);
  EXPECT_EQ(report.value().images_converted, 0u);
}

TEST(Converter, ImagesWithoutPayloadKeptUnique) {
  auto doc = html::ParseDocument(R"(<body><img src="/gone.jpg"/></body>)").value();
  auto report = MakeConverter().Convert(*doc, {});
  EXPECT_EQ(report.value().images_converted, 0u);
  EXPECT_EQ(report.value().images_kept_unique, 1u);
  EXPECT_FALSE(report.value().notes.empty());
}

TEST(Converter, LongTextBecomesBulletDiv) {
  const std::string html = MakeNewsArticleHtml(2400);
  auto doc = html::ParseDocument(html).value();
  auto report = MakeConverter().Convert(*doc, {});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().text_blocks_converted, 1u);
  auto extraction = html::ExtractGeneratedContent(*doc);
  ASSERT_EQ(extraction.specs.size(), 1u);
  EXPECT_EQ(extraction.specs[0].type, html::GeneratedContentType::kText);
  EXPECT_GT(extraction.specs[0].metadata.Get("bullets")->AsArray().size(), 2u);
}

TEST(Converter, ShortTextKept) {
  auto doc =
      html::ParseDocument("<body><p>Just a short caption.</p></body>").value();
  auto report = MakeConverter().Convert(*doc, {});
  EXPECT_EQ(report.value().text_blocks_converted, 0u);
  EXPECT_EQ(report.value().text_blocks_kept, 1u);
}

TEST(Converter, ArticleCompressionMatchesPaperBallpark) {
  // §6.2's text experiment: 2,400 B article → 778 B (3.1× compression).
  const std::string html = MakeNewsArticleHtml(2400);
  auto doc = html::ParseDocument(html).value();
  auto report = MakeConverter().Convert(*doc, {});
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().CompressionRatio(), 2.0);
  EXPECT_LT(report.value().CompressionRatio(), 5.0);
}

TEST(Converter, ImagePageCompressionCountsPayloadBytes) {
  auto doc = html::ParseDocument(
      R"(<body><img src="/p.jpg" width="512" height="512"/></body>)").value();
  std::map<std::string, genai::Image> payloads;
  payloads["/p.jpg"] = MakePhoto("a snowfield with a hiking trail", 512);
  auto report = MakeConverter().Convert(*doc, payloads);
  ASSERT_TRUE(report.ok());
  // 512² image ≈ 32,768 B traditional vs a ~300 B prompt div.
  EXPECT_GT(report.value().CompressionRatio(), 20.0);
}

TEST(Converter, ConvertedPageServesEndToEnd) {
  // The full §4.2 story: convert a legacy page, store it, serve it to a
  // generative client, and get materialized content back out.
  auto doc = html::ParseDocument(
      R"(<html><body><h1>Lake guide</h1>)"
      R"(<img src="/pics/lake.jpg" width="96" height="96"/></body></html>)")
      .value();
  std::map<std::string, genai::Image> payloads;
  payloads["/pics/lake.jpg"] = MakePhoto("a mountain lake with forest", 96);
  auto report = MakeConverter().Convert(*doc, payloads);
  ASSERT_TRUE(report.ok());

  ContentStore store;
  ASSERT_TRUE(store.AddPage("/guide", doc->Serialize()).ok());
  auto session = LocalSession::Start(&store, {});
  ASSERT_TRUE(session.ok());
  auto fetch = session.value()->FetchPage("/guide");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().mode, "generative");
  EXPECT_EQ(fetch.value().generated_items, 1u);
  EXPECT_EQ(fetch.value().files.size(), 1u);
}

}  // namespace
}  // namespace sww::core
