// Tests for the HTML module: tokenizer/parser, DOM, entities, and the
// paper's `generated content` class (§4.1, Figure 1).
#include <gtest/gtest.h>

#include "html/entities.hpp"
#include "html/generated_content.hpp"
#include "html/parser.hpp"

namespace sww::html {
namespace {

std::unique_ptr<Node> MustParse(std::string_view html) {
  auto result = ParseDocument(html);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

// --- entities --------------------------------------------------------------

TEST(Entities, NamedDecoding) {
  EXPECT_EQ(DecodeEntities("a &amp; b &lt;c&gt;"), "a & b <c>");
  EXPECT_EQ(DecodeEntities("&quot;x&quot; &apos;y&apos;"), "\"x\" 'y'");
}

TEST(Entities, NumericDecoding) {
  EXPECT_EQ(DecodeEntities("&#65;&#x42;&#x63;"), "ABc");
  EXPECT_EQ(DecodeEntities("&#x1F600;"), "\xf0\x9f\x98\x80");
}

TEST(Entities, MalformedLeftVerbatim) {
  EXPECT_EQ(DecodeEntities("5 & 6"), "5 & 6");
  EXPECT_EQ(DecodeEntities("&unknown;"), "&unknown;");
  EXPECT_EQ(DecodeEntities("&#xZZ;"), "&#xZZ;");
  EXPECT_EQ(DecodeEntities("&"), "&");
}

TEST(Entities, EscapeRoundTrip) {
  const std::string nasty = "a<b>&\"c\"";
  EXPECT_EQ(DecodeEntities(EscapeAttribute(nasty)), nasty);
  EXPECT_EQ(DecodeEntities(EscapeText("x<&>y")), "x<&>y");
}

// --- parser ------------------------------------------------------------------

TEST(Parser, BasicDocumentStructure) {
  auto doc = MustParse(
      "<!DOCTYPE html><html><head><title>T</title></head>"
      "<body><p>hello</p></body></html>");
  Node* title = doc->FindFirstByTag("title");
  ASSERT_NE(title, nullptr);
  EXPECT_EQ(title->InnerText(), "T");
  Node* p = doc->FindFirstByTag("p");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->InnerText(), "hello");
}

TEST(Parser, AttributesQuotedUnquotedAndBare) {
  auto doc = MustParse(
      R"(<img src="a.ppm" width=320 alt='pic' data-sww="unique" hidden/>)");
  Node* img = doc->FindFirstByTag("img");
  ASSERT_NE(img, nullptr);
  EXPECT_EQ(img->GetAttribute("src").value(), "a.ppm");
  EXPECT_EQ(img->GetAttribute("width").value(), "320");
  EXPECT_EQ(img->GetAttribute("alt").value(), "pic");
  EXPECT_EQ(img->GetAttribute("hidden").value(), "");
  EXPECT_FALSE(img->GetAttribute("nope").has_value());
}

TEST(Parser, AttributeNamesAreCaseInsensitive) {
  auto doc = MustParse(R"(<div Content-Type="img" CLASS="a b"></div>)");
  Node* div = doc->FindFirstByTag("div");
  EXPECT_EQ(div->GetAttribute("content-type").value(), "img");
  EXPECT_TRUE(div->HasClass("b"));
}

TEST(Parser, VoidElementsDontNest) {
  auto doc = MustParse("<p>a<br>b<img src=x>c</p>");
  Node* p = doc->FindFirstByTag("p");
  EXPECT_EQ(p->InnerText(), "abc");
  EXPECT_EQ(p->children().size(), 5u);  // text, br, text, img, text
}

TEST(Parser, CommentsAndDoctypePreserved) {
  auto doc = MustParse("<!DOCTYPE html><!-- note --><p>x</p>");
  bool saw_comment = false, saw_doctype = false;
  static_cast<const Node&>(*doc).Visit([&](const Node& node) {
    if (node.type() == NodeType::kComment) {
      saw_comment = true;
      EXPECT_EQ(node.text(), " note ");
    }
    if (node.type() == NodeType::kDoctype) saw_doctype = true;
  });
  EXPECT_TRUE(saw_comment);
  EXPECT_TRUE(saw_doctype);
}

TEST(Parser, ScriptContentIsRawText) {
  auto doc = MustParse("<script>if (a < b && c > d) { run(); }</script><p>y</p>");
  Node* script = doc->FindFirstByTag("script");
  ASSERT_NE(script, nullptr);
  EXPECT_EQ(script->InnerText(), "if (a < b && c > d) { run(); }");
  EXPECT_NE(doc->FindFirstByTag("p"), nullptr);
}

TEST(Parser, EntityDecodingInTextAndAttributes) {
  auto doc = MustParse(R"(<p title="a&amp;b">x &lt; y</p>)");
  Node* p = doc->FindFirstByTag("p");
  EXPECT_EQ(p->GetAttribute("title").value(), "a&b");
  EXPECT_EQ(p->InnerText(), "x < y");
}

TEST(Parser, RecoversFromUnmatchedCloseTags) {
  auto doc = MustParse("<div><p>text</span></p></div><p>after</p>");
  EXPECT_EQ(doc->FindByTag("p").size(), 2u);
}

TEST(Parser, UnclosedElementsCloseAtEof) {
  auto doc = MustParse("<div><p>dangling");
  Node* p = doc->FindFirstByTag("p");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->InnerText(), "dangling");
}

TEST(Parser, SelfClosingNonVoidElement) {
  auto doc = MustParse("<div/><p>next</p>");
  // The self-closed div must not swallow the paragraph.
  Node* div = doc->FindFirstByTag("div");
  EXPECT_TRUE(div->children().empty());
  EXPECT_NE(doc->FindFirstByTag("p"), nullptr);
}

TEST(Parser, LoneAngleBracketIsText) {
  auto doc = MustParse("<p>3 < 5 is true</p>");
  EXPECT_EQ(doc->FindFirstByTag("p")->InnerText(), "3 < 5 is true");
}

TEST(Parser, DepthLimitGuardsPathologicalInput) {
  std::string bomb;
  for (int i = 0; i < 600; ++i) bomb += "<div>";
  EXPECT_FALSE(ParseDocument(bomb).ok());
}

// --- DOM ----------------------------------------------------------------------

TEST(Dom, SerializeRoundTripsThroughParser) {
  const std::string original =
      R"(<!DOCTYPE html><html><body><div class="a" id="z"><p>x &amp; y</p>)"
      R"(<img src="i.ppm" width="2" height="3"/></div></body></html>)";
  auto doc = MustParse(original);
  const std::string serialized = doc->Serialize();
  auto doc2 = MustParse(serialized);
  EXPECT_EQ(serialized, doc2->Serialize());  // fixed point after one pass
}

TEST(Dom, ClassQueries) {
  auto doc = MustParse(
      R"(<div class="generated content"></div><div class="content"></div>)");
  EXPECT_EQ(doc->FindByClass("generated content").size(), 1u);
  EXPECT_EQ(doc->FindByClass("content").size(), 2u);
  EXPECT_TRUE(doc->FindByClass("nope").empty());
}

TEST(Dom, ReplaceChildSwapsSubtree) {
  auto doc = MustParse("<div><p>old</p></div>");
  Node* div = doc->FindFirstByTag("div");
  Node* p = doc->FindFirstByTag("p");
  auto replacement = Node::MakeElement("span");
  replacement->AppendChild(Node::MakeText("new"));
  auto old = div->ReplaceChild(p, std::move(replacement));
  ASSERT_NE(old, nullptr);
  EXPECT_EQ(old->InnerText(), "old");
  EXPECT_EQ(div->InnerText(), "new");
  // Replacing a non-child returns null.
  EXPECT_EQ(div->ReplaceChild(old.get(), Node::MakeText("x")), nullptr);
}

TEST(Dom, CloneIsDeepAndIndependent) {
  auto doc = MustParse(R"(<div a="1"><p>t</p></div>)");
  auto clone = doc->Clone();
  doc->FindFirstByTag("p")->AppendChild(Node::MakeText("!"));
  EXPECT_EQ(clone->FindFirstByTag("p")->InnerText(), "t");
  EXPECT_EQ(clone->FindFirstByTag("div")->GetAttribute("a").value(), "1");
}

TEST(Dom, SetAttributeOverwritesAndRemoves) {
  auto node = Node::MakeElement("div");
  node->SetAttribute("k", "1");
  node->SetAttribute("K", "2");
  EXPECT_EQ(node->attributes().size(), 1u);
  EXPECT_EQ(node->GetAttribute("k").value(), "2");
  node->RemoveAttribute("k");
  EXPECT_FALSE(node->GetAttribute("k").has_value());
}

// --- generated content (§4.1) ---------------------------------------------------

const char kGoldfishDiv[] =
    R"(<div class="generated content" content-type="img" )"
    R"(metadata='{"prompt":"A cartoon goldfish","name":"goldfish",)"
    R"("width":512,"height":512}'></div>)";

TEST(GeneratedContent, ExtractsImageSpec) {
  auto doc = MustParse(kGoldfishDiv);
  ExtractionResult result = ExtractGeneratedContent(*doc);
  EXPECT_TRUE(result.errors.empty());
  ASSERT_EQ(result.specs.size(), 1u);
  const GeneratedContentSpec& spec = result.specs[0];
  EXPECT_EQ(spec.type, GeneratedContentType::kImage);
  EXPECT_EQ(spec.prompt(), "A cartoon goldfish");
  EXPECT_EQ(spec.name(), "goldfish");
  EXPECT_EQ(spec.width(), 512);
  EXPECT_EQ(spec.height(), 512);
  EXPECT_GT(spec.MetadataBytes(), 0u);
}

TEST(GeneratedContent, ExtractsTextSpecWithBullets) {
  auto doc = MustParse(
      R"(<div class="generated content" content-type="txt" )"
      R"(metadata='{"prompt":"expand","bullets":["a b","c d"],"words":150}')"
      R"(></div>)");
  ExtractionResult result = ExtractGeneratedContent(*doc);
  ASSERT_EQ(result.specs.size(), 1u);
  EXPECT_EQ(result.specs[0].type, GeneratedContentType::kText);
  EXPECT_EQ(result.specs[0].words(), 150);
  EXPECT_EQ(result.specs[0].metadata.Get("bullets")->AsArray().size(), 2u);
}

TEST(GeneratedContent, DefaultDimensionsWhenAbsent) {
  auto doc = MustParse(
      R"(<div class="generated content" content-type="img" )"
      R"(metadata='{"prompt":"x"}'></div>)");
  ExtractionResult result = ExtractGeneratedContent(*doc);
  ASSERT_EQ(result.specs.size(), 1u);
  EXPECT_EQ(result.specs[0].width(), 512);
  EXPECT_EQ(result.specs[0].height(), 512);
}

struct InvalidDivCase {
  const char* name;
  const char* html;
};

class GeneratedContentInvalid : public ::testing::TestWithParam<InvalidDivCase> {};

TEST_P(GeneratedContentInvalid, ReportedAsErrorNotSpec) {
  auto doc = MustParse(GetParam().html);
  ExtractionResult result = ExtractGeneratedContent(*doc);
  EXPECT_TRUE(result.specs.empty()) << GetParam().name;
  EXPECT_EQ(result.errors.size(), 1u) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GeneratedContentInvalid,
    ::testing::Values(
        InvalidDivCase{"missing_content_type",
                       R"(<div class="generated content" )"
                       R"(metadata='{"prompt":"x"}'></div>)"},
        InvalidDivCase{"unsupported_type",
                       R"(<div class="generated content" content-type="vid" )"
                       R"(metadata='{"prompt":"x"}'></div>)"},
        InvalidDivCase{"missing_metadata",
                       R"(<div class="generated content" content-type="img"></div>)"},
        InvalidDivCase{"metadata_not_json",
                       R"(<div class="generated content" content-type="img" )"
                       R"(metadata='{broken'></div>)"},
        InvalidDivCase{"metadata_not_object",
                       R"(<div class="generated content" content-type="img" )"
                       R"(metadata='[1,2]'></div>)"},
        InvalidDivCase{"missing_prompt",
                       R"(<div class="generated content" content-type="img" )"
                       R"(metadata='{"name":"x"}'></div>)"}),
    [](const ::testing::TestParamInfo<InvalidDivCase>& info) {
      return info.param.name;
    });

TEST(GeneratedContent, Figure1BeforeAfterImage) {
  // Figure 1: before, the div carries the prompt; after, it carries the
  // pointer to the generated file.
  auto doc = MustParse(kGoldfishDiv);
  ExtractionResult result = ExtractGeneratedContent(*doc);
  ASSERT_EQ(result.specs.size(), 1u);
  Node& div = *result.specs[0].node;
  ReplaceWithImage(div, "generated/goldfish.jpg", 512, 512,
                   "A cartoon goldfish");
  const std::string after = doc->Serialize();
  EXPECT_NE(after.find("media content"), std::string::npos);
  EXPECT_NE(after.find("generated/goldfish.jpg"), std::string::npos);
  EXPECT_EQ(after.find("metadata"), std::string::npos);
  EXPECT_EQ(after.find("content-type"), std::string::npos);
  // The replaced page no longer contains generation placeholders.
  EXPECT_TRUE(ExtractGeneratedContent(*doc).specs.empty());
}

TEST(GeneratedContent, ReplaceWithTextProducesParagraph) {
  auto doc = MustParse(
      R"(<div class="generated content" content-type="txt" )"
      R"(metadata='{"prompt":"p","words":50}'></div>)");
  ExtractionResult result = ExtractGeneratedContent(*doc);
  ASSERT_EQ(result.specs.size(), 1u);
  ReplaceWithText(*result.specs[0].node, "expanded prose here");
  Node* p = doc->FindFirstByTag("p");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->InnerText(), "expanded prose here");
}

TEST(GeneratedContent, MakeDivRoundTripsThroughParser) {
  json::Value metadata{json::Object{}};
  metadata.Set("prompt", "a \"quoted\" <prompt> & more");
  metadata.Set("width", 224);
  auto div = MakeGeneratedContentDiv(GeneratedContentType::kImage, metadata);
  auto doc = MustParse(div->Serialize());
  ExtractionResult result = ExtractGeneratedContent(*doc);
  ASSERT_EQ(result.specs.size(), 1u);
  EXPECT_EQ(result.specs[0].prompt(), "a \"quoted\" <prompt> & more");
  EXPECT_EQ(result.specs[0].width(), 224);
}

}  // namespace
}  // namespace sww::html
