// Tests for the work-stealing thread pool: result/ordering contracts of
// Submit, exception propagation, ParallelFor coverage (including nested
// calls from inside pool tasks), and graceful shutdown with queued work.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/striped_lock.hpp"
#include "util/thread_pool.hpp"

namespace sww::util {
namespace {

TEST(ThreadPool, WorkerCountClampedToAtLeastOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.worker_count(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.worker_count(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.worker_count(), 4);
}

TEST(ThreadPool, SubmitResultsArriveInSubmissionOrder) {
  // Futures pair each result with its submission slot: waiting on them in
  // order yields the deterministic merge the generation pipeline relies
  // on, no matter which worker ran which task.
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SubmitPropagatesExceptionsThroughTheFuture) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return 7; });
  auto bad = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::int64_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  pool.ParallelFor(kN, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      touched[static_cast<std::size_t>(i)].fetch_add(1,
                                                     std::memory_order_relaxed);
    }
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(touched[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<std::int64_t> sum{0};
  pool.ParallelFor(1, [&](std::int64_t begin, std::int64_t end) {
    sum.fetch_add(end - begin);
  });
  EXPECT_EQ(sum.load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(1000,
                       [](std::int64_t begin, std::int64_t) {
                         if (begin >= 500) throw std::logic_error("chunk");
                       },
                       /*grain=*/10),
      std::logic_error);
}

TEST(ThreadPool, NestedParallelForFromPoolTasksDoesNotDeadlock) {
  // Every worker blocks in an outer ParallelFor whose body runs an inner
  // one; caller participation means the inner loops still make progress.
  ThreadPool pool(3);
  std::atomic<std::int64_t> total{0};
  pool.ParallelFor(
      8,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          pool.ParallelFor(
              100,
              [&](std::int64_t b, std::int64_t e) { total.fetch_add(e - b); },
              /*grain=*/7);
        }
      },
      /*grain=*/1);
  EXPECT_EQ(total.load(), 8 * 100);
}

TEST(ThreadPool, DestructorDrainsPendingWork) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor runs here with most of the queue still pending.
  }
  EXPECT_EQ(executed.load(), 200) << "graceful shutdown must drain the queue";
}

TEST(ThreadPool, StatsCountExecutedTasksAndChunks) {
  ThreadPool pool(4);
  for (int i = 0; i < 32; ++i) pool.Submit([] {}).wait();
  pool.ParallelFor(1000, [](std::int64_t, std::int64_t) {}, /*grain=*/10);
  const ThreadPool::Stats stats = pool.stats();
  EXPECT_GE(stats.tasks_executed, 32u);
  EXPECT_GE(stats.parallel_for_chunks, 100u);
}

TEST(ThreadPool, SharedPoolIsProcessWideSingleton) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.worker_count(), 1);
}

TEST(StripedMutex, StripesPartitionAndLockIndependently) {
  StripedMutex<> locks;
  EXPECT_EQ(StripedMutex<>::stripe_count(), 16u);
  // Same hash → same stripe; stripes cover [0, N).
  for (std::uint64_t h : {0ull, 1ull, 12345ull, ~0ull}) {
    EXPECT_EQ(locks.StripeOf(h), locks.StripeOf(h));
    EXPECT_LT(locks.StripeOf(h), StripedMutex<>::stripe_count());
  }
  // Holding one stripe does not block another.
  std::lock_guard<std::mutex> hold(locks.Get(0));
  EXPECT_TRUE(locks.Get(1).try_lock());
  locks.Get(1).unlock();
}

TEST(StripedMutex, WithAllLockedRunsExclusively) {
  StripedMutex<4> locks;
  bool ran = false;
  locks.WithAllLocked([&] {
    ran = true;
    // All stripes are held: try_lock on any must fail.
    EXPECT_FALSE(locks.Get(2).try_lock());
  });
  EXPECT_TRUE(ran);
  // And they are released afterwards.
  EXPECT_TRUE(locks.Get(2).try_lock());
  locks.Get(2).unlock();
}

}  // namespace
}  // namespace sww::util
