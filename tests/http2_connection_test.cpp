// Tests for the HTTP/2 connection state machine, including the SWW
// negotiation behaviour the paper's §3/§6.2 describe.
#include <gtest/gtest.h>

#include "http2/connection.hpp"
#include "net/pump.hpp"
#include "util/bytes.hpp"

namespace sww::http2 {
namespace {

using util::Bytes;
using util::ToBytes;

Connection::Options ClientOptions(std::uint32_t ability = kGenAbilityFull) {
  Connection::Options options;
  options.local_settings.set_gen_ability(ability);
  options.local_settings.set_enable_push(false);
  return options;
}

Connection::Options ServerOptions(std::uint32_t ability = kGenAbilityFull) {
  Connection::Options options;
  options.local_settings.set_gen_ability(ability);
  options.local_settings.set_enable_push(false);
  return options;
}

struct Pair {
  Connection client{Connection::Role::kClient, ClientOptions()};
  Connection server{Connection::Role::kServer, ServerOptions()};

  Pair() = default;
  Pair(std::uint32_t client_ability, std::uint32_t server_ability)
      : client(Connection::Role::kClient, ClientOptions(client_ability)),
        server(Connection::Role::kServer, ServerOptions(server_ability)) {}

  void Handshake() {
    client.StartHandshake();
    server.StartHandshake();
    net::DirectLinkExchange(client, server);
  }
};

TEST(Connection, HandshakeExchangesSettingsAndAcks) {
  Pair pair;
  pair.Handshake();
  EXPECT_TRUE(pair.client.remote_settings_received());
  EXPECT_TRUE(pair.server.remote_settings_received());
  EXPECT_TRUE(pair.client.local_settings_acked());
  EXPECT_TRUE(pair.server.local_settings_acked());
}

TEST(Connection, GenAbilityNegotiatedWhenBothAdvertise) {
  Pair pair;
  pair.Handshake();
  EXPECT_TRUE(pair.client.generative_mode());
  EXPECT_TRUE(pair.server.generative_mode());
  EXPECT_EQ(pair.client.negotiated_gen_ability(), kGenAbilityFull);
}

TEST(Connection, FallsBackWhenOnlyOneSideParticipates) {
  // "In an exchange between a participating entity and non-participating
  // entity, the participating entity will fall back to default ... The
  // non-participating entity will remain naïve."
  Pair pair(kGenAbilityFull, kGenAbilityNone);
  pair.Handshake();
  EXPECT_FALSE(pair.client.generative_mode());
  EXPECT_FALSE(pair.server.generative_mode());
}

TEST(Connection, NegotiationPendingUntilSettingsArrive) {
  Connection client(Connection::Role::kClient, ClientOptions());
  EXPECT_EQ(client.negotiated_gen_ability(), kGenAbilityNone);
  EXPECT_FALSE(client.generative_mode());
}

TEST(Connection, UnknownSettingFromFutureExtensionIsIgnored) {
  // A hypothetical peer sends both GEN_ABILITY and an unknown parameter;
  // the connection keeps working (RFC 9113 §6.5.2).
  Pair pair;
  pair.client.StartHandshake();
  pair.server.StartHandshake();
  Frame extra = MakeSettingsFrame({{0x09, 77}, {kSettingsGenAbility, 1}});
  Bytes wire = SerializeFrame(extra);
  // Deliver the server's normal output first, then the extra SETTINGS.
  net::DirectLinkExchange(pair.client, pair.server);
  ASSERT_TRUE(pair.client.Receive(wire).ok());
  EXPECT_EQ(pair.client.remote_settings().unknown().at(0x09), 77u);
  EXPECT_TRUE(pair.client.generative_mode());
}

TEST(Connection, RequestResponseRoundTrip) {
  Pair pair;
  pair.Handshake();
  hpack::HeaderList request = {{":method", "GET", false},
                               {":scheme", "https", false},
                               {":path", "/index.html", false},
                               {":authority", "example.org", false}};
  auto stream_id = pair.client.SubmitRequest(request, {});
  ASSERT_TRUE(stream_id.ok());
  EXPECT_EQ(stream_id.value(), 1u);
  net::DirectLinkExchange(pair.client, pair.server);

  // Server sees the complete request.
  const Stream* server_stream = pair.server.FindStream(1);
  ASSERT_NE(server_stream, nullptr);
  EXPECT_TRUE(server_stream->remote_end);
  ASSERT_EQ(server_stream->headers.size(), 4u);
  EXPECT_EQ(server_stream->headers[2].value, "/index.html");

  // Server answers.
  hpack::HeaderList response = {{":status", "200", false},
                                {"content-type", "text/html", false}};
  ASSERT_TRUE(pair.server.SubmitHeaders(1, response, false).ok());
  ASSERT_TRUE(pair.server.SubmitData(1, ToBytes("<html></html>"), true).ok());
  net::DirectLinkExchange(pair.client, pair.server);

  const Stream* client_stream = pair.client.FindStream(1);
  ASSERT_NE(client_stream, nullptr);
  EXPECT_EQ(util::ToString(client_stream->body), "<html></html>");
  EXPECT_EQ(client_stream->state, StreamState::kClosed);
}

TEST(Connection, MultiplexedStreamsInterleave) {
  Pair pair;
  pair.Handshake();
  hpack::HeaderList request = {{":method", "GET", false},
                               {":scheme", "https", false},
                               {":path", "/a", false}};
  auto s1 = pair.client.SubmitRequest(request, {});
  auto s2 = pair.client.SubmitRequest(request, {});
  auto s3 = pair.client.SubmitRequest(request, {});
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(s2.value(), 3u);
  EXPECT_EQ(s3.value(), 5u);  // client streams are odd and increasing
  net::DirectLinkExchange(pair.client, pair.server);
  EXPECT_NE(pair.server.FindStream(1), nullptr);
  EXPECT_NE(pair.server.FindStream(3), nullptr);
  EXPECT_NE(pair.server.FindStream(5), nullptr);
}

TEST(Connection, LargeBodyFlowsThroughFlowControl) {
  Pair pair;
  pair.Handshake();
  hpack::HeaderList request = {{":method", "GET", false},
                               {":scheme", "https", false},
                               {":path", "/big", false}};
  auto stream_id = pair.client.SubmitRequest(request, {});
  ASSERT_TRUE(stream_id.ok());
  net::DirectLinkExchange(pair.client, pair.server);

  // 1 MB body: far beyond the 64 KB default connection window, so it only
  // arrives if WINDOW_UPDATE replenishment works in both directions.
  Bytes big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 31);
  }
  ASSERT_TRUE(pair.server
                  .SubmitHeaders(1, {{":status", "200", false}}, false)
                  .ok());
  ASSERT_TRUE(pair.server.SubmitData(1, big, true).ok());
  net::DirectLinkExchange(pair.client, pair.server, /*max_rounds=*/512);

  const Stream* stream = pair.client.FindStream(1);
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->body, big);
}

TEST(Connection, ReleaseWithQueuedDataStillDelivers) {
  // Regression: the server app releases the stream immediately after
  // submitting a response that is still queued behind flow control.
  Pair pair;
  pair.Handshake();
  hpack::HeaderList request = {{":method", "GET", false},
                               {":scheme", "https", false},
                               {":path", "/asset", false}};
  ASSERT_TRUE(pair.client.SubmitRequest(request, {}).ok());
  net::DirectLinkExchange(pair.client, pair.server);

  Bytes big(400000, 0xab);
  ASSERT_TRUE(pair.server
                  .SubmitHeaders(1, {{":status", "200", false}}, false)
                  .ok());
  ASSERT_TRUE(pair.server.SubmitData(1, big, true).ok());
  pair.server.ReleaseStream(1);  // app is done; bytes must still flow
  net::DirectLinkExchange(pair.client, pair.server, /*max_rounds=*/512);
  const Stream* stream = pair.client.FindStream(1);
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->body.size(), big.size());
  // Once drained, the released stream is gone on the server.
  EXPECT_EQ(pair.server.FindStream(1), nullptr);
}

TEST(Connection, OversizedHeaderBlockUsesContinuation) {
  Pair pair;
  pair.Handshake();
  hpack::HeaderList request = {{":method", "GET", false},
                               {":scheme", "https", false},
                               {":path", "/", false},
                               // Incompressible value far above one frame.
                               {"x-blob", std::string(40000, 'z'), false}};
  ASSERT_TRUE(pair.client.SubmitRequest(request, {}).ok());
  const auto& sent = pair.client.wire_stats().frames_sent;
  ASSERT_TRUE(sent.count(FrameType::kContinuation));
  EXPECT_GE(sent.at(FrameType::kContinuation), 1u);
  net::DirectLinkExchange(pair.client, pair.server);
  const Stream* stream = pair.server.FindStream(1);
  ASSERT_NE(stream, nullptr);
  ASSERT_EQ(stream->headers.size(), 4u);
  EXPECT_EQ(stream->headers[3].value.size(), 40000u);
}

TEST(Connection, PingIsAnsweredAutomatically) {
  Pair pair;
  pair.Handshake();
  pair.client.SendPing(0x1234);
  net::DirectLinkExchange(pair.client, pair.server);
  bool acked = false;
  for (const auto& event : pair.client.TakeEvents()) {
    if (event.type == Connection::Event::Type::kPingAcked) {
      acked = true;
      EXPECT_EQ(event.ping_opaque, 0x1234u);
    }
  }
  EXPECT_TRUE(acked);
}

TEST(Connection, GoawayRefusesNewPeerStreams) {
  Pair pair;
  pair.Handshake();
  pair.server.SendGoaway(ErrorCode::kNoError, "maintenance");
  net::DirectLinkExchange(pair.client, pair.server);
  EXPECT_TRUE(pair.client.going_away());

  hpack::HeaderList request = {{":method", "GET", false},
                               {":scheme", "https", false},
                               {":path", "/", false}};
  // Client refuses to open new streams after GOAWAY.
  EXPECT_FALSE(pair.client.SubmitRequest(request, {}).ok());
}

TEST(Connection, RstStreamClosesAndReports) {
  Pair pair;
  pair.Handshake();
  hpack::HeaderList request = {{":method", "GET", false},
                               {":scheme", "https", false},
                               {":path", "/", false}};
  ASSERT_TRUE(pair.client.SubmitRequest(request, {}).ok());
  net::DirectLinkExchange(pair.client, pair.server);
  ASSERT_TRUE(pair.server.ResetStream(1, ErrorCode::kRefusedStream).ok());
  net::DirectLinkExchange(pair.client, pair.server);
  bool reset_seen = false;
  for (const auto& event : pair.client.TakeEvents()) {
    if (event.type == Connection::Event::Type::kStreamReset) {
      reset_seen = true;
      EXPECT_EQ(event.error, ErrorCode::kRefusedStream);
    }
  }
  EXPECT_TRUE(reset_seen);
  EXPECT_EQ(pair.client.FindStream(1)->state, StreamState::kClosed);
}

TEST(Connection, BadClientPrefaceIsProtocolError) {
  Connection server(Connection::Role::kServer, ServerOptions());
  server.StartHandshake();
  auto status = server.Receive(ToBytes("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(server.dead());
}

TEST(Connection, FirstFrameMustBeSettings) {
  Pair pair;
  pair.client.StartHandshake();
  pair.server.StartHandshake();
  // Client preface + a PING before SETTINGS: protocol error.
  Bytes wire = ToBytes(std::string(kClientPreface));
  const Bytes ping = SerializeFrame(MakePingFrame(1, false));
  wire.insert(wire.end(), ping.begin(), ping.end());
  Connection server(Connection::Role::kServer, ServerOptions());
  server.StartHandshake();
  EXPECT_FALSE(server.Receive(wire).ok());
}

TEST(Connection, DataOnIdleStreamIsProtocolError) {
  Pair pair;
  pair.Handshake();
  const Bytes rogue = SerializeFrame(MakeDataFrame(9, ToBytes("x"), false));
  EXPECT_FALSE(pair.server.Receive(rogue).ok());
  EXPECT_TRUE(pair.server.dead());
}

TEST(Connection, SettingsOnNonzeroStreamIsProtocolError) {
  Pair pair;
  pair.Handshake();
  Frame bad = MakeSettingsFrame({});
  bad.header.stream_id = 3;
  EXPECT_FALSE(pair.server.Receive(SerializeFrame(bad)).ok());
}

TEST(Connection, PushPromiseIsRejected) {
  Pair pair;
  pair.Handshake();
  Frame push;
  push.header.type = FrameType::kPushPromise;
  push.header.stream_id = 1;
  push.payload = {0, 0, 0, 2};
  EXPECT_FALSE(pair.client.Receive(SerializeFrame(push)).ok());
}

TEST(Connection, MidConnectionSettingsUpdateReachesPeer) {
  // §5.1: "A server can choose to serve traditional content even if the
  // client supports generative ability" — modelled by re-advertising
  // GEN_ABILITY 0 mid-connection.
  Pair pair;
  pair.Handshake();
  ASSERT_TRUE(pair.client.generative_mode());
  Settings updated = pair.server.local_settings();
  updated.set_gen_ability(kGenAbilityNone);
  pair.server.UpdateLocalSettings(updated);
  net::DirectLinkExchange(pair.client, pair.server);
  EXPECT_FALSE(pair.client.generative_mode());
}

TEST(Connection, WireStatsCountFramesAndBytes) {
  Pair pair;
  pair.Handshake();
  hpack::HeaderList request = {{":method", "GET", false},
                               {":scheme", "https", false},
                               {":path", "/", false}};
  ASSERT_TRUE(pair.client.SubmitRequest(request, {}).ok());
  net::DirectLinkExchange(pair.client, pair.server);
  const auto& stats = pair.client.wire_stats();
  EXPECT_GE(stats.frames_sent.at(FrameType::kSettings), 1u);
  EXPECT_EQ(stats.frames_sent.at(FrameType::kHeaders), 1u);
  EXPECT_GT(stats.bytes_sent, kClientPreface.size());
  EXPECT_GT(stats.bytes_received, 0u);
}

TEST(Connection, ServerRejectsRequestWhenConcurrencyExceeded) {
  Connection::Options server_options = ServerOptions();
  server_options.local_settings.set_max_concurrent_streams(1);
  Connection server(Connection::Role::kServer, server_options);
  Connection client(Connection::Role::kClient, ClientOptions());
  client.StartHandshake();
  server.StartHandshake();
  net::DirectLinkExchange(client, server);

  hpack::HeaderList request = {{":method", "GET", false},
                               {":scheme", "https", false},
                               {":path", "/", false}};
  ASSERT_TRUE(client.SubmitRequest(request, {}).ok());
  ASSERT_TRUE(client.SubmitRequest(request, {}).ok());
  net::DirectLinkExchange(client, server);
  bool refused = false;
  for (const auto& event : client.TakeEvents()) {
    if (event.type == Connection::Event::Type::kStreamReset &&
        event.error == ErrorCode::kRefusedStream) {
      refused = true;
    }
  }
  EXPECT_TRUE(refused);
}

TEST(Connection, OutputViewMatchesTakeOutput) {
  Pair pair;
  pair.client.StartHandshake();
  ASSERT_TRUE(pair.client.HasOutput());
  const util::BytesView view = pair.client.OutputView();
  const Bytes copied(view.begin(), view.end());
  // TakeOutput must return exactly the viewed bytes, then both are drained.
  EXPECT_EQ(pair.client.TakeOutput(), copied);
  EXPECT_FALSE(pair.client.HasOutput());
  EXPECT_TRUE(pair.client.OutputView().empty());
}

TEST(Connection, ClearOutputDrainsWithoutCopy) {
  Pair pair;
  pair.client.StartHandshake();
  ASSERT_TRUE(pair.client.HasOutput());
  pair.client.ClearOutput();
  EXPECT_FALSE(pair.client.HasOutput());
  EXPECT_EQ(pair.client.TakeOutput(), Bytes{});
}

TEST(Connection, SteadyStateRequestsStopAllocatingOutput) {
  Pair pair;
  pair.Handshake();
  hpack::HeaderList request = {{":method", "GET", false},
                               {":scheme", "https", false},
                               {":path", "/steady", false},
                               {":authority", "sww.local", false}};
  const Bytes body(512, 0x33);
  auto warm = [&] {
    auto stream_id = pair.client.SubmitRequest(request, body);
    ASSERT_TRUE(stream_id.ok());
    net::DirectLinkExchange(pair.client, pair.server);
    ASSERT_TRUE(pair.server
                    .SubmitHeaders(stream_id.value(),
                                   {{":status", "200", false}}, true)
                    .ok());
    net::DirectLinkExchange(pair.client, pair.server);
    pair.client.ReleaseStream(stream_id.value());
    pair.server.ReleaseStream(stream_id.value());
  };
  for (int i = 0; i < 8; ++i) warm();
  // After warm-up the output arenas are at their high-water mark: identical
  // request/response rounds must not allocate in the serialization path.
  const std::uint64_t client_allocs = pair.client.output_allocations();
  const std::uint64_t server_allocs = pair.server.output_allocations();
  for (int i = 0; i < 32; ++i) warm();
  EXPECT_EQ(pair.client.output_allocations(), client_allocs);
  EXPECT_EQ(pair.server.output_allocations(), server_allocs);
}

}  // namespace
}  // namespace sww::http2
