// Tests for the lossy-datagram reliable transport (§3.1's HTTP/3
// direction): correctness under loss/reordering/duplication, and the full
// SWW negotiation + page delivery running over it.
#include <gtest/gtest.h>

#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "genai/interpolator.hpp"
#include "metrics/clip.hpp"
#include "net/pump.hpp"
#include "net/reliable_link.hpp"

namespace sww::net {
namespace {

using util::Bytes;
using util::ToBytes;
using util::ToString;

/// Drive both endpoints' virtual clocks until `done` or a tick budget.
template <typename DoneFn>
bool TickUntil(ReliablePair& pair, DoneFn done, int max_ticks = 2000) {
  for (int tick = 0; tick < max_ticks; ++tick) {
    pair.first->Tick();
    pair.second->Tick();
    if (done()) return true;
  }
  return done();
}

std::string ReadAll(ReliableLink& link, std::size_t expected) {
  std::string out;
  while (out.size() < expected) {
    auto chunk = link.Read();
    if (!chunk.ok() || chunk.value().empty()) break;
    out += ToString(chunk.value());
  }
  return out;
}

TEST(LossyChannel, LosslessProfileDeliversEverything) {
  LossyChannel channel({0.0, 0.0, 0.0, 1});
  channel.Send(ToBytes("a"));
  channel.Send(ToBytes("b"));
  auto delivered = channel.Deliver();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(ToString(delivered[0]), "a");
  EXPECT_EQ(channel.dropped(), 0u);
}

TEST(LossyChannel, LossRateDropsApproximately) {
  LossyChannel channel({0.3, 0.0, 0.0, 42});
  for (int i = 0; i < 2000; ++i) channel.Send(Bytes{1});
  EXPECT_NEAR(static_cast<double>(channel.dropped()) / 2000.0, 0.3, 0.05);
}

TEST(LossyChannel, ReorderedDatagramsArriveNextRound) {
  LossyChannel channel({0.0, 0.0, 1.0, 7});  // everything delayed one slot
  channel.Send(ToBytes("x"));
  EXPECT_TRUE(channel.Deliver().empty());
  auto second = channel.Deliver();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(ToString(second[0]), "x");
}

TEST(ReliableLink, CleanChannelPassesBytesInOrder) {
  ReliablePair pair = MakeReliablePair({0.0, 0.0, 0.0, 1});
  ASSERT_TRUE(pair.first->Write(ToBytes("hello reliable world")).ok());
  std::string received;
  TickUntil(pair, [&] {
    received += ReadAll(*pair.second, 20 - received.size());
    return received.size() == 20;
  });
  EXPECT_EQ(received, "hello reliable world");
  EXPECT_EQ(pair.first->stats().retransmissions, 0u);
}

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, BulkTransferSurvivesLoss) {
  LossyChannel::Profile profile;
  profile.loss_rate = GetParam();
  profile.duplicate_rate = 0.05;
  profile.reorder_rate = 0.15;
  profile.seed = 99;
  ReliablePair pair = MakeReliablePair(profile);

  // 200 kB of patterned data — hundreds of segments.
  Bytes payload(200000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7 + (i >> 9));
  }
  ASSERT_TRUE(pair.first->Write(payload).ok());
  Bytes received;
  const bool complete = TickUntil(pair, [&] {
    auto chunk = pair.second->Read();
    if (chunk.ok()) {
      received.insert(received.end(), chunk.value().begin(), chunk.value().end());
    }
    return received.size() >= payload.size();
  }, 20000);
  ASSERT_TRUE(complete) << "received only " << received.size();
  EXPECT_EQ(received, payload);
  if (GetParam() > 0.0) {
    EXPECT_GT(pair.first->stats().retransmissions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossSweep,
                         ::testing::Values(0.0, 0.05, 0.2, 0.4));

TEST(ReliableLink, BidirectionalTraffic) {
  ReliablePair pair = MakeReliablePair({0.1, 0.0, 0.1, 5});
  ASSERT_TRUE(pair.first->Write(ToBytes("ping from first")).ok());
  ASSERT_TRUE(pair.second->Write(ToBytes("pong from second")).ok());
  std::string at_second, at_first;
  TickUntil(pair, [&] {
    auto a = pair.second->Read();
    if (a.ok()) at_second += ToString(a.value());
    auto b = pair.first->Read();
    if (b.ok()) at_first += ToString(b.value());
    return at_second.size() >= 15 && at_first.size() >= 16;
  });
  EXPECT_EQ(at_second, "ping from first");
  EXPECT_EQ(at_first, "pong from second");
}

TEST(ReliableLink, ClosedLinkRefusesWrites) {
  ReliablePair pair = MakeReliablePair({0.0, 0.0, 0.0, 1});
  pair.first->Close();
  EXPECT_FALSE(pair.first->Write(ToBytes("x")).ok());
  EXPECT_TRUE(pair.first->closed());
}

TEST(ReliableLink, NegotiationSurvivesLossyNetwork) {
  // The paper's §3.1 claim, demonstrated: SETTINGS_GEN_ABILITY negotiation
  // and a full generative page fetch complete over a 20%-loss datagram
  // network — the reliability layer (QUIC's job under HTTP/3) makes the
  // SETTINGS-based design carry over.
  LossyChannel::Profile profile;
  profile.loss_rate = 0.2;
  profile.reorder_rate = 0.1;
  profile.seed = 1234;
  ReliablePair pair = MakeReliablePair(profile);

  core::ContentStore store;
  ASSERT_TRUE(store.AddPage("/", core::MakeGoldfishPage()).ok());
  auto server = core::GenerativeServer::Create(&store, {});
  ASSERT_TRUE(server.ok());
  auto client = core::GenerativeClient::Create({});
  ASSERT_TRUE(client.ok());
  server.value()->StartHandshake();
  client.value()->StartHandshake();

  auto pump = [&]() -> util::Status {
    // Move connection bytes into the links, tick the links, feed back.
    if (client.value()->connection().HasOutput()) {
      if (auto s = pair.first->Write(client.value()->connection().TakeOutput());
          !s.ok()) {
        return s;
      }
    }
    if (server.value()->connection().HasOutput()) {
      if (auto s = pair.second->Write(server.value()->connection().TakeOutput());
          !s.ok()) {
        return s;
      }
    }
    pair.first->Tick();
    pair.second->Tick();
    if (auto incoming = pair.second->Read();
        incoming.ok() && !incoming.value().empty()) {
      if (auto s = server.value()->connection().Receive(incoming.value());
          !s.ok()) {
        return s;
      }
    }
    if (auto s = server.value()->ProcessEvents(); !s.ok()) return s;
    if (auto incoming = pair.first->Read();
        incoming.ok() && !incoming.value().empty()) {
      if (auto s = client.value()->connection().Receive(incoming.value());
          !s.ok()) {
        return s;
      }
    }
    return util::Status::Ok();
  };

  auto fetch = client.value()->FetchPage("/", pump);
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().mode, "generative");
  EXPECT_EQ(fetch.value().generated_items, 1u);
  EXPECT_TRUE(client.value()->NegotiatedGenerative());
  // Loss actually happened and was repaired.
  EXPECT_GT(pair.a_to_b->dropped() + pair.b_to_a->dropped(), 0u);
}

}  // namespace
}  // namespace sww::net

// --- frame interpolation (genai) ------------------------------------------------

namespace sww::genai {
namespace {

Image Frame(std::string_view prompt, std::uint64_t seed) {
  DiffusionModel model(FindImageModel(kDalle3).value());
  return model.Generate(prompt, 96, 96, 15, seed).value().image;
}

TEST(Interpolator, EndpointsAreExact) {
  const Image a = Frame("a mountain lake at dawn", 1);
  const Image b = Frame("a mountain lake at dusk", 2);
  EXPECT_EQ(InterpolateFrames(a, b, 0.0).value().data(), a.data());
  EXPECT_EQ(InterpolateFrames(a, b, 1.0).value().data(), b.data());
}

TEST(Interpolator, MidFrameIsSemanticallyBetween) {
  const std::string prompt = "a mountain lake with forest";
  const Image a = Frame(prompt, 1);
  const Image b = Frame(prompt, 2);
  const Image mid = InterpolateFrames(a, b, 0.5).value();
  // Same scene, different seeds: the interpolated frame keeps the scene.
  const double score_mid = metrics::ClipScore(prompt, mid);
  EXPECT_GT(score_mid, 0.2);
}

TEST(Interpolator, RejectsMismatchedInputs) {
  Image small(8, 8), big(16, 16);
  EXPECT_FALSE(InterpolateFrames(small, big, 0.5).ok());
  EXPECT_FALSE(InterpolateFrames(small, small, 1.5).ok());
  EXPECT_FALSE(InterpolateFrames(Image(), Image(), 0.5).ok());
}

TEST(Interpolator, BoostDoublesFrameCount) {
  std::vector<Image> frames;
  for (std::uint64_t i = 0; i < 5; ++i) {
    frames.push_back(Frame("a harbor town", i));
  }
  auto boosted = BoostFrameRate(frames);
  ASSERT_TRUE(boosted.ok());
  EXPECT_EQ(boosted.value().size(), 9u);  // 2n-1
  EXPECT_FALSE(BoostFrameRate({frames[0]}).ok());
}

}  // namespace
}  // namespace sww::genai
