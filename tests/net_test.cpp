// Tests for the transport layer: in-memory pair, loopback TCP, pumps.
#include <gtest/gtest.h>

#include <thread>

#include "http2/connection.hpp"
#include "net/pump.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"
#include "util/bytes.hpp"

namespace sww::net {
namespace {

using util::Bytes;
using util::ToBytes;
using util::ToString;

TEST(InMemoryPair, BytesFlowBothWays) {
  TransportPair pair = MakeInMemoryPair();
  ASSERT_TRUE(pair.first->Write(ToBytes("ping")).ok());
  ASSERT_TRUE(pair.second->Write(ToBytes("pong")).ok());
  EXPECT_EQ(ToString(pair.second->Read().value()), "ping");
  EXPECT_EQ(ToString(pair.first->Read().value()), "pong");
}

TEST(InMemoryPair, EmptyReadWhenNoData) {
  TransportPair pair = MakeInMemoryPair();
  auto result = pair.first->Read();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(InMemoryPair, ReadsAreDrainedOnce) {
  TransportPair pair = MakeInMemoryPair();
  ASSERT_TRUE(pair.first->Write(ToBytes("abc")).ok());
  EXPECT_EQ(pair.second->Read().value().size(), 3u);
  EXPECT_TRUE(pair.second->Read().value().empty());
}

TEST(InMemoryPair, CloseSurfacesAsClosedAfterDrain) {
  TransportPair pair = MakeInMemoryPair();
  ASSERT_TRUE(pair.first->Write(ToBytes("tail")).ok());
  pair.first->Close();
  // Buffered data is still readable...
  EXPECT_EQ(ToString(pair.second->Read().value()), "tail");
  // ...then the close is observed.
  auto after = pair.second->Read();
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.error().code, util::ErrorCode::kClosed);
  // Writing into a closed channel fails.
  EXPECT_FALSE(pair.second->Write(ToBytes("x")).ok());
}

TEST(InMemoryPair, ThreadSafeUnderConcurrency) {
  TransportPair pair = MakeInMemoryPair();
  constexpr int kBytes = 100000;
  std::thread writer([&] {
    Bytes chunk(100, 0x5a);
    for (int i = 0; i < kBytes / 100; ++i) {
      ASSERT_TRUE(pair.first->Write(chunk).ok());
    }
    pair.first->Close();
  });
  std::size_t received = 0;
  while (true) {
    auto result = pair.second->Read();
    if (!result.ok()) break;
    received += result.value().size();
  }
  writer.join();
  EXPECT_EQ(received, static_cast<std::size_t>(kBytes));
}

TEST(Tcp, LoopbackRoundTrip) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value()->port();
  ASSERT_GT(port, 0);

  std::unique_ptr<Transport> server_side;
  std::thread accepter([&] {
    auto accepted = listener.value()->Accept(2000);
    ASSERT_TRUE(accepted.ok());
    server_side = std::move(accepted).value();
  });
  auto client_side = TcpConnect(port);
  ASSERT_TRUE(client_side.ok());
  accepter.join();
  ASSERT_NE(server_side, nullptr);

  ASSERT_TRUE(client_side.value()->Write(ToBytes("hello over tcp")).ok());
  // Drain with a small retry loop (kernel delivery is asynchronous).
  std::string received;
  for (int i = 0; i < 100 && received.size() < 14; ++i) {
    auto chunk = server_side->Read();
    ASSERT_TRUE(chunk.ok());
    received += ToString(chunk.value());
    if (received.size() < 14) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(received, "hello over tcp");

  ASSERT_TRUE(server_side->Write(ToBytes("ack")).ok());
  std::string reply;
  for (int i = 0; i < 100 && reply.size() < 3; ++i) {
    auto chunk = client_side.value()->Read();
    ASSERT_TRUE(chunk.ok());
    reply += ToString(chunk.value());
    if (reply.size() < 3) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(reply, "ack");
}

TEST(Tcp, AcceptTimesOut) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  auto accepted = listener.value()->Accept(10);
  EXPECT_FALSE(accepted.ok());
}

TEST(Pump, DrivesHandshakeOverInMemoryTransport) {
  TransportPair pair = MakeInMemoryPair();
  http2::Connection::Options options;
  options.local_settings.set_gen_ability(http2::kGenAbilityFull);
  http2::Connection client(http2::Connection::Role::kClient, options);
  http2::Connection server(http2::Connection::Role::kServer, options);
  client.StartHandshake();
  server.StartHandshake();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(PumpUntilQuiet(client, *pair.first).ok());
    ASSERT_TRUE(PumpUntilQuiet(server, *pair.second).ok());
  }
  EXPECT_TRUE(client.generative_mode());
  EXPECT_TRUE(server.generative_mode());
}

TEST(DirectLink, QuiescesWithoutTraffic) {
  http2::Connection client(http2::Connection::Role::kClient, {});
  http2::Connection server(http2::Connection::Role::kServer, {});
  // No handshake started: nothing to exchange, must not loop forever.
  DirectLinkExchange(client, server);
  SUCCEED();
}

}  // namespace
}  // namespace sww::net
