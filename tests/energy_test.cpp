// Tests for the energy/timing module — this is where the paper's Table 1,
// Table 2 and §6.4 numbers are pinned down.
#include <gtest/gtest.h>

#include "energy/carbon.hpp"
#include "energy/device.hpp"
#include "energy/network.hpp"
#include "genai/model_specs.hpp"

namespace sww::energy {
namespace {

genai::ImageModelSpec Sd3() {
  return genai::FindImageModel(genai::kSd3Medium).value();
}
genai::TextModelSpec R1_8b() {
  return genai::FindTextModel(genai::kDeepseek8b).value();
}

// --- Table 1: time per step at 224² ------------------------------------------

TEST(Table1, TimePerStepMatchesPaper) {
  struct Row {
    std::string_view model;
    double laptop, workstation;
  };
  const Row rows[] = {
      {genai::kSd21, 0.18, 0.02},
      {genai::kSd3Medium, 0.38, 0.05},
      {genai::kSd35Medium, 0.59, 0.06},
  };
  for (const Row& row : rows) {
    const auto spec = genai::FindImageModel(row.model).value();
    EXPECT_DOUBLE_EQ(TimePerStep224(Laptop(), spec), row.laptop) << row.model;
    EXPECT_DOUBLE_EQ(TimePerStep224(Workstation(), spec), row.workstation)
        << row.model;
  }
}

TEST(Table1, Dalle3HasNoClientSideTiming) {
  const auto dalle = genai::FindImageModel(genai::kDalle3).value();
  EXPECT_EQ(TimePerStep224(Laptop(), dalle), 0.0);
  EXPECT_EQ(ImageGenerationSeconds(Laptop(), dalle, 15, 512, 512), 0.0);
}

TEST(Table1, Sd3FasterThanSd35AsPaperNotes) {
  // "Generation time also sets apart SD 3 from SD 3.5, as it is 35% faster
  // on a laptop and 13% faster on the workstation."
  const auto sd3 = genai::FindImageModel(genai::kSd3Medium).value();
  const auto sd35 = genai::FindImageModel(genai::kSd35Medium).value();
  EXPECT_NEAR(1.0 - TimePerStep224(Laptop(), sd3) / TimePerStep224(Laptop(), sd35),
              0.35, 0.02);
  EXPECT_NEAR(1.0 - TimePerStep224(Workstation(), sd3) /
                        TimePerStep224(Workstation(), sd35),
              0.13, 0.05);
}

// --- Table 2: generation time & energy ----------------------------------------

struct Table2Row {
  int size;          // square images
  double laptop_s, laptop_wh, workstation_s, workstation_wh;
};

class Table2Images : public ::testing::TestWithParam<Table2Row> {};

TEST_P(Table2Images, TimeAndEnergyReproduce) {
  const Table2Row& row = GetParam();
  const auto sd3 = Sd3();
  const double laptop_s =
      ImageGenerationSeconds(Laptop(), sd3, 15, row.size, row.size);
  const double ws_s =
      ImageGenerationSeconds(Workstation(), sd3, 15, row.size, row.size);
  EXPECT_NEAR(laptop_s, row.laptop_s, row.laptop_s * 0.06);
  EXPECT_NEAR(ws_s, row.workstation_s, row.workstation_s * 0.06);
  const double laptop_wh =
      ImageGenerationEnergyWh(Laptop(), sd3, 15, row.size, row.size);
  const double ws_wh =
      ImageGenerationEnergyWh(Workstation(), sd3, 15, row.size, row.size);
  EXPECT_NEAR(laptop_wh, row.laptop_wh, row.laptop_wh * 0.25);
  EXPECT_NEAR(ws_wh, row.workstation_wh, row.workstation_wh * 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table2Images,
    ::testing::Values(Table2Row{256, 7.0, 0.02, 1.0, 0.04},
                      Table2Row{512, 19.0, 0.05, 1.7, 0.06},
                      Table2Row{1024, 310.0, 0.90, 6.2, 0.21}));

TEST(Table2, TextRowReproduces) {
  // 250-word text block: laptop 32 s / 0.01 Wh; workstation 13 s / 0.51 Wh.
  const auto model = R1_8b();
  EXPECT_NEAR(TextGenerationSeconds(Laptop(), model, 250), 32.0, 1.5);
  EXPECT_NEAR(TextGenerationSeconds(Workstation(), model, 250), 13.0, 0.5);
  EXPECT_NEAR(TextGenerationEnergyWh(Laptop(), model, 250), 0.01, 0.003);
  EXPECT_NEAR(TextGenerationEnergyWh(Workstation(), model, 250), 0.51, 0.05);
}

// --- §6.3.1 scaling behaviours --------------------------------------------------

TEST(Scaling, TimeIsLinearInSteps) {
  const auto sd3 = Sd3();
  const double t15 = ImageGenerationSeconds(Workstation(), sd3, 15, 512, 512);
  const double t30 = ImageGenerationSeconds(Workstation(), sd3, 30, 512, 512);
  const double t60 = ImageGenerationSeconds(Workstation(), sd3, 60, 512, 512);
  const double overhead = Workstation().encoder_overhead_s;
  EXPECT_NEAR((t30 - overhead) / (t15 - overhead), 2.0, 0.01);
  EXPECT_NEAR((t60 - overhead) / (t30 - overhead), 2.0, 0.01);
}

TEST(Scaling, LaptopBlowsUpBeyond512) {
  // "on the laptop it grows significantly beyond [pixel-proportional] for
  // images of 1024×1024, reaching 310 seconds" — attention splitting.
  const auto sd3 = Sd3();
  const double laptop_512 = ImageGenerationSeconds(Laptop(), sd3, 15, 512, 512);
  const double laptop_1024 =
      ImageGenerationSeconds(Laptop(), sd3, 15, 1024, 1024);
  const double ws_512 = ImageGenerationSeconds(Workstation(), sd3, 15, 512, 512);
  const double ws_1024 =
      ImageGenerationSeconds(Workstation(), sd3, 15, 1024, 1024);
  // Pixel count grows 4×; workstation time grows < 4×, laptop ≫ 4×.
  EXPECT_LT(ws_1024 / ws_512, 4.0);
  EXPECT_GT(laptop_1024 / laptop_512, 8.0);
}

TEST(Scaling, TextLengthDependenceIsWeakAndNonMonotonic) {
  // "50 words text takes longer than 100 and 150 words text for three of
  // the models" — the R1 family; Llama is monotonic.
  for (std::string_view name :
       {genai::kDeepseek15b, genai::kDeepseek8b, genai::kDeepseek14b}) {
    const auto model = genai::FindTextModel(name).value();
    const double t50 = TextGenerationSeconds(Workstation(), model, 50);
    const double t100 = TextGenerationSeconds(Workstation(), model, 100);
    const double t150 = TextGenerationSeconds(Workstation(), model, 150);
    EXPECT_GT(t50, t100) << name;
    EXPECT_GT(t50, t150) << name;
  }
  const auto llama = genai::FindTextModel(genai::kLlama32).value();
  EXPECT_LT(TextGenerationSeconds(Workstation(), llama, 50),
            TextGenerationSeconds(Workstation(), llama, 150));
}

TEST(Scaling, TextWorkstationBenefitIsAbout2point5x) {
  // "The performance benefit of running on a workstation is only 2.5×."
  for (const auto& spec : genai::TextModels()) {
    const double ratio = TextGenerationSeconds(Laptop(), spec, 150) /
                         TextGenerationSeconds(Workstation(), spec, 150);
    EXPECT_NEAR(ratio, 2.4, 0.25) << spec.name;
  }
}

TEST(Scaling, TextTimesInPaperBands) {
  // Workstation 6.98–14.33 s; laptop 16.06–34.04 s across models/lengths.
  for (const auto& spec : genai::TextModels()) {
    for (int words : {50, 100, 150, 250}) {
      const double ws = TextGenerationSeconds(Workstation(), spec, words);
      const double laptop = TextGenerationSeconds(Laptop(), spec, words);
      EXPECT_GE(ws, 5.0) << spec.name << " " << words;
      EXPECT_LE(ws, 15.0) << spec.name << " " << words;
      EXPECT_GE(laptop, 12.0) << spec.name << " " << words;
      EXPECT_LE(laptop, 35.0) << spec.name << " " << words;
    }
  }
}

// --- §6.4: network, energy comparison, carbon ----------------------------------

TEST(Network, LargeImageTransmissionTakesAboutTenMilliseconds) {
  // "sending a large image on a typical 100Mbps link would take about ten
  // milliseconds."
  EXPECT_NEAR(TransmissionSeconds(131072), 0.0105, 0.0005);
}

TEST(Network, WorkstationGenerationIs620xTransmission) {
  const double transmit = TransmissionSeconds(131072);
  const double generate =
      ImageGenerationSeconds(Workstation(), Sd3(), 15, 1024, 1024);
  EXPECT_NEAR(generate / transmit, 620.0, 40.0);
}

TEST(Network, TransmissionEnergyMatchesTelefonicaFigure) {
  // "a large image would cost roughly 0.005Wh to transmit, 2.5% of current
  // workstation generation."
  const double transmit_wh = TransmissionEnergyWh(131072);
  EXPECT_NEAR(transmit_wh, 0.005, 0.0003);
  const double generate_wh =
      ImageGenerationEnergyWh(Workstation(), Sd3(), 15, 1024, 1024);
  EXPECT_NEAR(transmit_wh / generate_wh, 0.025, 0.006);
}

TEST(Network, FleetModelShrinksExabytesToTensOfPetabytes) {
  // §7: 2-3 EB/month at ~100× compression → tens of PB/month.
  FleetTraffic fleet;
  const double pb = fleet.CompressedPetabytesPerMonth();
  EXPECT_GE(pb, 10.0);
  EXPECT_LE(pb, 50.0);
  EXPECT_GT(fleet.MonthlyEnergySavingsMWh(), 0.0);
}

TEST(Carbon, SsdEmbodiedCarbonPerTerabyte) {
  // "6-7 kgCO2e per terabyte of SSD."
  EXPECT_GE(kSsdKgCo2PerTB, 6.0);
  EXPECT_LE(kSsdKgCo2PerTB, 7.0);
  EXPECT_NEAR(EmbodiedCarbonKg(2e12), 13.0, 0.5);
}

TEST(Carbon, ExabyteScaleSavingsAreMillionsOfKg) {
  // "With exabyte scale storage, even modest compression can save millions
  // of kgCO2e."
  const double saved = CarbonSavedKg(/*terabytes=*/1e6, /*factor=*/3.0);
  EXPECT_GT(saved, 1e6);
}

TEST(Carbon, NoSavingsWithoutCompression) {
  EXPECT_DOUBLE_EQ(CarbonSavedKg(1000, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(CarbonSavedKg(1000, 0.5), 0.0);
}

TEST(Carbon, OperationalCarbonConversion) {
  EXPECT_NEAR(OperationalCarbonGrams(1000.0), 436.0, 1.0);
}

// --- device profiles -------------------------------------------------------------

TEST(Devices, ProfilesMatchPaperHardwareShape) {
  EXPECT_TRUE(Laptop().attention_splitting);
  EXPECT_FALSE(Workstation().attention_splitting);
  EXPECT_GT(Workstation().image_power_w, Laptop().image_power_w);
  EXPECT_GT(Laptop().pixel_exponent, Workstation().pixel_exponent);
}

}  // namespace
}  // namespace sww::energy
