// Tests for the text-expansion substrate and its §6.3.2 behaviours.
#include <gtest/gtest.h>

#include "genai/llm.hpp"
#include "metrics/sbert.hpp"
#include "metrics/stats.hpp"
#include "util/strings.hpp"

namespace sww::genai {
namespace {

const std::vector<std::string> kBullets = {
    "high mountain trail crosses three valleys",
    "spring season best, mild weather, long days",
    "pack light, carry water, start before sunrise",
    "huts available, booking recommended"};

TextModel Model(std::string_view name) {
  return TextModel(FindTextModel(name).value());
}

TEST(TextModel, DeterministicForSameSeed) {
  TextModel model = Model(kDeepseek8b);
  auto a = model.ExpandBullets(kBullets, 150, 3);
  auto b = model.ExpandBullets(kBullets, 150, 3);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().text, b.value().text);
}

TEST(TextModel, SeedVariesOutput) {
  TextModel model = Model(kDeepseek8b);
  EXPECT_NE(model.ExpandBullets(kBullets, 150, 3).value().text,
            model.ExpandBullets(kBullets, 150, 4).value().text);
}

TEST(TextModel, InvalidInputsRejected) {
  TextModel model = Model(kDeepseek8b);
  EXPECT_FALSE(model.ExpandBullets(kBullets, 0, 1).ok());
  EXPECT_FALSE(model.ExpandBullets({}, 100, 1).ok());
}

class WordTargetSweep : public ::testing::TestWithParam<int> {};

TEST_P(WordTargetSweep, OvershootWithinPaperBound) {
  // §6.3.2: "The overshoot in length reaches 20%" — never beyond.
  TextModel model = Model(kDeepseek8b);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto result = model.ExpandBullets(kBullets, GetParam(), seed);
    ASSERT_TRUE(result.ok());
    const double overshoot = std::abs(metrics::WordOvershootPercent(
        GetParam(), result.value().actual_words));
    EXPECT_LE(overshoot, 25.0) << "seed " << seed;  // 20% target + sentence
                                                    // granularity slack
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, WordTargetSweep,
                         ::testing::Values(50, 100, 150, 250));

TEST(TextModel, OvershootDistributionMatchesPaperShape) {
  // Mean near a small positive bias; IQR frequently above 10% for the
  // noisier models.
  TextModel noisy = Model(kDeepseek15b);
  std::vector<double> overshoots;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    auto result = noisy.ExpandBullets(kBullets, 150, seed);
    overshoots.push_back(metrics::WordOvershootPercent(
        150, result.value().actual_words));
  }
  const metrics::Summary summary = metrics::Summarize(overshoots);
  EXPECT_LT(std::abs(summary.mean), 8.0);
  EXPECT_GT(summary.p75 - summary.p25, 8.0);
  EXPECT_LE(summary.max, 25.0);
}

TEST(TextModel, BetterModelControlsLengthTighter) {
  auto spread = [](std::string_view name) {
    TextModel model = TextModel(FindTextModel(name).value());
    std::vector<double> overshoots;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
      auto result = model.ExpandBullets(kBullets, 150, seed);
      overshoots.push_back(std::abs(metrics::WordOvershootPercent(
          150, result.value().actual_words)));
    }
    return metrics::Summarize(overshoots).mean;
  };
  EXPECT_LT(spread(kDeepseek8b), spread(kDeepseek15b));
}

TEST(TextModel, SbertScoresLandInPaperBand) {
  // §6.3.2: "All the models achieve SBERT mean scores ranging from 0.82 to
  // 0.91."
  for (const TextModelSpec& spec : TextModels()) {
    TextModel model(spec);
    double sum = 0.0;
    const int n = 10;
    for (int i = 0; i < n; ++i) {
      auto result = model.ExpandBullets(kBullets, 150, 100 + i);
      sum += metrics::SbertScore(kBullets, result.value().text);
    }
    const double mean = sum / n;
    EXPECT_GE(mean, 0.80) << spec.name;
    EXPECT_LE(mean, 0.93) << spec.name;
  }
}

TEST(TextModel, Deepseek8bHasConsistentlyHighSbert) {
  // The paper's model of choice "has a consistently high SBERT score ...
  // compared to smaller models like DeepSeek R1 1.5B."
  TextModel big = Model(kDeepseek8b);
  TextModel small = Model(kDeepseek15b);
  double big_sum = 0.0, small_sum = 0.0;
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    big_sum += metrics::SbertScore(
        kBullets, big.ExpandBullets(kBullets, 150, 200 + i).value().text);
    small_sum += metrics::SbertScore(
        kBullets, small.ExpandBullets(kBullets, 150, 200 + i).value().text);
  }
  EXPECT_GT(big_sum / n, small_sum / n);
}

TEST(TextModel, CarriedFractionTracksFidelity) {
  TextModel model = Model(kDeepseek8b);
  double carried = 0.0;
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    carried += model.ExpandBullets(kBullets, 200, i).value().carried_fraction;
  }
  EXPECT_NEAR(carried / n, model.spec().fidelity, 0.12);
}

TEST(TextModel, ExpansionContainsSourceContentWords) {
  TextModel model = Model(kDeepseek14b);
  auto result = model.ExpandBullets({"glacier valley waterfall"}, 80, 5);
  const std::string lowered = util::ToLower(result.value().text);
  int present = 0;
  for (const char* word : {"glacier", "valley", "waterfall"}) {
    if (lowered.find(word) != std::string::npos) ++present;
  }
  EXPECT_GE(present, 2);
}

TEST(TextModel, ExpandPromptSingleBullet) {
  TextModel model = Model(kLlama32);
  auto result = model.ExpandPrompt("coastal lighthouse storm", 60, 8);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().actual_words, 40);
}

TEST(TextModel, SummarizeToBulletsKeepsContentWords) {
  TextModel model = Model(kDeepseek8b);
  const auto bullets = model.SummarizeToBullets(
      "The regional council approved the coastal transit line. Construction "
      "begins in the autumn. The budget stands at two hundred million.");
  ASSERT_EQ(bullets.size(), 3u);
  EXPECT_NE(bullets[0].find("council"), std::string::npos);
  EXPECT_NE(bullets[1].find("autumn"), std::string::npos);
  EXPECT_NE(bullets[2].find("budget"), std::string::npos);
  // Stop words are stripped — bullets are terse.
  EXPECT_EQ(bullets[0].find(" the "), std::string::npos);
}

TEST(TextModel, SummarizeRespectsMaxBullets) {
  TextModel model = Model(kDeepseek8b);
  std::string text;
  for (int i = 0; i < 20; ++i) text += "Sentence number " + std::to_string(i) + ". ";
  EXPECT_LE(model.SummarizeToBullets(text, 5).size(), 5u);
}

TEST(TextModel, RoundTripSummarizeExpandPreservesSemantics) {
  // The full conversion cycle of §4.2: prose → bullets → regenerated prose
  // must stay semantically close to the source.
  TextModel model = Model(kDeepseek8b);
  const std::string original =
      "The high trail crosses three valleys with mountain huts. Spring "
      "brings mild weather and long days. Hikers pack light and carry "
      "water, starting before sunrise.";
  const auto bullets = model.SummarizeToBullets(original);
  ASSERT_FALSE(bullets.empty());
  auto expanded = model.ExpandBullets(bullets, 60, 9);
  ASSERT_TRUE(expanded.ok());
  EXPECT_GT(metrics::SbertScore(original, expanded.value().text), 0.6);
}

TEST(WordBank, StopWordDetection) {
  EXPECT_TRUE(IsStopWord("the"));
  EXPECT_TRUE(IsStopWord("and"));
  EXPECT_FALSE(IsStopWord("mountain"));
}

}  // namespace
}  // namespace sww::genai
