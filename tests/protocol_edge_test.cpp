// Edge-case and property sweeps across the protocol and model layers:
// behaviours with thinner coverage in the per-module suites.
#include <gtest/gtest.h>

#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "energy/device.hpp"
#include "hpack/hpack.hpp"
#include "html/generated_content.hpp"
#include "html/parser.hpp"
#include "http2/connection.hpp"
#include "net/pump.hpp"
#include "video/streaming.hpp"

namespace sww {
namespace {

// --- http2 edge cases -----------------------------------------------------------

http2::Connection::Options WithAbility() {
  http2::Connection::Options options;
  options.local_settings.set_gen_ability(http2::kGenAbilityFull);
  return options;
}

struct Pair {
  http2::Connection client{http2::Connection::Role::kClient, WithAbility()};
  http2::Connection server{http2::Connection::Role::kServer, WithAbility()};
  void Handshake() {
    client.StartHandshake();
    server.StartHandshake();
    net::DirectLinkExchange(client, server);
  }
};

TEST(Http2Edge, InitialWindowSizeChangeAdjustsOpenStreams) {
  Pair pair;
  pair.Handshake();
  hpack::HeaderList request = {{":method", "GET", false},
                               {":scheme", "https", false},
                               {":path", "/", false}};
  ASSERT_TRUE(pair.client.SubmitRequest(request, {}).ok());
  net::DirectLinkExchange(pair.client, pair.server);

  // Server queues a body larger than the default 64 kB stream window
  // minus what the shrunken window will allow.
  const http2::Stream* before = pair.server.FindStream(1);
  ASSERT_NE(before, nullptr);

  // Client shrinks INITIAL_WINDOW_SIZE mid-connection (RFC 9113 §6.9.2:
  // the delta applies to all existing streams' send windows).
  http2::Settings updated = pair.client.local_settings();
  updated.set_initial_window_size(1000);
  pair.client.UpdateLocalSettings(updated);
  net::DirectLinkExchange(pair.client, pair.server);

  ASSERT_TRUE(pair.server
                  .SubmitHeaders(1, {{":status", "200", false}}, false)
                  .ok());
  util::Bytes body(50000, 0x11);
  ASSERT_TRUE(pair.server.SubmitData(1, body, true).ok());
  // Without WINDOW_UPDATEs beyond the auto-replenish, data still arrives
  // in full: the client replenishes as it consumes.
  net::DirectLinkExchange(pair.client, pair.server, 512);
  const http2::Stream* stream = pair.client.FindStream(1);
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->body.size(), body.size());
}

TEST(Http2Edge, PrioritySelfDependencyGetsStreamReset) {
  Pair pair;
  pair.Handshake();
  hpack::HeaderList request = {{":method", "GET", false},
                               {":scheme", "https", false},
                               {":path", "/", false}};
  ASSERT_TRUE(pair.client.SubmitRequest(request, {}).ok());
  net::DirectLinkExchange(pair.client, pair.server);
  // PRIORITY frame depending on itself → stream error, not connection death.
  http2::PriorityPayload self{false, 1, 10};
  ASSERT_TRUE(pair.server
                  .Receive(http2::SerializeFrame(
                      http2::MakePriorityFrame(1, self)))
                  .ok());
  EXPECT_FALSE(pair.server.dead());
  net::DirectLinkExchange(pair.client, pair.server);
  bool reset = false;
  for (const auto& event : pair.client.TakeEvents()) {
    if (event.type == http2::Connection::Event::Type::kStreamReset) reset = true;
  }
  EXPECT_TRUE(reset);
}

TEST(Http2Edge, UnknownFrameTypeIgnored) {
  Pair pair;
  pair.Handshake();
  http2::Frame unknown;
  unknown.header.type = static_cast<http2::FrameType>(0x0c);
  unknown.header.stream_id = 0;
  unknown.payload = {1, 2, 3};
  EXPECT_TRUE(pair.server.Receive(http2::SerializeFrame(unknown)).ok());
  EXPECT_FALSE(pair.server.dead());
}

TEST(Http2Edge, WindowUpdateOverflowIsFlowControlError) {
  Pair pair;
  pair.Handshake();
  // Two 2^30 connection-level increments exceed 2^31-1 (the default
  // 65,535 window leaves room for exactly one).
  const util::Bytes update = http2::SerializeFrame(
      http2::MakeWindowUpdateFrame(0, 0x40000000u));
  ASSERT_TRUE(pair.server.Receive(update).ok());
  auto status = pair.server.Receive(update);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(pair.server.dead());
}

TEST(Http2Edge, SettingsAreStickyAcrossReAdvertisement) {
  Pair pair;
  pair.Handshake();
  // Re-advertising an unrelated setting must not reset gen_ability on the
  // peer (settings are sticky; only sent entries change).
  http2::Settings updated = pair.server.local_settings();
  updated.set_max_concurrent_streams(55);
  pair.server.UpdateLocalSettings(updated);
  net::DirectLinkExchange(pair.client, pair.server);
  EXPECT_TRUE(pair.client.generative_mode());
  EXPECT_EQ(pair.client.remote_settings().max_concurrent_streams(), 55u);
}

// --- hpack sweep -------------------------------------------------------------------

class HpackTableSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HpackTableSizes, RoundTripUnderTablePressure) {
  hpack::Encoder encoder(GetParam());
  hpack::Decoder decoder(4096);
  encoder.SetMaxTableSize(GetParam());
  for (int round = 0; round < 20; ++round) {
    hpack::HeaderList headers = {
        {":method", "GET", false},
        {":path", "/page/" + std::to_string(round), false},
        {"x-round", std::to_string(round), false},
        {"x-repeat", "constant-value", false},
    };
    auto decoded = decoder.DecodeBlock(encoder.EncodeBlock(headers));
    ASSERT_TRUE(decoded.ok()) << "round " << round;
    ASSERT_EQ(decoded.value().size(), headers.size());
    for (std::size_t i = 0; i < headers.size(); ++i) {
      EXPECT_EQ(decoded.value()[i].name, headers[i].name);
      EXPECT_EQ(decoded.value()[i].value, headers[i].value);
    }
  }
  EXPECT_LE(encoder.table().size_bytes(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, HpackTableSizes,
                         ::testing::Values(0, 64, 256, 4096));

// --- energy monotonicity properties ---------------------------------------------------

class PixelSweep : public ::testing::TestWithParam<int> {};

TEST_P(PixelSweep, TimeAndEnergyIncreaseWithSize) {
  const auto sd3 = genai::FindImageModel(genai::kSd3Medium).value();
  const int size = GetParam();
  const int larger = size + 128;
  for (const energy::DeviceProfile* device :
       {&energy::Laptop(), &energy::Workstation()}) {
    EXPECT_LT(energy::ImageGenerationSeconds(*device, sd3, 15, size, size),
              energy::ImageGenerationSeconds(*device, sd3, 15, larger, larger));
    EXPECT_LT(energy::ImageGenerationEnergyWh(*device, sd3, 15, size, size),
              energy::ImageGenerationEnergyWh(*device, sd3, 15, larger, larger));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PixelSweep,
                         ::testing::Values(128, 256, 512, 896));

TEST(EnergyEdge, UpscaleIsFarCheaperThanGeneration) {
  const auto sd3 = genai::FindImageModel(genai::kSd3Medium).value();
  for (const energy::DeviceProfile* device :
       {&energy::Laptop(), &energy::Workstation()}) {
    const double generate =
        energy::ImageGenerationSeconds(*device, sd3, 15, 1024, 1024);
    const double upscale = energy::UpscaleSeconds(*device, 1024, 1024);
    EXPECT_LT(upscale, 1.0);        // §2.2: sub-second
    EXPECT_LT(upscale * 10, generate);
  }
}

// --- video monotonicity ------------------------------------------------------------------

TEST(VideoEdge, RatesMonotoneInFpsAndResolution) {
  for (video::Resolution resolution :
       {video::Resolution::k480p, video::Resolution::kHD,
        video::Resolution::k4K}) {
    EXPECT_LT(video::GigabytesPerHour(resolution, 30),
              video::GigabytesPerHour(resolution, 60));
  }
  for (int fps : {30, 60}) {
    EXPECT_LT(video::GigabytesPerHour(video::Resolution::k480p, fps),
              video::GigabytesPerHour(video::Resolution::kHD, fps));
    EXPECT_LT(video::GigabytesPerHour(video::Resolution::kHD, fps),
              video::GigabytesPerHour(video::Resolution::k4K, fps));
  }
}

// --- food menu workload ---------------------------------------------------------------------

TEST(FoodMenu, AlmostEverythingIsGeneratable) {
  const core::FoodMenuPage menu = core::MakeFoodMenuPage(8);
  auto doc = html::ParseDocument(menu.html);
  ASSERT_TRUE(doc.ok());
  auto extraction = html::ExtractGeneratedContent(*doc.value());
  EXPECT_TRUE(extraction.errors.empty());
  // 8 dishes × (photo + blurb) + 1 stock banner.
  EXPECT_EQ(extraction.specs.size(), 17u);
  // No conventional media remain.
  EXPECT_TRUE(doc.value()->FindByTag("img").empty());
}

TEST(FoodMenu, ServesAndRegeneratesEndToEnd) {
  core::ContentStore store;
  const core::FoodMenuPage menu = core::MakeFoodMenuPage(4);
  ASSERT_TRUE(store.AddPage("/menu", menu.html).ok());
  core::LocalSession::Options options;
  options.client.generator.inference_steps = 4;
  auto session = core::LocalSession::Start(&store, options);
  auto fetch = session.value()->FetchPage("/menu");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().mode, "generative");
  EXPECT_EQ(fetch.value().generated_items, 9u);  // 4×2 + banner
  // Blurbs rendered as text.
  EXPECT_NE(fetch.value().final_html.find("<p>"), std::string::npos);
  // The page is small on the wire despite 5 images + 4 blurbs.
  EXPECT_LT(fetch.value().page_bytes, 6000u);
}

TEST(FoodMenu, DeterministicAcrossClients) {
  // The déjà-vu property, literally: two different users regenerate the
  // same menu bytes from the same prompts.
  core::ContentStore store;
  ASSERT_TRUE(store.AddPage("/menu", core::MakeFoodMenuPage(3).html).ok());
  auto a = core::LocalSession::Start(&store, {});
  auto b = core::LocalSession::Start(&store, {});
  auto fetch_a = a.value()->FetchPage("/menu");
  auto fetch_b = b.value()->FetchPage("/menu");
  ASSERT_TRUE(fetch_a.ok());
  ASSERT_TRUE(fetch_b.ok());
  EXPECT_EQ(fetch_a.value().files, fetch_b.value().files);
  EXPECT_EQ(fetch_a.value().final_html, fetch_b.value().final_html);
}

}  // namespace
}  // namespace sww
