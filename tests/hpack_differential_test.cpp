// hpack_differential_test.cpp — randomized differential suite for the
// wire-path fast lanes.
//
// Every fast lane introduced for performance keeps its original, simple
// implementation as an oracle:
//   * Huffman FSM decoder        vs the bit-at-a-time trie walk
//   * wide-accumulator encoder   vs a per-byte reference encoder (in-test)
//   * static-table perfect hash  vs the linear scan over RFC 7541 App. A
//   * ring-buffer dynamic table  vs a deque-of-entries reference model
//   * arena frame serialization  vs SerializeFrame
// The suites drive each pair with thousands of seeded random inputs —
// valid, corrupted, and truncated — and require byte-identical results.
// Seeds are fixed so failures reproduce exactly.
#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hpack/dynamic_table.hpp"
#include "hpack/huffman.hpp"
#include "hpack/static_table.hpp"
#include "http2/frame.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace {

using namespace sww;
using hpack::DynamicTable;
using util::Bytes;
using util::BytesView;

std::string RandomString(util::Rng& rng, std::size_t max_len) {
  std::string out;
  const std::size_t len = rng.NextIndex(max_len + 1);
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    // Mix of common header octets and arbitrary bytes, so both the short
    // 5-bit codes and the long 20+-bit codes get exercised.
    if (rng.NextBool(0.7)) {
      static constexpr std::string_view kCommon =
          "abcdefghijklmnopqrstuvwxyz0123456789-_.:/=%&?";
      out.push_back(kCommon[rng.NextIndex(kCommon.size())]);
    } else {
      out.push_back(static_cast<char>(rng.NextBounded(256)));
    }
  }
  return out;
}

/// The original encoder shape: one symbol at a time, pushing each
/// completed byte — the oracle for the wide-accumulator fast lane.
void ReferenceHuffmanEncode(std::string_view text, Bytes& out) {
  std::uint64_t accumulator = 0;
  int bit_count = 0;
  for (char c : text) {
    const hpack::HuffmanCode& code =
        hpack::CodeForSymbol(static_cast<unsigned char>(c));
    accumulator = (accumulator << code.length) | code.bits;
    bit_count += code.length;
    while (bit_count >= 8) {
      bit_count -= 8;
      out.push_back(static_cast<std::uint8_t>(accumulator >> bit_count));
    }
  }
  if (bit_count > 0) {
    const int pad = 8 - bit_count;
    accumulator = (accumulator << pad) | ((1u << pad) - 1);  // EOS prefix
    out.push_back(static_cast<std::uint8_t>(accumulator));
  }
}

// --- Huffman: FSM vs trie --------------------------------------------------

TEST(HuffmanDifferential, EncoderMatchesReferenceOnRandomStrings) {
  util::Rng rng(0x5157000000000001ULL);
  for (int i = 0; i < 10000; ++i) {
    const std::string text = RandomString(rng, 96);
    Bytes fast;
    hpack::HuffmanEncode(text, fast);
    Bytes reference;
    ReferenceHuffmanEncode(text, reference);
    ASSERT_EQ(fast, reference) << "iteration " << i;
    ASSERT_EQ(fast.size(), hpack::HuffmanEncodedSize(text)) << "iteration " << i;
  }
}

TEST(HuffmanDifferential, FsmMatchesTrieOnRandomValidInput) {
  util::Rng rng(0x5157000000000002ULL);
  for (int i = 0; i < 10000; ++i) {
    const std::string text = RandomString(rng, 96);
    Bytes encoded;
    hpack::HuffmanEncode(text, encoded);
    auto fsm = hpack::HuffmanDecode(encoded);
    auto trie = hpack::HuffmanDecodeTrie(encoded);
    ASSERT_TRUE(fsm.ok()) << "iteration " << i;
    ASSERT_TRUE(trie.ok()) << "iteration " << i;
    ASSERT_EQ(fsm.value(), text) << "iteration " << i;
    ASSERT_EQ(fsm.value(), trie.value()) << "iteration " << i;
  }
}

TEST(HuffmanDifferential, FsmMatchesTrieOnRandomCorruptedInput) {
  util::Rng rng(0x5157000000000003ULL);
  int errors_seen = 0;
  for (int i = 0; i < 10000; ++i) {
    // Raw random bytes: mostly invalid encodings (walks through EOS, bad
    // padding, truncated codes) plus the occasional accidental valid one.
    Bytes blob(rng.NextIndex(48), 0);
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng.NextBounded(256));
    auto fsm = hpack::HuffmanDecode(blob);
    auto trie = hpack::HuffmanDecodeTrie(blob);
    ASSERT_EQ(fsm.ok(), trie.ok()) << "iteration " << i;
    if (fsm.ok()) {
      ASSERT_EQ(fsm.value(), trie.value()) << "iteration " << i;
    } else {
      ASSERT_EQ(fsm.error().message, trie.error().message) << "iteration " << i;
      ++errors_seen;
    }
  }
  EXPECT_GT(errors_seen, 1000);  // random blobs must actually exercise errors
}

TEST(HuffmanDifferential, FsmMatchesTrieOnTruncatedValidInput) {
  util::Rng rng(0x5157000000000004ULL);
  for (int i = 0; i < 2000; ++i) {
    const std::string text = RandomString(rng, 64);
    Bytes encoded;
    hpack::HuffmanEncode(text, encoded);
    if (encoded.empty()) continue;
    const std::size_t cut = rng.NextIndex(encoded.size());
    const BytesView prefix(encoded.data(), cut);
    auto fsm = hpack::HuffmanDecode(prefix);
    auto trie = hpack::HuffmanDecodeTrie(prefix);
    ASSERT_EQ(fsm.ok(), trie.ok()) << "iteration " << i;
    if (fsm.ok()) {
      ASSERT_EQ(fsm.value(), trie.value()) << "iteration " << i;
    } else {
      ASSERT_EQ(fsm.error().message, trie.error().message) << "iteration " << i;
    }
  }
}

TEST(HuffmanDifferential, ExplicitEosRejectedByBothDecoders) {
  // EOS is 30 ones followed by 2 more padding ones: 0xff 0xff 0xff 0xff.
  const Bytes eos = {0xff, 0xff, 0xff, 0xff};
  auto fsm = hpack::HuffmanDecode(eos);
  auto trie = hpack::HuffmanDecodeTrie(eos);
  ASSERT_FALSE(fsm.ok());
  ASSERT_FALSE(trie.ok());
  EXPECT_EQ(fsm.error().message, trie.error().message);
  EXPECT_EQ(fsm.error().message, "huffman: explicit EOS in data");
}

TEST(HuffmanDifferential, OverlongPaddingRejectedByBothDecoders) {
  // 'a' = 5 bits (00011); one full byte of ones after it is 8 bits of
  // padding — more than the 7 the RFC allows.
  Bytes encoded;
  hpack::HuffmanEncode("a", encoded);
  ASSERT_EQ(encoded.size(), 1u);
  encoded.push_back(0xff);
  auto fsm = hpack::HuffmanDecode(encoded);
  auto trie = hpack::HuffmanDecodeTrie(encoded);
  ASSERT_FALSE(fsm.ok());
  ASSERT_FALSE(trie.ok());
  EXPECT_EQ(fsm.error().message, trie.error().message);
  EXPECT_EQ(fsm.error().message, "huffman: padding longer than 7 bits");
}

TEST(HuffmanDifferential, NonOnesPaddingRejectedByBothDecoders) {
  // 'a' = 00011; zero padding to the byte boundary is not an EOS prefix.
  const Bytes encoded = {0x18};  // 00011000
  auto fsm = hpack::HuffmanDecode(encoded);
  auto trie = hpack::HuffmanDecodeTrie(encoded);
  ASSERT_FALSE(fsm.ok());
  ASSERT_FALSE(trie.ok());
  EXPECT_EQ(fsm.error().message, trie.error().message);
  EXPECT_EQ(fsm.error().message, "huffman: padding is not EOS prefix");
}

TEST(HuffmanDifferential, FsmTableInvariants) {
  const hpack::HuffmanFsmEntry* table = hpack::HuffmanFsmTable();
  ASSERT_NE(table, nullptr);
  // Entry flags describe the *destination* of each transition: every
  // non-failing transition back to the root must be accepting, no step may
  // emit more than 2 symbols (min code length is 5 bits), and the empty
  // input (never leaving the root) must decode to the empty string.
  for (std::size_t s = 0; s < hpack::kHuffmanFsmStates; ++s) {
    for (std::size_t b = 0; b < 256; ++b) {
      const hpack::HuffmanFsmEntry& e = table[(s << 8) | b];
      if ((e.flags & hpack::kHuffmanFsmFail) != 0) continue;
      if (e.next == 0) {
        EXPECT_NE(e.flags & hpack::kHuffmanFsmAccept, 0)
            << "state " << s << " byte " << b;
      }
      const unsigned emit = e.flags >> hpack::kHuffmanFsmEmitShift;
      EXPECT_LE(emit, 2u) << "state " << s << " byte " << b;
    }
  }
  auto empty = hpack::HuffmanDecode({});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value(), "");
}

// --- Static table: perfect hash vs linear scan -----------------------------

TEST(StaticTableDifferential, PerfectHashMatchesLinearOnAllEntries) {
  for (std::size_t index = 1; index <= hpack::kStaticTableSize; ++index) {
    auto entry = hpack::StaticTableEntry(index);
    ASSERT_TRUE(entry.ok());
    const std::string name(entry.value().name);
    const std::string value(entry.value().value);
    EXPECT_EQ(hpack::StaticTableFind(name, value),
              hpack::StaticTableFindLinear(name, value))
        << name << ": " << value;
    EXPECT_EQ(hpack::StaticTableFindName(name),
              hpack::StaticTableFindNameLinear(name))
        << name;
    // The linear scan is ground truth for which of the duplicate-name
    // entries is addressable (the first one).
    EXPECT_EQ(hpack::StaticTableFindName(name),
              hpack::StaticTableFindNameLinear(name));
  }
}

TEST(StaticTableDifferential, PerfectHashMatchesLinearOnNearMisses) {
  util::Rng rng(0x5157000000000005ULL);
  for (std::size_t index = 1; index <= hpack::kStaticTableSize; ++index) {
    auto entry = hpack::StaticTableEntry(index);
    ASSERT_TRUE(entry.ok());
    std::string name(entry.value().name);
    std::string value(entry.value().value);
    // Mutations that must all miss (or hit exactly what the scan hits):
    // changed value, flipped character, extended name, truncated name.
    const std::string wrong_value = value + "x";
    EXPECT_EQ(hpack::StaticTableFind(name, wrong_value),
              hpack::StaticTableFindLinear(name, wrong_value));
    std::string flipped = name;
    flipped[rng.NextIndex(flipped.size())] ^= 0x20;
    EXPECT_EQ(hpack::StaticTableFind(flipped, value),
              hpack::StaticTableFindLinear(flipped, value));
    EXPECT_EQ(hpack::StaticTableFindName(flipped),
              hpack::StaticTableFindNameLinear(flipped));
    const std::string extended = name + "-x";
    EXPECT_EQ(hpack::StaticTableFindName(extended),
              hpack::StaticTableFindNameLinear(extended));
    const std::string truncated = name.substr(0, name.size() - 1);
    EXPECT_EQ(hpack::StaticTableFindName(truncated),
              hpack::StaticTableFindNameLinear(truncated));
  }
}

TEST(StaticTableDifferential, PerfectHashMatchesLinearOnRandomProbes) {
  util::Rng rng(0x5157000000000006ULL);
  for (int i = 0; i < 10000; ++i) {
    const std::string name = RandomString(rng, 24);
    const std::string value = RandomString(rng, 24);
    ASSERT_EQ(hpack::StaticTableFind(name, value),
              hpack::StaticTableFindLinear(name, value))
        << "iteration " << i;
    ASSERT_EQ(hpack::StaticTableFindName(name),
              hpack::StaticTableFindNameLinear(name))
        << "iteration " << i;
  }
}

// --- Dynamic table: ring buffer vs reference deque model -------------------

/// Straight-line model of RFC 7541 §4: a deque, newest at the front, with
/// linear scans — the shape the ring-buffer table replaced.
class ReferenceDynamicTable {
 public:
  explicit ReferenceDynamicTable(std::size_t max_size) : max_size_(max_size) {}

  void Insert(const std::string& name, const std::string& value) {
    const std::size_t entry_size = name.size() + value.size() + 32;
    if (entry_size > max_size_) {
      entries_.clear();
      size_ = 0;
      return;
    }
    while (size_ + entry_size > max_size_) Evict();
    entries_.push_front({name, value});
    size_ += entry_size;
  }

  void SetMaxSize(std::size_t max_size) {
    max_size_ = max_size;
    while (size_ > max_size_) Evict();
  }

  std::size_t Find(const std::string& name, const std::string& value) const {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].first == name && entries_[i].second == value) return i;
    }
    return DynamicTable::npos;
  }

  std::size_t FindName(const std::string& name) const {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].first == name) return i;
    }
    return DynamicTable::npos;
  }

  const std::pair<std::string, std::string>& At(std::size_t i) const {
    return entries_[i];
  }
  std::size_t entry_count() const { return entries_.size(); }
  std::size_t size_bytes() const { return size_; }

 private:
  void Evict() {
    size_ -= entries_.back().first.size() + entries_.back().second.size() + 32;
    entries_.pop_back();
  }

  std::deque<std::pair<std::string, std::string>> entries_;
  std::size_t size_ = 0;
  std::size_t max_size_;
};

TEST(DynamicTableDifferential, RingBufferMatchesReferenceUnderRandomOps) {
  util::Rng rng(0x5157000000000007ULL);
  // A small name pool forces duplicate names (the interned index's hard
  // case) and frequent hits; random values force misses too.
  const std::vector<std::string> names = {"a", "bb", "ccc", "x-custom",
                                          "set-cookie", "content-type"};
  DynamicTable table(512);
  ReferenceDynamicTable reference(512);
  for (int i = 0; i < 10000; ++i) {
    const std::string& name = names[rng.NextIndex(names.size())];
    const std::string value = RandomString(rng, 24);
    const int op = static_cast<int>(rng.NextBounded(10));
    if (op < 6) {
      table.Insert(name, value);
      reference.Insert(name, value);
    } else if (op < 8) {
      ASSERT_EQ(table.Find(name, value), reference.Find(name, value))
          << "iteration " << i;
      ASSERT_EQ(table.FindName(name), reference.FindName(name))
          << "iteration " << i;
    } else if (op == 8 && reference.entry_count() > 0) {
      const std::size_t index = rng.NextIndex(reference.entry_count());
      ASSERT_EQ(table.At(index).name, reference.At(index).first);
      ASSERT_EQ(table.At(index).value, reference.At(index).second);
    } else {
      // Exercise evict-on-shrink and re-grow; occasionally shrink below a
      // single entry's overhead to force a full flush.
      const std::size_t new_max = rng.NextBool(0.1) ? 16 : 64 + rng.NextIndex(512);
      table.SetMaxSize(new_max);
      reference.SetMaxSize(new_max);
    }
    ASSERT_EQ(table.entry_count(), reference.entry_count()) << "iteration " << i;
    ASSERT_EQ(table.size_bytes(), reference.size_bytes()) << "iteration " << i;
    // Full-state audit every so often (O(n²) against the reference).
    if (i % 500 == 0) {
      for (std::size_t j = 0; j < reference.entry_count(); ++j) {
        ASSERT_EQ(table.At(j).name, reference.At(j).first) << "iteration " << i;
        ASSERT_EQ(table.At(j).value, reference.At(j).second) << "iteration " << i;
      }
    }
  }
}

TEST(DynamicTableDifferential, FindPrefersNewestAmongDuplicates) {
  DynamicTable table(4096);
  table.Insert("set-cookie", "a=1");
  table.Insert("set-cookie", "b=2");
  table.Insert("set-cookie", "a=1");  // duplicate of the oldest
  // Newest insertion of ("set-cookie", "a=1") is index 0.
  EXPECT_EQ(table.Find("set-cookie", "a=1"), 0u);
  EXPECT_EQ(table.Find("set-cookie", "b=2"), 1u);
  EXPECT_EQ(table.FindName("set-cookie"), 0u);
}

// --- Frame serialization: arena vs SerializeFrame --------------------------

TEST(FrameDifferential, AppendFrameMatchesSerializeFrame) {
  util::Rng rng(0x5157000000000008ULL);
  util::BytesArena arena;
  for (int i = 0; i < 2000; ++i) {
    http2::Frame frame;
    frame.header.type = static_cast<http2::FrameType>(rng.NextBounded(10));
    frame.header.flags = static_cast<std::uint8_t>(rng.NextBounded(256));
    frame.header.stream_id = static_cast<std::uint32_t>(rng.NextU64());
    frame.payload.resize(rng.NextIndex(256));
    for (auto& b : frame.payload) {
      b = static_cast<std::uint8_t>(rng.NextBounded(256));
    }
    const Bytes expected = http2::SerializeFrame(frame);

    arena.Clear();
    http2::FrameRef ref;
    ref.header = frame.header;
    ref.payload = BytesView(frame.payload);
    http2::AppendFrame(ref, arena);
    const BytesView got = arena.View();
    ASSERT_EQ(Bytes(got.begin(), got.end()), expected) << "iteration " << i;
  }
}

TEST(FrameDifferential, ArenaReachesSteadyStateZeroAllocations) {
  util::BytesArena arena;
  Bytes payload(1024, 0x42);
  http2::FrameRef ref;
  ref.header.type = http2::FrameType::kData;
  ref.header.stream_id = 1;
  ref.payload = BytesView(payload);
  // Warm up, then the same workload must stop allocating entirely.
  for (int i = 0; i < 8; ++i) {
    arena.Clear();
    for (int j = 0; j < 16; ++j) http2::AppendFrame(ref, arena);
  }
  const std::uint64_t warm = arena.allocations();
  for (int i = 0; i < 100; ++i) {
    arena.Clear();
    for (int j = 0; j < 16; ++j) http2::AppendFrame(ref, arena);
  }
  EXPECT_EQ(arena.allocations(), warm);
}

}  // namespace
