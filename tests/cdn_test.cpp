// Tests for the CDN substrate (§2.2's prompt-mode edge caching).
#include <gtest/gtest.h>

#include "cdn/simulator.hpp"

namespace sww::cdn {
namespace {

genai::ImageModelSpec Sd3() {
  return genai::FindImageModel(genai::kSd3Medium).value();
}
genai::TextModelSpec R1() {
  return genai::FindTextModel(genai::kDeepseek8b).value();
}

CatalogOptions SmallCatalog() {
  CatalogOptions options;
  options.item_count = 500;
  options.seed = 5;
  return options;
}

TEST(Catalog, SyntheticPopulationShape) {
  const Catalog catalog = Catalog::MakeSynthetic(SmallCatalog());
  EXPECT_EQ(catalog.size(), 500u);
  std::size_t unique = 0, text = 0;
  for (const CatalogItem& item : catalog.items()) {
    if (item.unique) ++unique;
    if (!item.is_image) ++text;
    EXPECT_GT(item.content_bytes, 0u);
    EXPECT_GT(item.prompt_bytes, 0u);
    // The prompt form is always (much) smaller than the content form.
    EXPECT_LT(item.prompt_bytes, item.content_bytes * 2);
  }
  EXPECT_NEAR(static_cast<double>(unique) / 500.0, 0.15, 0.06);
  EXPECT_NEAR(static_cast<double>(text) / 500.0, 0.25, 0.07);
}

TEST(Catalog, PromptModeStorageIsMuchSmaller) {
  const Catalog catalog = Catalog::MakeSynthetic(SmallCatalog());
  EXPECT_GT(catalog.TotalContentBytes(),
            catalog.TotalPromptModeBytes() * 5);
}

TEST(Catalog, ZipfSamplingIsSkewed) {
  const Catalog catalog = Catalog::MakeSynthetic(SmallCatalog());
  util::Rng rng(123);
  std::size_t head_hits = 0;
  const std::uint64_t draws = 20000;
  for (std::uint64_t i = 0; i < draws; ++i) {
    if (catalog.SampleRequest(rng) < 50) ++head_hits;  // top 10% of items
  }
  // Under Zipf(0.9) the head takes far more than its uniform 10% share.
  EXPECT_GT(static_cast<double>(head_hits) / draws, 0.35);
}

TEST(EdgeNode, LruHitMissEviction) {
  CatalogItem a{/*id=*/1, true, 256, 256, 0, 200, 8192, false, 1.0};
  CatalogItem b{/*id=*/2, true, 256, 256, 0, 200, 8192, false, 1.0};
  EdgeNode edge(EdgeMode::kContentMode, /*budget=*/10000, Sd3(), R1());
  edge.ServeRequest(a);                       // miss, cached
  edge.ServeRequest(a);                       // hit
  edge.ServeRequest(b);                       // miss, evicts a (8192+8192>10000)
  edge.ServeRequest(a);                       // miss again
  EXPECT_EQ(edge.stats().requests, 4u);
  EXPECT_EQ(edge.stats().hits, 1u);
  EXPECT_EQ(edge.stats().misses, 3u);
  EXPECT_GE(edge.stats().evictions, 1u);
  EXPECT_LE(edge.stored_bytes(), 10000u);
}

TEST(EdgeNode, PromptModeCachesPromptsAndGeneratesOnHit) {
  CatalogItem item{/*id=*/1, true, 512, 512, 0, 300, 32768, false, 1.0};
  EdgeNode edge(EdgeMode::kPromptMode, 1 << 20, Sd3(), R1());
  edge.ServeRequest(item);
  // Cached the 300-byte prompt, not the 32 kB image.
  EXPECT_EQ(edge.stored_bytes(), 300u);
  EXPECT_EQ(edge.stats().bytes_from_origin, 300u);
  // The user still received full content bytes.
  EXPECT_EQ(edge.stats().bytes_to_users, 32768u);
  // And the edge paid generation time/energy.
  EXPECT_GT(edge.stats().generation_seconds, 0.0);
  EXPECT_GT(edge.stats().generation_energy_wh, 0.0);
}

TEST(EdgeNode, UniqueItemsCachedAsContentInPromptMode) {
  CatalogItem item{/*id=*/9, true, 512, 512, 0, 300, 32768, /*unique=*/true, 1.0};
  EdgeNode edge(EdgeMode::kPromptMode, 1 << 20, Sd3(), R1());
  edge.ServeRequest(item);
  EXPECT_EQ(edge.stored_bytes(), 32768u);
  EXPECT_EQ(edge.stats().generation_seconds, 0.0);
}

TEST(EdgeNode, ContentModeNeverGenerates) {
  CatalogItem item{/*id=*/1, true, 512, 512, 0, 300, 32768, false, 1.0};
  EdgeNode edge(EdgeMode::kContentMode, 1 << 20, Sd3(), R1());
  edge.ServeRequest(item);
  edge.ServeRequest(item);
  EXPECT_EQ(edge.stats().generation_seconds, 0.0);
}

TEST(EdgeNode, ItemLargerThanBudgetPassesThrough) {
  CatalogItem huge{/*id=*/1, true, 4096, 4096, 0, 300, 2097152, true, 1.0};
  EdgeNode edge(EdgeMode::kContentMode, 1000, Sd3(), R1());
  edge.ServeRequest(huge);
  edge.ServeRequest(huge);
  EXPECT_EQ(edge.stats().hits, 0u);
  EXPECT_EQ(edge.stored_bytes(), 0u);
}

TEST(Simulator, ComparisonShowsPaperTradeoffs) {
  const Catalog catalog = Catalog::MakeSynthetic(SmallCatalog());
  SimulationOptions options;
  options.edge_count = 2;
  // A budget large enough to hold the requested working set: the paper's
  // storage claim is about bytes *needed*, not a fixed cache size.
  options.storage_budget_bytes = 64 << 20;
  options.request_count = 20000;
  const ComparisonResult result = RunComparison(catalog, options);

  // The paper's claim: prompt mode "maintains the storage benefits, but
  // loses data transmission benefits" — user bytes equal, storage smaller,
  // and edge generation energy appears.
  EXPECT_EQ(result.prompt_mode.total_user_bytes,
            result.content_mode.total_user_bytes);
  EXPECT_LT(result.prompt_mode.total_stored_bytes,
            result.content_mode.total_stored_bytes);
  EXPECT_GT(result.storage_ratio, 3.0);
  EXPECT_EQ(result.content_mode.generation_seconds, 0.0);
  EXPECT_GT(result.prompt_mode.generation_seconds, 0.0);
  EXPECT_GE(result.carbon_saved_kg, 0.0);
}

TEST(Simulator, PromptModeHasBetterHitRateUnderSameBudget) {
  // Prompts are tiny, so the same storage budget holds far more of the
  // catalog → fewer origin fetches.
  const Catalog catalog = Catalog::MakeSynthetic(SmallCatalog());
  SimulationOptions options;
  options.edge_count = 2;
  options.storage_budget_bytes = 256 << 10;  // deliberately tight
  options.request_count = 20000;
  const FleetResult content =
      RunFleet(catalog, EdgeMode::kContentMode, options);
  const FleetResult prompt = RunFleet(catalog, EdgeMode::kPromptMode, options);
  EXPECT_GT(prompt.hit_rate, content.hit_rate);
  EXPECT_LT(prompt.total_origin_bytes, content.total_origin_bytes);
}

TEST(Simulator, DeterministicForFixedSeed) {
  const Catalog catalog = Catalog::MakeSynthetic(SmallCatalog());
  SimulationOptions options;
  options.request_count = 5000;
  const FleetResult a = RunFleet(catalog, EdgeMode::kPromptMode, options);
  const FleetResult b = RunFleet(catalog, EdgeMode::kPromptMode, options);
  EXPECT_EQ(a.total_stored_bytes, b.total_stored_bytes);
  EXPECT_EQ(a.total_origin_bytes, b.total_origin_bytes);
  EXPECT_DOUBLE_EQ(a.hit_rate, b.hit_rate);
}

}  // namespace
}  // namespace sww::cdn
