// Tests for the image-side GenAI substrate: Image, embeddings, diffusion,
// upscaling, prompt inversion.
#include <gtest/gtest.h>

#include "genai/diffusion.hpp"
#include "genai/embedding.hpp"
#include "genai/image.hpp"
#include "genai/pipeline.hpp"
#include "genai/prompt_inversion.hpp"
#include "genai/upscaler.hpp"
#include "core/page_builder.hpp"
#include "metrics/clip.hpp"

namespace sww::genai {
namespace {

DiffusionModel Sd3() { return DiffusionModel(FindImageModel(kSd3Medium).value()); }

// --- Image -------------------------------------------------------------------

TEST(Image, PixelAccess) {
  Image image(4, 3);
  image.Set(2, 1, Pixel{10, 20, 30});
  const Pixel p = image.Get(2, 1);
  EXPECT_EQ(p.r, 10);
  EXPECT_EQ(p.g, 20);
  EXPECT_EQ(p.b, 30);
  EXPECT_EQ(image.pixel_count(), 12);
}

TEST(Image, LuminanceWeighting) {
  Image image(1, 1);
  image.Set(0, 0, Pixel{255, 255, 255});
  EXPECT_EQ(image.Luminance(0, 0), 255);
  image.Set(0, 0, Pixel{0, 255, 0});
  EXPECT_NEAR(image.Luminance(0, 0), 150, 2);  // green dominates
}

TEST(Image, MeanLuminanceClipsToBounds) {
  Image image(2, 2);
  image.Set(0, 0, Pixel{100, 100, 100});
  image.Set(1, 0, Pixel{200, 200, 200});
  image.Set(0, 1, Pixel{100, 100, 100});
  image.Set(1, 1, Pixel{200, 200, 200});
  EXPECT_NEAR(image.MeanLuminance(-5, -5, 10, 10), 150.0, 1.0);
  EXPECT_EQ(image.MeanLuminance(3, 3, 5, 5), 0.0);
}

TEST(Image, PpmRoundTrip) {
  Image image(5, 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 5; ++x) {
      image.Set(x, y, Pixel{static_cast<std::uint8_t>(x * 50),
                            static_cast<std::uint8_t>(y * 60), 7});
    }
  }
  auto parsed = Image::FromPpm(image.ToPpm());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().width(), 5);
  EXPECT_EQ(parsed.value().height(), 4);
  EXPECT_EQ(parsed.value().data(), image.data());
}

TEST(Image, PpmRejectsGarbage) {
  EXPECT_FALSE(Image::FromPpm("P5\n1 1\n255\nx").ok());
  EXPECT_FALSE(Image::FromPpm("P6\n2 2\n255\nxy").ok());  // truncated
  EXPECT_FALSE(Image::FromPpm("P6\n2 2\n65535\n").ok());
}

TEST(Image, TypicalCompressedBytesMatchesPaperSizes) {
  // Table 2's media sizes: 256²→8,192 B; 512²→32,768 B; 1024²→131,072 B.
  EXPECT_EQ(Image(256, 256).TypicalCompressedBytes(), 8192u);
  EXPECT_EQ(Image(512, 512).TypicalCompressedBytes(), 32768u);
  EXPECT_EQ(Image(1024, 1024).TypicalCompressedBytes(), 131072u);
}

// --- embedding space ---------------------------------------------------------

TEST(Embedding, TokenVectorsAreUnitAndDeterministic) {
  const Vec a = TokenEmbedding("mountain");
  const Vec b = TokenEmbedding("mountain");
  const Vec c = TokenEmbedding("Mountain");  // case folded
  EXPECT_NEAR(Norm(a), 1.0, 1e-9);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(Embedding, DistinctTokensNearlyOrthogonal) {
  const Vec a = TokenEmbedding("mountain");
  const Vec b = TokenEmbedding("goldfish");
  EXPECT_LT(std::abs(Cosine(a, b)), 0.45);
}

TEST(Embedding, TextEmbeddingIsNormalizedSum) {
  const Vec ab = TextEmbeddingOf("mountain lake");
  EXPECT_NEAR(Norm(ab), 1.0, 1e-9);
  EXPECT_GT(Cosine(ab, TokenEmbedding("mountain")), 0.4);
  EXPECT_GT(Cosine(ab, TokenEmbedding("lake")), 0.4);
}

TEST(Embedding, PlantAndRecoverRoundTrip) {
  // The core invariant behind the CLIP simulator: a planted semantic field
  // projects back to the planting embedding.
  const Vec text = TextEmbeddingOf("a misty mountain lake at dawn");
  const std::vector<double> field = SemanticField(text);
  Vec recovered = FieldToEmbedding(field);
  Normalize(recovered);
  // Recovery through 256 cells in a 64-dim space is near-exact up to
  // basis-sampling noise (~sqrt(d/cells)).
  EXPECT_GT(Cosine(text, recovered), 0.85);
}

// --- diffusion ----------------------------------------------------------------

TEST(Diffusion, DeterministicForSameInputs) {
  DiffusionModel model = Sd3();
  auto a = model.Generate("a pine forest", 64, 64, 15, 7);
  auto b = model.Generate("a pine forest", 64, 64, 15, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().image.data(), b.value().image.data());
}

TEST(Diffusion, SeedChangesOutput) {
  DiffusionModel model = Sd3();
  auto a = model.Generate("a pine forest", 64, 64, 15, 7);
  auto b = model.Generate("a pine forest", 64, 64, 15, 8);
  EXPECT_NE(a.value().image.data(), b.value().image.data());
}

TEST(Diffusion, RespectsRequestedDimensions) {
  DiffusionModel model = Sd3();
  auto result = model.Generate("x", 192, 144, 10, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().image.width(), 192);
  EXPECT_EQ(result.value().image.height(), 144);
}

TEST(Diffusion, InvalidArgumentsRejected) {
  DiffusionModel model = Sd3();
  EXPECT_FALSE(model.Generate("x", 0, 64, 15, 1).ok());
  EXPECT_FALSE(model.Generate("x", 64, -1, 15, 1).ok());
  EXPECT_FALSE(model.Generate("x", 64, 64, 0, 1).ok());
}

TEST(Diffusion, MoreStepsReduceResidualNoise) {
  DiffusionModel model = Sd3();
  const double residual_3 =
      model.Generate("x", 64, 64, 3, 1).value().info.residual_noise;
  const double residual_30 =
      model.Generate("x", 64, 64, 30, 1).value().info.residual_noise;
  EXPECT_GT(residual_3, residual_30);
}

TEST(Diffusion, HigherFidelityModelPlantsMoreSignal) {
  DiffusionModel sd21(FindImageModel(kSd21).value());
  DiffusionModel dalle(FindImageModel(kDalle3).value());
  const double plant_sd21 =
      sd21.Generate("x", 64, 64, 15, 1).value().info.plant_fidelity;
  const double plant_dalle =
      dalle.Generate("x", 64, 64, 15, 1).value().info.plant_fidelity;
  EXPECT_GT(plant_dalle, plant_sd21);
}

TEST(Diffusion, ClipScoreOrderingMatchesTable1) {
  // Table 1: SD 2.1 ≈ 0.19 < SD 3 ≈ 0.27 ≈ SD 3.5 < DALLE 3 ≈ 0.32;
  // random baseline ≈ 0.09.
  auto score_for = [](std::string_view name) {
    DiffusionModel model(FindImageModel(name).value());
    double sum = 0.0;
    const int n = 8;
    for (int i = 0; i < n; ++i) {
      const std::string prompt = core::MakeLandscapePrompt(500 + i);
      sum += metrics::ClipScore(
          prompt, model.Generate(prompt, 224, 224, 15, 40 + i).value().image);
    }
    return sum / n;
  };
  const double sd21 = score_for(kSd21);
  const double sd3 = score_for(kSd3Medium);
  const double sd35 = score_for(kSd35Medium);
  const double dalle = score_for(kDalle3);
  EXPECT_NEAR(sd21, 0.19, 0.04);
  EXPECT_NEAR(sd3, 0.27, 0.04);
  EXPECT_NEAR(sd35, 0.27, 0.04);
  EXPECT_NEAR(dalle, 0.32, 0.04);
  EXPECT_LT(sd21, sd3);
  EXPECT_LT(sd3, dalle);
}

TEST(Diffusion, RandomImageScoresAtFloor) {
  double sum = 0.0;
  for (int i = 0; i < 8; ++i) {
    sum += metrics::ClipScore(core::MakeLandscapePrompt(900 + i),
                              DiffusionModel::RandomImage(224, 224, i));
  }
  EXPECT_NEAR(sum / 8, 0.09, 0.03);
}

TEST(Diffusion, ClipScoreStableAcrossStepCounts) {
  // §6.3.1: steps 10→60 cause "only minor changes to CLIP score".
  DiffusionModel model = Sd3();
  const std::string prompt = "a coastal cliff above a calm sea";
  const double at_10 = metrics::ClipScore(
      prompt, model.Generate(prompt, 224, 224, 10, 3).value().image);
  const double at_60 = metrics::ClipScore(
      prompt, model.Generate(prompt, 224, 224, 60, 3).value().image);
  EXPECT_NEAR(at_10, at_60, 0.05);
}

// --- upscaler -----------------------------------------------------------------

TEST(Upscaler, ProducesRequestedSize) {
  DiffusionModel model = Sd3();
  const Image small = model.Generate("a harbor town", 64, 64, 15, 2).value().image;
  auto result = UpscaleBy(small, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().image.width(), 256);
  EXPECT_EQ(result.value().image.height(), 256);
}

TEST(Upscaler, PreservesSemantics) {
  // §2.2's upscale-only mode is only useful if enlarging does not destroy
  // the content: CLIP score must survive upscaling.
  DiffusionModel model = Sd3();
  const std::string prompt = "a harbor town at dusk, photograph";
  const Image small = model.Generate(prompt, 128, 128, 15, 2).value().image;
  const Image big = UpscaleBy(small, 4).value().image;
  const double score_small = metrics::ClipScore(prompt, small);
  const double score_big = metrics::ClipScore(prompt, big);
  EXPECT_NEAR(score_small, score_big, 0.03);
}

TEST(Upscaler, RejectsDownscaleAndEmpty) {
  Image image(32, 32);
  EXPECT_FALSE(Upscale(image, 16, 16, 1).ok());
  EXPECT_FALSE(Upscale(Image(), 16, 16, 1).ok());
  EXPECT_FALSE(UpscaleBy(image, 0).ok());
}

// --- prompt inversion -----------------------------------------------------------

TEST(PromptInversion, RecoversPlantedTokens) {
  DiffusionModel model(FindImageModel(kGpt4o).value());  // highest fidelity
  const Image image =
      model.Generate("a misty mountain lake with forest", 256, 256, 30, 5)
          .value()
          .image;
  PromptInverter inverter(PromptInverter::DefaultVocabulary());
  const auto tokens = inverter.RecoverTokens(image, 1.8);
  int recovered = 0;
  for (const std::string& token : tokens) {
    if (token == "mountain" || token == "lake" || token == "forest" ||
        token == "misty") {
      ++recovered;
    }
  }
  EXPECT_GE(recovered, 2);
}

TEST(PromptInversion, InvertedPromptRegeneratesSimilarImage) {
  // The paper's §4.2 conversion criterion: "maintaining high fidelity in
  // the re-generated images."  Invert → regenerate → the new image should
  // score well against the ORIGINAL prompt's content.
  DiffusionModel model(FindImageModel(kDalle3).value());
  const std::string original_prompt = "a mountain lake with forest reflection";
  const Image original =
      model.Generate(original_prompt, 224, 224, 15, 6).value().image;
  PromptInverter inverter(PromptInverter::DefaultVocabulary());
  const InvertedPrompt inverted = inverter.Invert(original, 6);
  ASSERT_FALSE(inverted.prompt.empty());
  const Image regenerated =
      model.Generate(inverted.prompt, 224, 224, 15, 6).value().image;
  EXPECT_GT(metrics::ClipScore(original_prompt, regenerated), 0.15);
}

TEST(PromptInversion, RandomImageYieldsNoConfidentTokens) {
  PromptInverter inverter(PromptInverter::DefaultVocabulary());
  const auto tokens =
      inverter.RecoverTokens(DiffusionModel::RandomImage(128, 128, 11), 3.5);
  EXPECT_LE(tokens.size(), 1u);
}

// --- pipeline -----------------------------------------------------------------

TEST(Pipeline, LoadsBothModelsOnce) {
  auto pipeline = GenerationPipeline::Load(kSd3Medium, kDeepseek8b);
  ASSERT_TRUE(pipeline.ok());
  EXPECT_GT(pipeline.value().load_seconds(), 0.0);
  EXPECT_EQ(pipeline.value().diffusion().spec().name, kSd3Medium);
  EXPECT_EQ(pipeline.value().text().spec().name, kDeepseek8b);
}

TEST(Pipeline, UnknownModelsRejected) {
  EXPECT_FALSE(GenerationPipeline::Load("sd-99", kDeepseek8b).ok());
  EXPECT_FALSE(GenerationPipeline::Load(kSd3Medium, "gpt-17").ok());
}

TEST(Pipeline, BiggerModelsLoadSlower) {
  const double sd21 = PipelineLoadSeconds(FindImageModel(kSd21).value());
  const double sd35 = PipelineLoadSeconds(FindImageModel(kSd35Medium).value());
  EXPECT_LT(sd21, sd35);
}

}  // namespace
}  // namespace sww::genai
