// obs_inspect_test — determinism and golden coverage for the sww_inspect
// run driver: under the default ManualClock, two runs must produce
// byte-identical artifacts, and the report must match the checked-in
// golden (tests/golden/run.report.txt) — the same file CI diffs against
// the artifact uploaded from the smoke job.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "tools/inspect_run.hpp"

namespace sww::tools {
namespace {

std::string Slurp(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return "";
  std::string contents;
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(file);
  return contents;
}

TEST(InspectRun, TwoRunsProduceByteIdenticalArtifacts) {
  auto first = RunInspect({});
  ASSERT_TRUE(first.ok()) << first.error().ToString();
  auto second = RunInspect({});
  ASSERT_TRUE(second.ok()) << second.error().ToString();

  EXPECT_EQ(first.value().report_text, second.value().report_text);
  EXPECT_EQ(first.value().report_jsonl, second.value().report_jsonl);
  EXPECT_EQ(first.value().frames_jsonl, second.value().frames_jsonl);
  EXPECT_EQ(first.value().frames_text, second.value().frames_text);
  EXPECT_EQ(first.value().trace_json, second.value().trace_json);
  EXPECT_EQ(first.value().metrics_jsonl, second.value().metrics_jsonl);
  EXPECT_EQ(first.value().journal_jsonl, second.value().journal_jsonl);
  EXPECT_EQ(first.value().slo_report, second.value().slo_report);
}

TEST(InspectRun, ReportCoversTheWholeRun) {
  auto result = RunInspect({});
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  const obs::RunReport& report = result.value().report;

  // One stitched trace per page fetch / edge request — not one per span.
  EXPECT_GT(report.span_count, report.trace_count);
  EXPECT_GT(report.trace_count, 0u);
  // The run exercises generation, the prompt cache, and the edge cache.
  EXPECT_GT(report.generation_seconds, 0.0);
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_GT(report.prompt_cache_hit_ratio, 0.0);
  EXPECT_GT(report.edge_hit_ratio, 0.0);
  // The flight recorder saw the whole exchange, nothing dropped.
  EXPECT_GT(report.frames_tapped, 0u);
  EXPECT_EQ(report.frames_dropped, 0u);
  EXPECT_EQ(report.frames_tapped, report.frames_recorded);
  EXPECT_TRUE(report.settings_gen_ability_seen);
  EXPECT_GT(report.frame_mix.at("SETTINGS"), 0u);
  EXPECT_GT(report.frame_mix.at("HEADERS"), 0u);
  EXPECT_GT(report.frame_mix.at("DATA"), 0u);
}

TEST(InspectRun, ReportMatchesCheckedInGolden) {
  const std::string golden = Slurp(std::string(SWW_GOLDEN_DIR) + "/run.report.txt");
  ASSERT_FALSE(golden.empty()) << "golden file missing";
  auto result = RunInspect({});
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(result.value().report_text, golden)
      << "report drifted from tests/golden/run.report.txt; if the change "
         "is intentional, regenerate with: sww_inspect --out-dir tests/golden";
}

TEST(InspectRun, JournalAndSloMatchCheckedInGoldens) {
  const std::string journal_golden =
      Slurp(std::string(SWW_GOLDEN_DIR) + "/run.journal.jsonl");
  const std::string slo_golden =
      Slurp(std::string(SWW_GOLDEN_DIR) + "/slo.report.txt");
  ASSERT_FALSE(journal_golden.empty()) << "golden file missing";
  ASSERT_FALSE(slo_golden.empty()) << "golden file missing";
  auto result = RunInspect({});
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(result.value().journal_jsonl, journal_golden)
      << "journal drifted from tests/golden/run.journal.jsonl; if the "
         "change is intentional, regenerate with: sww_inspect --out-dir "
         "tests/golden";
  EXPECT_EQ(result.value().slo_report, slo_golden)
      << "SLO report drifted from tests/golden/slo.report.txt; if the "
         "change is intentional, regenerate with: sww_inspect --out-dir "
         "tests/golden";
  // No journal records may have been lost to ring overwrite — dropped
  // wide events would make the golden a partial view.
  EXPECT_EQ(result.value().journal_dropped, 0u);
}

TEST(InspectRun, ArtifactsWriteToDisk) {
  auto result = RunInspect({});
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(WriteInspectArtifacts(result.value(), dir).ok());
  for (const char* name : {"run.report.txt", "run.report.jsonl",
                           "run.frames.jsonl", "run.trace.json",
                           "run.metrics.jsonl", "run.journal.jsonl",
                           "slo.report.txt"}) {
    const std::string path = dir + "/" + name;
    EXPECT_FALSE(Slurp(path).empty()) << path;
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace sww::tools
