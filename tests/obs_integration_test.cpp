// obs_integration_test — the acceptance test for end-to-end telemetry:
// one in-memory client↔server page fetch under a manual clock must yield
//   * a Chrome-trace JSON artifact whose spans cover the SETTINGS
//     negotiation, the server request, and per-asset generation, and
//   * a registry snapshot whose request/byte counters match what the
//     fetch itself reported.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "json/json.hpp"
#include "obs/clock.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace sww {
namespace {

class ObsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Default().SetClock(&clock_);
    obs::Tracer::Default().SetEnabled(true);
    obs::Tracer::Default().Clear();
    obs::Registry::Default().Reset();
  }
  void TearDown() override {
    obs::Tracer::Default().Clear();
    obs::Tracer::Default().SetClock(nullptr);
    obs::Registry::Default().Reset();
  }

  static const obs::Span* FindSpan(const std::vector<obs::Span>& spans,
                                   std::string_view name) {
    auto it = std::find_if(spans.begin(), spans.end(),
                           [&](const obs::Span& s) { return s.name == name; });
    return it == spans.end() ? nullptr : &*it;
  }

  obs::ManualClock clock_;
};

TEST_F(ObsIntegrationTest, PageFetchProducesSpansAndMatchingCounters) {
  core::ContentStore store;
  ASSERT_TRUE(store.AddPage("/", core::MakeGoldfishPage()).ok());

  auto session = core::LocalSession::Start(&store, {});
  ASSERT_TRUE(session.ok()) << session.error().ToString();
  auto fetch = session.value()->FetchPage("/");
  ASSERT_TRUE(fetch.ok()) << fetch.error().ToString();
  ASSERT_EQ(fetch.value().mode, "generative");
  ASSERT_EQ(fetch.value().generated_items, 1u);

  // --- spans cover negotiation → request → generation --------------------
  const std::vector<obs::Span> spans = obs::Tracer::Default().FinishedSpans();
  const obs::Span* settings = FindSpan(spans, "http2.settings_roundtrip");
  ASSERT_NE(settings, nullptr) << "SETTINGS negotiation span missing";
  bool negotiated_attr = false;
  for (const auto& [key, value] : settings->attributes) {
    if (key == "negotiated_gen_ability") {
      negotiated_attr = true;
      EXPECT_NE(value.find("full"), std::string::npos) << value;
    }
  }
  EXPECT_TRUE(negotiated_attr);

  const obs::Span* request = FindSpan(spans, "server.request");
  ASSERT_NE(request, nullptr) << "server request span missing";

  const obs::Span* page_span = FindSpan(spans, "client.fetch_page");
  ASSERT_NE(page_span, nullptr);

  // Per-asset generation nests (transitively) under the page fetch.
  const obs::Span* generate = FindSpan(spans, "genai.generate");
  ASSERT_NE(generate, nullptr) << "per-asset generation span missing";
  EXPECT_GT(generate->DurationSeconds(), 0.0)
      << "simulated generation cost should advance the manual clock";
  obs::SpanId ancestor = generate->parent;
  bool under_page_fetch = false;
  for (int hops = 0; ancestor != 0 && hops < 16; ++hops) {
    if (ancestor == page_span->id) {
      under_page_fetch = true;
      break;
    }
    const obs::Span* parent = nullptr;
    for (const obs::Span& s : spans) {
      if (s.id == ancestor) { parent = &s; break; }
    }
    if (parent == nullptr) break;
    ancestor = parent->parent;
  }
  EXPECT_TRUE(under_page_fetch);

  // --- registry counters match the fetch ---------------------------------
  const obs::RegistrySnapshot snap = obs::Registry::Default().Snapshot();
  EXPECT_EQ(snap.counters.at("server.requests"), 1u);
  EXPECT_EQ(snap.counters.at("server.pages_generative"), 1u);
  EXPECT_EQ(snap.counters.at("client.pages_fetched"), 1u);
  EXPECT_EQ(snap.counters.at("client.items_generated"),
            fetch.value().generated_items);
  EXPECT_GE(snap.counters.at("server.negotiations"), 1u);
  EXPECT_GE(snap.counters.at("client.negotiations"), 1u);

  // Byte accounting is consistent: client-observed page wire bytes equal
  // the server's accounted page bytes (no compression in this fetch) and
  // both histograms saw exactly one page.
  const obs::HistogramSnapshot client_bytes =
      snap.histograms.at("client.page_bytes");
  const obs::HistogramSnapshot server_bytes =
      snap.histograms.at("server.page_bytes");
  EXPECT_EQ(client_bytes.count, 1u);
  EXPECT_EQ(server_bytes.count, 1u);
  EXPECT_DOUBLE_EQ(client_bytes.sum,
                   static_cast<double>(fetch.value().page_bytes));
  EXPECT_DOUBLE_EQ(server_bytes.sum, client_bytes.sum);
  EXPECT_EQ(session.value()->server().stats().page_bytes_sent,
            fetch.value().page_bytes);

  // http2 wire counters line up between the mirrored registry view and the
  // per-connection stats (both endpoints feed the same named counters).
  const std::uint64_t wire_sent =
      session.value()->client().connection().wire_stats().bytes_sent +
      session.value()->server().connection().wire_stats().bytes_sent;
  EXPECT_EQ(snap.counters.at("http2.bytes_sent"), wire_sent);
  EXPECT_EQ(snap.counters.at("http2.bytes_received"), wire_sent)
      << "lossless in-memory link: every sent byte is received";

  // --- the trace artifact is valid Chrome trace JSON ----------------------
  const std::string trace = obs::ExportChromeTrace(spans, "obs_integration");
  auto parsed = json::Parse(trace);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  const json::Value* events = parsed.value().Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // One complete event per span, plus per-role process/thread metadata
  // (the client/server role labels introduce extra pid tracks).
  std::size_t complete_events = 0, metadata_events = 0;
  std::vector<std::string> names;
  for (const json::Value& event : events->AsArray()) {
    names.push_back(event.GetString("name"));
    if (event.GetString("ph") == "X") ++complete_events;
    if (event.GetString("ph") == "M") ++metadata_events;
  }
  EXPECT_EQ(complete_events, spans.size());
  EXPECT_GE(metadata_events, 2u);  // at least process_name + thread_name
  for (const char* expected :
       {"http2.settings_roundtrip", "http2.stream", "server.request",
        "client.fetch_page", "client.materialize", "genai.generate"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "trace missing span " << expected;
  }
}

TEST_F(ObsIntegrationTest, RegistryAggregatesAcrossSessions) {
  core::ContentStore store;
  ASSERT_TRUE(store.AddPage("/", core::MakeGoldfishPage()).ok());
  for (int i = 0; i < 3; ++i) {
    auto session = core::LocalSession::Start(&store, {});
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session.value()->FetchPage("/").ok());
  }
  const obs::RegistrySnapshot snap = obs::Registry::Default().Snapshot();
  // Three connections' worth of per-instance stats sum in one place.
  EXPECT_EQ(snap.counters.at("server.requests"), 3u);
  EXPECT_EQ(snap.counters.at("client.pages_fetched"), 3u);
  EXPECT_EQ(snap.counters.at("server.negotiations"), 3u);
  EXPECT_EQ(snap.histograms.at("server.page_bytes").count, 3u);
}

}  // namespace
}  // namespace sww
