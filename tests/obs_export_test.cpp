// obs_export_test — exporter hardening and schema guarantees:
//   * metrics/trace artifacts always round-trip through the strict
//     src/json parser, even with hostile instrument/attribute strings
//     and non-finite values;
//   * histogram lines carry count/sum/p50/p95/p99; span events carry
//     consistent pid/tid, ids, and finite timestamps;
//   * histogram percentile memory is bounded by the deterministic
//     reservoir (exact below the reservoir size, stable across runs).
#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "obs/clock.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace sww::obs {
namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

TEST(ExportJsonLines, HostileNamesAndValuesStillParse) {
  Registry registry;
  registry.GetCounter("weird\"name\\with\ncontrol\x01chars").Add(3);
  registry.GetGauge("gauge").Set(
      std::numeric_limits<double>::infinity());  // RFC 8259 has no inf
  registry.GetHistogram("hist").Observe(1.5);

  const std::string out = ExportJsonLines(registry.Snapshot());
  for (const std::string& line : SplitLines(out)) {
    auto parsed = json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << parsed.error().ToString() << "\n" << line;
    if (parsed.value().GetString("kind") == "counter") {
      EXPECT_EQ(parsed.value().GetString("name"),
                "weird\"name\\with\ncontrol\x01chars");
      EXPECT_EQ(parsed.value().GetInt("value"), 3);
    }
    if (parsed.value().GetString("kind") == "gauge") {
      // Non-finite serialized as null, not bare `inf`.
      ASSERT_TRUE(parsed.value().Has("value"));
      EXPECT_TRUE(parsed.value().Get("value")->is_null());
    }
  }
}

TEST(ExportJsonLines, HistogramSchemaIsComplete) {
  Registry registry;
  Histogram& hist = registry.GetHistogram("latency");
  for (int i = 1; i <= 100; ++i) hist.Observe(i * 0.001);

  bool saw_histogram = false;
  for (const std::string& line : SplitLines(ExportJsonLines(registry.Snapshot()))) {
    auto parsed = json::Parse(line);
    ASSERT_TRUE(parsed.ok());
    if (parsed.value().GetString("kind") != "histogram") continue;
    saw_histogram = true;
    for (const char* key : {"name", "count", "sum", "min", "max", "mean",
                            "p50", "p95", "p99", "bounds", "counts"}) {
      EXPECT_TRUE(parsed.value().Has(key)) << "missing " << key;
    }
    EXPECT_EQ(parsed.value().GetInt("count"), 100);
    EXPECT_NEAR(parsed.value().GetNumber("p50"), 0.050, 0.002);
    EXPECT_NEAR(parsed.value().GetNumber("p99"), 0.099, 0.002);
  }
  EXPECT_TRUE(saw_histogram);
}

TEST(ExportChromeTrace, HostileAttributesAndSchema) {
  Tracer tracer;
  ManualClock clock;
  tracer.SetClock(&clock);
  const SpanId id = tracer.BeginSpan("fetch \"quoted\\path\"", "core");
  tracer.AddAttribute(id, "prompt", "a \"goldfish\"\nnew\tline\\end");
  tracer.SetSpanProcess(id, "client");
  clock.AdvanceNanos(1500);
  tracer.EndSpan(id);

  const std::string out = ExportChromeTrace(tracer.FinishedSpans(), "test");
  auto parsed = json::Parse(out);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  const json::Value* events = parsed.value().Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int complete = 0;
  for (const json::Value& event : events->AsArray()) {
    const std::string ph = event.GetString("ph");
    ASSERT_TRUE(ph == "X" || ph == "M") << ph;
    EXPECT_GT(event.GetInt("pid"), 0);
    EXPECT_GT(event.GetInt("tid"), 0);
    if (ph != "X") continue;
    ++complete;
    EXPECT_EQ(event.GetString("name"), "fetch \"quoted\\path\"");
    EXPECT_GE(event.GetNumber("ts"), 0.0);
    EXPECT_NEAR(event.GetNumber("dur"), 1.5, 1e-9);  // µs
    const json::Value* args = event.Get("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->GetInt("span_id"), 1);
    EXPECT_EQ(args->GetString("prompt"), "a \"goldfish\"\nnew\tline\\end");
    EXPECT_FALSE(args->GetString("trace_id").empty());
  }
  EXPECT_EQ(complete, 1);

  // Role metadata: the "client" process track is declared.
  bool client_track = false;
  for (const json::Value& event : events->AsArray()) {
    if (event.GetString("ph") == "M" &&
        event.GetString("name") == "process_name" &&
        event.Get("args")->GetString("name") == "client") {
      client_track = true;
    }
  }
  EXPECT_TRUE(client_track);
  tracer.SetClock(nullptr);
}

TEST(ExportChromeTrace, ProcessLabelInheritsFromAncestor) {
  Tracer tracer;
  ManualClock clock;
  tracer.SetClock(&clock);
  const SpanId root = tracer.BeginSpan("root");
  tracer.SetSpanProcess(root, "server");
  const SpanId child = tracer.BeginSpan("child");  // unlabeled → inherits
  clock.AdvanceNanos(10);
  tracer.EndSpan(child);
  tracer.EndSpan(root);

  const std::string out = ExportChromeTrace(tracer.FinishedSpans(), "dflt");
  auto parsed = json::Parse(out);
  ASSERT_TRUE(parsed.ok());
  int server_pid = 0;
  for (const json::Value& event : parsed.value().Get("traceEvents")->AsArray()) {
    if (event.GetString("ph") == "M" &&
        event.GetString("name") == "process_name" &&
        event.Get("args")->GetString("name") == "server") {
      server_pid = static_cast<int>(event.GetInt("pid"));
    }
  }
  ASSERT_GT(server_pid, 0);
  for (const json::Value& event : parsed.value().Get("traceEvents")->AsArray()) {
    if (event.GetString("ph") == "X") {
      EXPECT_EQ(event.GetInt("pid"), server_pid) << event.GetString("name");
    }
  }
  tracer.SetClock(nullptr);
}

TEST(ExportFiles, WrittenArtifactsRoundTripThroughParser) {
  Registry registry;
  registry.GetCounter("c").Add(1);
  Tracer tracer;
  ManualClock clock;
  tracer.SetClock(&clock);
  const SpanId id = tracer.BeginSpan("s");
  clock.AdvanceNanos(5);
  tracer.EndSpan(id);
  tracer.SetClock(nullptr);

  const std::string dir = ::testing::TempDir();
  const std::string metrics_path = dir + "/sww_export_test.metrics.jsonl";
  const std::string trace_path = dir + "/sww_export_test.trace.json";
  ASSERT_TRUE(WriteMetricsFile(metrics_path, registry.Snapshot()).ok());
  ASSERT_TRUE(WriteTraceFile(trace_path, tracer.FinishedSpans(), "t").ok());

  auto slurp = [](const std::string& path) {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    EXPECT_NE(file, nullptr) << path;
    std::string contents;
    char buffer[4096];
    std::size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      contents.append(buffer, n);
    }
    std::fclose(file);
    return contents;
  };
  for (const std::string& line : SplitLines(slurp(metrics_path))) {
    EXPECT_TRUE(json::Parse(line).ok()) << line;
  }
  auto trace = json::Parse(slurp(trace_path));
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace.value().Get("traceEvents")->is_array());
  std::remove(metrics_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(HistogramGrid, IdenticalStreamsSnapshotIdentically) {
  // Two identical observation streams must produce identical snapshots:
  // the grid has no sampling, so there is nothing to diverge.
  Histogram a;
  Histogram b;
  for (int i = 0; i < 20000; ++i) {
    const double value = (i * 37) % 1000;
    a.Observe(value);
    b.Observe(value);
  }
  const HistogramSnapshot sa = a.Snapshot();
  const HistogramSnapshot sb = b.Snapshot();
  EXPECT_EQ(sa.count, 20000u);
  EXPECT_EQ(sa.bounds, sb.bounds);
  EXPECT_EQ(sa.counts, sb.counts);
  EXPECT_DOUBLE_EQ(sa.p50, sb.p50);
  EXPECT_DOUBLE_EQ(sa.p95, sb.p95);
  EXPECT_DOUBLE_EQ(sa.p99, sb.p99);
  // The estimates stay sane for a ~uniform stream over [0, 1000).
  EXPECT_NEAR(sa.p50, 500.0, 120.0);
  EXPECT_GT(sa.p95, sa.p50);
  EXPECT_GE(sa.p99, sa.p95);

  // Reset zeroes the grid: the same stream again snapshots identically.
  a.Reset();
  for (int i = 0; i < 20000; ++i) a.Observe((i * 37) % 1000);
  EXPECT_DOUBLE_EQ(a.Snapshot().p50, sb.p50);
}

TEST(HistogramGrid, QuantilesWithinBucketError) {
  Histogram hist;
  for (int i = 1; i <= 100; ++i) hist.Observe(i);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  // Bucket midpoints land within the 1/32 relative bucket width.
  EXPECT_NEAR(snap.p50, 50.0, 50.0 / 32.0);
  EXPECT_NEAR(snap.p95, 95.0, 95.0 / 32.0);
  EXPECT_NEAR(snap.p99, 99.0, 99.0 / 32.0);
}

}  // namespace
}  // namespace sww::obs
