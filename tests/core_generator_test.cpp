// Tests for the media generator (§4.1's two-subroutine object).
#include <gtest/gtest.h>

#include "core/media_generator.hpp"
#include "energy/device.hpp"
#include "html/parser.hpp"

namespace sww::core {
namespace {

html::GeneratedContentSpec ImageSpec(int width = 224, int height = 224) {
  html::GeneratedContentSpec spec;
  spec.type = html::GeneratedContentType::kImage;
  spec.metadata = json::Value{json::Object{}};
  spec.metadata.Set("prompt", "a mountain valley, photograph");
  spec.metadata.Set("name", "valley");
  spec.metadata.Set("width", width);
  spec.metadata.Set("height", height);
  return spec;
}

html::GeneratedContentSpec TextSpec(int words = 120) {
  html::GeneratedContentSpec spec;
  spec.type = html::GeneratedContentType::kText;
  spec.metadata = json::Value{json::Object{}};
  json::Array bullets;
  bullets.emplace_back("trail crosses valleys");
  bullets.emplace_back("spring weather mild");
  spec.metadata.Set("prompt", "expand");
  spec.metadata.Set("bullets", json::Value(std::move(bullets)));
  spec.metadata.Set("words", words);
  return spec;
}

MediaGenerator Laptop() {
  auto generator = MediaGenerator::Create(energy::Laptop(), {});
  EXPECT_TRUE(generator.ok());
  return std::move(generator).value();
}

TEST(MediaGenerator, GeneratesImageWithCostAccounting) {
  MediaGenerator generator = Laptop();
  auto spec = ImageSpec(256, 256);
  auto media = generator.Generate(spec);
  ASSERT_TRUE(media.ok());
  EXPECT_EQ(media.value().type, html::GeneratedContentType::kImage);
  EXPECT_EQ(media.value().file_path, "generated/valley.ppm");
  EXPECT_FALSE(media.value().file_bytes.empty());
  // Table 2 small image on a laptop ≈ 7 s.
  EXPECT_NEAR(media.value().seconds, 7.0, 0.5);
  EXPECT_GT(media.value().energy_wh, 0.0);
  EXPECT_EQ(media.value().traditional_bytes, 8192u);
  EXPECT_GT(media.value().metadata_bytes, 0u);
  EXPECT_EQ(generator.items_generated(), 1u);
  EXPECT_NEAR(generator.total_seconds(), media.value().seconds, 1e-9);
}

TEST(MediaGenerator, GeneratesTextFromBullets) {
  MediaGenerator generator = Laptop();
  auto spec = TextSpec(120);
  auto media = generator.Generate(spec);
  ASSERT_TRUE(media.ok());
  EXPECT_EQ(media.value().type, html::GeneratedContentType::kText);
  EXPECT_FALSE(media.value().text.empty());
  EXPECT_NEAR(media.value().words, 120, 30);
  EXPECT_EQ(media.value().traditional_bytes, 600u);  // 120 words × 5 B
}

TEST(MediaGenerator, DeterministicAcrossInstances) {
  // The same prompt produces identical bytes on every client — the
  // property that makes prompt-as-content coherent.
  MediaGenerator a = Laptop();
  MediaGenerator b = Laptop();
  auto spec = ImageSpec();
  EXPECT_EQ(a.Generate(spec).value().file_bytes,
            b.Generate(spec).value().file_bytes);
}

TEST(MediaGenerator, GenerateAndReplaceSplicesDom) {
  auto doc = html::ParseDocument(
      R"(<body><div class="generated content" content-type="img" )"
      R"(metadata='{"prompt":"a quiet harbor","name":"h","width":64,)"
      R"("height":64}'></div></body>)").value();
  auto extraction = html::ExtractGeneratedContent(*doc);
  ASSERT_EQ(extraction.specs.size(), 1u);
  MediaGenerator generator = Laptop();
  auto media = generator.GenerateAndReplace(extraction.specs[0]);
  ASSERT_TRUE(media.ok());
  const std::string after = doc->Serialize();
  EXPECT_NE(after.find("generated/h.ppm"), std::string::npos);
  EXPECT_EQ(after.find("generated content"), std::string::npos);
}

TEST(MediaGenerator, TextSpecWithoutBulletsUsesPrompt) {
  MediaGenerator generator = Laptop();
  html::GeneratedContentSpec spec;
  spec.type = html::GeneratedContentType::kText;
  spec.metadata = json::Value{json::Object{}};
  spec.metadata.Set("prompt", "lighthouse coastal storm");
  spec.metadata.Set("words", 60);
  auto media = generator.Generate(spec);
  ASSERT_TRUE(media.ok());
  EXPECT_GT(media.value().words, 30);
}

TEST(MediaGenerator, EmptyPromptRejected) {
  MediaGenerator generator = Laptop();
  html::GeneratedContentSpec spec;
  spec.type = html::GeneratedContentType::kImage;
  spec.metadata = json::Value{json::Object{}};
  spec.metadata.Set("prompt", "");
  EXPECT_FALSE(generator.Generate(spec).ok());
}

TEST(MediaGenerator, UnnamedImageGetsDerivedName) {
  MediaGenerator generator = Laptop();
  html::GeneratedContentSpec spec;
  spec.type = html::GeneratedContentType::kImage;
  spec.metadata = json::Value{json::Object{}};
  spec.metadata.Set("prompt", "x");
  spec.metadata.Set("width", 32);
  spec.metadata.Set("height", 32);
  auto media = generator.Generate(spec);
  ASSERT_TRUE(media.ok());
  EXPECT_NE(media.value().name.find("img-"), std::string::npos);
}

TEST(MediaGenerator, WorkstationFasterThanLaptop) {
  auto workstation = MediaGenerator::Create(energy::Workstation(), {});
  ASSERT_TRUE(workstation.ok());
  MediaGenerator laptop = Laptop();
  auto spec = ImageSpec(512, 512);
  const double laptop_s = laptop.Generate(spec).value().seconds;
  const double ws_s = workstation.value().Generate(spec).value().seconds;
  EXPECT_GT(laptop_s / ws_s, 5.0);  // Table 2: 19 s vs 1.7 s
}

TEST(MediaGenerator, UnknownModelFailsAtCreation) {
  MediaGenerator::Options options;
  options.image_model = "nonexistent";
  EXPECT_FALSE(MediaGenerator::Create(energy::Laptop(), options).ok());
}

TEST(MediaGenerator, PipelineIsReusedAcrossInvocations) {
  MediaGenerator generator = Laptop();
  auto spec = ImageSpec(64, 64);
  (void)generator.Generate(spec);
  (void)generator.Generate(spec);
  (void)generator.Generate(TextSpec());
  EXPECT_EQ(generator.pipeline().invocations(), 3u);
  EXPECT_GT(generator.pipeline().load_seconds(), 0.0);
}

}  // namespace
}  // namespace sww::core
