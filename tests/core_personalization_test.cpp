// Tests for §2.3 personalized content and its built-in harm mitigations,
// and for the §2.2 upscale-assist delivery mode.
#include <gtest/gtest.h>

#include <set>

#include "core/page_builder.hpp"
#include "core/personalization.hpp"
#include "core/renderer.hpp"
#include "core/session.hpp"
#include "genai/image.hpp"
#include "html/parser.hpp"
#include "util/strings.hpp"

namespace sww::core {
namespace {

// --- PersonalizePrompt -------------------------------------------------------

PersonalizationProfile CyclistProfile() {
  PersonalizationProfile profile;
  profile.interests = {"cycling", "birdwatching", "coffee"};
  profile.consented = true;
  profile.max_strength = 0.2;
  return profile;
}

TEST(Personalization, RequiresConsent) {
  PersonalizationProfile profile = CyclistProfile();
  profile.consented = false;
  const auto result = PersonalizePrompt(
      profile, "a mountain valley with a river and forest, photograph");
  EXPECT_FALSE(result.applied);
  EXPECT_EQ(result.prompt,
            "a mountain valley with a river and forest, photograph");
}

TEST(Personalization, InactiveWithoutInterests) {
  PersonalizationProfile profile;
  profile.consented = true;
  EXPECT_FALSE(PersonalizePrompt(profile, "a long prompt with many words here")
                   .applied);
}

TEST(Personalization, AppliesDeterministically) {
  const PersonalizationProfile profile = CyclistProfile();
  const std::string prompt =
      "a mountain valley with a river and forest under morning light";
  const auto a = PersonalizePrompt(profile, prompt);
  const auto b = PersonalizePrompt(profile, prompt);
  ASSERT_TRUE(a.applied);
  EXPECT_EQ(a.prompt, b.prompt);
  EXPECT_EQ(a.injected_tokens, b.injected_tokens);
  // The original prompt is preserved as a prefix (content dominates).
  EXPECT_EQ(a.prompt.rfind(prompt, 0), 0u);
}

TEST(Personalization, DifferentPromptsPickDifferentInterests) {
  const PersonalizationProfile profile = CyclistProfile();
  // With 3 interests and hash-based ranking, two unrelated prompts are
  // very likely to select different leading interests; assert over a batch.
  std::set<std::string> leading;
  for (int i = 0; i < 8; ++i) {
    const auto result = PersonalizePrompt(
        profile, MakeLandscapePrompt(1000 + static_cast<std::uint64_t>(i)));
    if (result.applied && !result.injected_tokens.empty()) {
      leading.insert(result.injected_tokens.front());
    }
  }
  EXPECT_GE(leading.size(), 2u);
}

TEST(Personalization, StrengthCapBoundsInjection) {
  PersonalizationProfile profile = CyclistProfile();
  profile.max_strength = 0.2;
  const std::string prompt = "one two three four five six seven eight nine ten";
  const auto result = PersonalizePrompt(profile, prompt);
  // 10 tokens × 0.2 → at most 2 injected.
  EXPECT_LE(result.injected_tokens.size(), 2u);
}

TEST(Personalization, ZeroBudgetMeansNoChange) {
  PersonalizationProfile profile = CyclistProfile();
  profile.max_strength = 0.2;
  EXPECT_FALSE(PersonalizePrompt(profile, "tiny prompt").applied);  // 2 tokens
}

TEST(Personalization, StrengthIsClampedToThirtyPercent) {
  PersonalizationProfile profile = CyclistProfile();
  profile.max_strength = 5.0;  // malicious/buggy caller
  const std::string prompt = "one two three four five six seven eight nine ten";
  const auto result = PersonalizePrompt(profile, prompt);
  EXPECT_LE(result.injected_tokens.size(), 3u);  // 10 × 0.3 cap
}

TEST(PersonalizationAudit, DisclosureListsInjections) {
  PersonalizationAudit audit;
  EXPECT_EQ(audit.Disclosure(), "");
  audit.Record({"stock-0", "a valley", "a valley, with a subtle nod to cycling",
                {"cycling"}});
  const std::string disclosure = audit.Disclosure();
  EXPECT_NE(disclosure.find("stock-0"), std::string::npos);
  EXPECT_NE(disclosure.find("cycling"), std::string::npos);
  EXPECT_NE(disclosure.find("No profile data left it"), std::string::npos);
}

// --- end-to-end personalization ------------------------------------------------

TEST(PersonalizationE2E, PersonalizedFetchDiffersAndIsAudited) {
  ContentStore store;
  const LandscapePage page = MakeLandscapeSearchPage(3);
  ASSERT_TRUE(store.AddPage("/p", page.html).ok());

  LocalSession::Options plain;
  auto plain_session = LocalSession::Start(&store, plain);
  auto plain_fetch = plain_session.value()->FetchPage("/p");
  ASSERT_TRUE(plain_fetch.ok());

  LocalSession::Options personalized;
  personalized.client.generator.profile = CyclistProfile();
  auto person_session = LocalSession::Start(&store, personalized);
  auto person_fetch = person_session.value()->FetchPage("/p");
  ASSERT_TRUE(person_fetch.ok());

  // Same wire bytes (the profile never leaves the device)...
  EXPECT_EQ(plain_fetch.value().page_bytes, person_fetch.value().page_bytes);
  // ...different pixels...
  ASSERT_EQ(plain_fetch.value().files.size(), person_fetch.value().files.size());
  EXPECT_NE(plain_fetch.value().files.begin()->second,
            person_fetch.value().files.begin()->second);
  // ...and a full audit trail for disclosure.
  EXPECT_EQ(person_session.value()->client().generator().audit().size(), 3u);
  EXPECT_EQ(plain_session.value()->client().generator().audit().size(), 0u);
}

TEST(PersonalizationE2E, RendererAppendsDisclosureFooter) {
  ContentStore store;
  ASSERT_TRUE(store.AddPage("/", MakeGoldfishPage()).ok());
  LocalSession::Options options;
  options.client.generator.profile = CyclistProfile();
  auto session = LocalSession::Start(&store, options);
  auto fetch = session.value()->FetchPage("/");
  ASSERT_TRUE(fetch.ok());
  auto doc = html::ParseDocument(fetch.value().final_html).value();
  PageRenderer renderer;
  const std::string with_disclosure = renderer.RenderWithDisclosure(
      *doc, session.value()->client().generator().audit());
  EXPECT_NE(with_disclosure.find("personalized on your device"),
            std::string::npos);
  // Without personalization the footer is absent.
  PersonalizationAudit empty;
  EXPECT_EQ(renderer.RenderWithDisclosure(*doc, empty),
            renderer.RenderToText(*doc));
}

// --- §2.2 upscale-assist mode ------------------------------------------------------

TEST(UpscaleAssist, NegotiatedForUpscaleOnlyClients) {
  ContentStore store;
  ASSERT_TRUE(store.AddPage("/", MakeGoldfishPage()).ok());
  LocalSession::Options options;
  options.client.advertised_ability = http2::kGenAbilityUpscaleOnly;
  options.server.advertised_ability =
      http2::kGenAbilityFull | http2::kGenAbilityUpscaleOnly;
  auto session = LocalSession::Start(&store, options);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.value()->server().CurrentServeMode(),
            ServeMode::kUpscaleAssist);

  auto fetch = session.value()->FetchPage("/");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().mode, "upscale-assist");
  // No client-side generation, one client-side upscale.
  EXPECT_EQ(fetch.value().generated_items, 0u);
  EXPECT_EQ(fetch.value().upscaled_items, 1u);
  EXPECT_GT(fetch.value().upscale_seconds, 0.0);
  EXPECT_LT(fetch.value().upscale_seconds, 1.0);  // §2.2: sub-second

  // The transmitted asset was the half-resolution variant (~4x smaller
  // than the 512² full PPM of ~786 kB)...
  EXPECT_LT(fetch.value().asset_bytes, 250000u);
  EXPECT_GT(fetch.value().asset_bytes, 100000u);
  // ...but the delivered image is full size.
  auto file = fetch.value().files.begin();
  auto image = genai::Image::FromPpm(util::ToString(file->second));
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image.value().width(), 512);
  EXPECT_EQ(image.value().height(), 512);
  // The upscale marker was consumed.
  EXPECT_EQ(fetch.value().final_html.find("data-sww-upscale"),
            std::string::npos);
}

TEST(UpscaleAssist, FullGenerationOutranksUpscale) {
  ContentStore store;
  ASSERT_TRUE(store.AddPage("/", MakeGoldfishPage()).ok());
  LocalSession::Options options;
  options.client.advertised_ability =
      http2::kGenAbilityFull | http2::kGenAbilityUpscaleOnly;
  options.server.advertised_ability =
      http2::kGenAbilityFull | http2::kGenAbilityUpscaleOnly;
  auto session = LocalSession::Start(&store, options);
  auto fetch = session.value()->FetchPage("/");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().mode, "generative");
}

TEST(UpscaleAssist, TextItemsAreServerExpanded) {
  ContentStore store;
  const TravelBlogPage blog = MakeTravelBlogPage(1, 0);
  ASSERT_TRUE(store.AddPage("/blog", blog.html).ok());
  LocalSession::Options options;
  options.client.advertised_ability = http2::kGenAbilityUpscaleOnly;
  options.server.advertised_ability =
      http2::kGenAbilityFull | http2::kGenAbilityUpscaleOnly;
  auto session = LocalSession::Start(&store, options);
  auto fetch = session.value()->FetchPage("/blog");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().mode, "upscale-assist");
  // The text div arrived already expanded (server-side).
  auto doc = html::ParseDocument(fetch.value().final_html).value();
  EXPECT_TRUE(html::ExtractGeneratedContent(*doc).specs.empty());
  EXPECT_GT(util::CountWords(doc->InnerText()), 100u);
}

}  // namespace
}  // namespace sww::core
