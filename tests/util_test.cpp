// Tests for src/util: byte codecs, RNG, hashing, strings, logging.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bytes.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace sww::util {
namespace {

// --- bytes ---------------------------------------------------------------

TEST(ByteWriter, WritesBigEndianIntegers) {
  ByteWriter writer;
  writer.WriteU8(0xab);
  writer.WriteU16(0x0102);
  writer.WriteU24(0x030405);
  writer.WriteU32(0x06070809);
  EXPECT_EQ(HexDump(writer.bytes()), "ab 01 02 03 04 05 06 07 08 09");
}

TEST(ByteWriter, WriteU64RoundTrips) {
  ByteWriter writer;
  writer.WriteU64(0x0123456789abcdefULL);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.ReadU64().value(), 0x0123456789abcdefULL);
}

TEST(ByteWriter, PatchU24OverwritesInPlace) {
  ByteWriter writer;
  writer.WriteU24(0);
  writer.WriteU8(0xff);
  writer.PatchU24(0, 0x123456);
  EXPECT_EQ(HexDump(writer.bytes()), "12 34 56 ff");
}

TEST(ByteReader, ReadsSequentially) {
  const Bytes data = {0x01, 0x02, 0x03, 0x04, 0x05};
  ByteReader reader(data);
  EXPECT_EQ(reader.ReadU8().value(), 0x01);
  EXPECT_EQ(reader.ReadU16().value(), 0x0203);
  EXPECT_EQ(reader.remaining(), 2u);
  EXPECT_EQ(reader.ReadU16().value(), 0x0405);
  EXPECT_TRUE(reader.empty());
}

TEST(ByteReader, TruncationIsAnErrorNotUb) {
  const Bytes data = {0x01};
  ByteReader reader(data);
  auto result = reader.ReadU32();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kTruncated);
  // The failed read consumed nothing.
  EXPECT_EQ(reader.remaining(), 1u);
}

TEST(ByteReader, PeekDoesNotConsume) {
  const Bytes data = {0x42};
  ByteReader reader(data);
  EXPECT_EQ(reader.PeekU8().value(), 0x42);
  EXPECT_EQ(reader.PeekU8().value(), 0x42);
  EXPECT_EQ(reader.ReadU8().value(), 0x42);
  EXPECT_FALSE(reader.PeekU8().ok());
}

TEST(ByteReader, SkipAndRest) {
  const Bytes data = {1, 2, 3, 4};
  ByteReader reader(data);
  ASSERT_TRUE(reader.Skip(2).ok());
  EXPECT_EQ(reader.Rest().size(), 2u);
  EXPECT_FALSE(reader.Skip(3).ok());
}

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x7f, 0xff, 0x10};
  auto parsed = FromHex(HexDump(data));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), data);
}

TEST(Hex, AcceptsDenseAndSpacedInput) {
  EXPECT_EQ(FromHex("8286 8441").value(), (Bytes{0x82, 0x86, 0x84, 0x41}));
  EXPECT_EQ(FromHex("82868441").value(), (Bytes{0x82, 0x86, 0x84, 0x41}));
}

TEST(Hex, RejectsInvalidInput) {
  EXPECT_FALSE(FromHex("0g").ok());
  EXPECT_FALSE(FromHex("abc").ok());
}

TEST(BytesStrings, ToBytesToStringRoundTrip) {
  EXPECT_EQ(ToString(ToBytes("hello")), "hello");
  EXPECT_EQ(ToBytes("").size(), 0u);
}

// --- result/status -------------------------------------------------------

TEST(Result, ValueAndError) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  Result<int> bad(ErrorCode::kNotFound, "nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(bad.value_or(3), 3);
  EXPECT_THROW(bad.value(), std::logic_error);
}

TEST(Status, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  Status status(ErrorCode::kIo, "io failed");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.ToString(), "io: io failed");
}

// --- rng -----------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextU64() != b.NextU64()) ++differences;
  }
  EXPECT_GT(differences, 12);
}

TEST(Rng, BoundedStaysInBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMomentsAreStandard) {
  Rng rng(77);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = items;
  rng.Shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, copy);
}

// --- hash ----------------------------------------------------------------

TEST(Hash, Fnv1aKnownValue) {
  // FNV-1a 64 of empty string is the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
}

TEST(Hash, CombineOrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(Hash, UnitMappingInRange) {
  for (std::uint64_t h : {0ULL, 1ULL, 0xffffffffffffffffULL, 12345ULL}) {
    const double u = HashToUnit(h);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

// --- strings -------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, SplitWhitespaceDropsEmpties) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(Strings, CaseAndAffixes) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(StartsWith("generated content", "generated"));
  EXPECT_TRUE(EndsWith("image.ppm", ".ppm"));
  EXPECT_FALSE(StartsWith("a", "ab"));
}

TEST(Strings, JoinAndReplace) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(ReplaceAll("aXbXc", "X", "--"), "a--b--c");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
}

TEST(Strings, CountWords) {
  EXPECT_EQ(CountWords("one two  three"), 3u);
  EXPECT_EQ(CountWords(""), 0u);
}

TEST(Strings, TokenizeStripsPunctuationAndFoldsCase) {
  EXPECT_EQ(Tokenize("A cartoon Goldfish, swimming!"),
            (std::vector<std::string>{"a", "cartoon", "goldfish", "swimming"}));
}

TEST(Strings, Format) {
  EXPECT_EQ(Format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(Format("%.2f", 1.239), "1.24");
}

// --- log -----------------------------------------------------------------

TEST(Log, SinkCapturesAboveLevel) {
  std::vector<std::string> captured;
  auto previous = Logger::Instance().SetSink(
      [&captured](LogLevel level, std::string_view component,
                  std::string_view message) {
        captured.push_back(std::string(LogLevelName(level)) + "/" +
                           std::string(component) + "/" + std::string(message));
      });
  const LogLevel previous_level = Logger::Instance().level();
  Logger::Instance().SetLevel(LogLevel::kInfo);
  LogDebug("t", "hidden");
  LogInfo("t", "shown");
  LogError("t", "also shown");
  Logger::Instance().SetLevel(previous_level);
  Logger::Instance().SetSink(previous);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], "info/t/shown");
  EXPECT_EQ(captured[1], "error/t/also shown");
}

// --- property-style sweeps ------------------------------------------------

class ByteRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ByteRoundTrip, U32SurvivesWriteRead) {
  ByteWriter writer;
  writer.WriteU32(GetParam());
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.ReadU32().value(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, ByteRoundTrip,
                         ::testing::Values(0u, 1u, 0x7fu, 0x80u, 0xffffu,
                                           0x10000u, 0x7fffffffu, 0x80000000u,
                                           0xffffffffu));

}  // namespace
}  // namespace sww::util
