// Tests for HTTP/2 framing (RFC 9113 §4, §6).
#include <gtest/gtest.h>

#include "http2/frame.hpp"
#include "util/rng.hpp"

namespace sww::http2 {
namespace {

using util::Bytes;
using util::BytesView;

TEST(FrameHeader, SerializesToNineBytes) {
  FrameHeader header;
  header.length = 0x010203;
  header.type = FrameType::kHeaders;
  header.flags = kFlagEndHeaders | kFlagEndStream;
  header.stream_id = 0x12345678 & 0x7fffffff;
  util::ByteWriter writer;
  WriteFrameHeader(header, writer);
  ASSERT_EQ(writer.size(), kFrameHeaderSize);
  auto parsed = ParseFrameHeader(writer.bytes());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().length, header.length);
  EXPECT_EQ(parsed.value().type, header.type);
  EXPECT_EQ(parsed.value().flags, header.flags);
  EXPECT_EQ(parsed.value().stream_id, header.stream_id);
}

TEST(FrameHeader, ReservedBitIsMaskedOnParse) {
  util::ByteWriter writer;
  writer.WriteU24(0);
  writer.WriteU8(0);
  writer.WriteU8(0);
  writer.WriteU32(0xffffffffu);  // reserved bit set
  auto parsed = ParseFrameHeader(writer.bytes());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().stream_id, 0x7fffffffu);
}

TEST(FrameHeader, TruncatedInputRejected) {
  const Bytes short_bytes(5, 0);
  EXPECT_FALSE(ParseFrameHeader(short_bytes).ok());
}

TEST(Frames, DataRoundTrip) {
  const Bytes body = {1, 2, 3, 4};
  Frame frame = MakeDataFrame(5, body, /*end_stream=*/true);
  EXPECT_TRUE(frame.header.HasFlag(kFlagEndStream));
  auto extracted = ExtractDataPayload(frame);
  ASSERT_TRUE(extracted.ok());
  EXPECT_EQ(extracted.value(), body);
}

TEST(Frames, PaddedDataStripsPadding) {
  Frame frame;
  frame.header.type = FrameType::kData;
  frame.header.stream_id = 1;
  frame.header.flags = kFlagPadded;
  frame.payload = {3, 'a', 'b', 0, 0, 0};  // pad length 3
  auto extracted = ExtractDataPayload(frame);
  ASSERT_TRUE(extracted.ok());
  EXPECT_EQ(util::ToString(extracted.value()), "ab");
}

TEST(Frames, PaddingLongerThanPayloadRejected) {
  Frame frame;
  frame.header.type = FrameType::kData;
  frame.header.flags = kFlagPadded;
  frame.payload = {9, 'a'};
  EXPECT_FALSE(ExtractDataPayload(frame).ok());
}

TEST(Frames, HeadersWithPriorityFieldsExtracts) {
  Frame frame;
  frame.header.type = FrameType::kHeaders;
  frame.header.stream_id = 3;
  frame.header.flags = kFlagPriority;
  util::ByteWriter writer;
  writer.WriteU32(0x80000001u);  // exclusive, dependency 1
  writer.WriteU8(200);           // weight
  writer.WriteString("block");
  frame.payload = std::move(writer).TakeBytes();
  std::optional<PriorityPayload> priority;
  auto block = ExtractHeaderBlockFragment(frame, &priority);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(util::ToString(block.value()), "block");
  ASSERT_TRUE(priority.has_value());
  EXPECT_TRUE(priority->exclusive);
  EXPECT_EQ(priority->dependency, 1u);
  EXPECT_EQ(priority->weight, 200);
}

TEST(Frames, SettingsRoundTrip) {
  const std::vector<SettingsEntry> entries = {{0x7, 1}, {0x4, 65535}};
  Frame frame = MakeSettingsFrame(entries);
  EXPECT_EQ(frame.header.stream_id, 0u);
  auto parsed = ParseSettingsPayload(frame);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0].identifier, 0x7);
  EXPECT_EQ(parsed.value()[0].value, 1u);
}

TEST(Frames, SettingsBadLengthRejected) {
  Frame frame = MakeSettingsFrame({});
  frame.payload = {1, 2, 3};  // not a multiple of 6
  EXPECT_FALSE(ParseSettingsPayload(frame).ok());
}

TEST(Frames, SettingsAckWithPayloadRejected) {
  Frame frame = MakeSettingsAckFrame();
  frame.payload = {0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(ParseSettingsPayload(frame).ok());
}

TEST(Frames, PingRoundTrip) {
  Frame frame = MakePingFrame(0xdeadbeefcafef00dULL, /*ack=*/false);
  EXPECT_EQ(ParsePingPayload(frame).value(), 0xdeadbeefcafef00dULL);
  Frame bad = frame;
  bad.payload.pop_back();
  EXPECT_FALSE(ParsePingPayload(bad).ok());
}

TEST(Frames, GoawayRoundTrip) {
  Frame frame = MakeGoawayFrame(7, ErrorCode::kEnhanceYourCalm, "slow down");
  auto parsed = ParseGoawayPayload(frame);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().last_stream_id, 7u);
  EXPECT_EQ(parsed.value().error_code, ErrorCode::kEnhanceYourCalm);
  EXPECT_EQ(parsed.value().debug_data, "slow down");
}

TEST(Frames, WindowUpdateRoundTripAndZeroRejected) {
  Frame frame = MakeWindowUpdateFrame(3, 1000);
  EXPECT_EQ(ParseWindowUpdatePayload(frame).value(), 1000u);
  Frame zero = MakeWindowUpdateFrame(3, 0);
  EXPECT_FALSE(ParseWindowUpdatePayload(zero).ok());
}

TEST(Frames, RstStreamRoundTrip) {
  Frame frame = MakeRstStreamFrame(9, ErrorCode::kCancel);
  EXPECT_EQ(ParseRstStreamPayload(frame).value(), ErrorCode::kCancel);
}

TEST(Frames, PriorityRoundTrip) {
  PriorityPayload priority{true, 11, 42};
  Frame frame = MakePriorityFrame(13, priority);
  auto parsed = ParsePriorityPayload(frame);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().exclusive);
  EXPECT_EQ(parsed.value().dependency, 11u);
  EXPECT_EQ(parsed.value().weight, 42);
}

TEST(FrameTypeName, CoversAllTypes) {
  EXPECT_STREQ(FrameTypeName(FrameType::kData), "DATA");
  EXPECT_STREQ(FrameTypeName(FrameType::kContinuation), "CONTINUATION");
}

// --- incremental parser ---------------------------------------------------

TEST(FrameParser, ReassemblesByteAtATime) {
  Frame original = MakeDataFrame(1, util::ToBytes("hello world"), true);
  const Bytes wire = SerializeFrame(original);
  FrameParser parser;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    parser.Feed(BytesView(&wire[i], 1));
    auto next = parser.Next();
    ASSERT_TRUE(next.ok());
    if (i + 1 < wire.size()) {
      EXPECT_FALSE(next.value().has_value());
    } else {
      ASSERT_TRUE(next.value().has_value());
      EXPECT_EQ(next.value()->payload, original.payload);
    }
  }
}

TEST(FrameParser, MultipleFramesInOneFeed) {
  Bytes wire;
  for (int i = 0; i < 5; ++i) {
    const Bytes frame = SerializeFrame(MakePingFrame(i, false));
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  FrameParser parser;
  parser.Feed(wire);
  for (int i = 0; i < 5; ++i) {
    auto next = parser.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next.value().has_value());
    EXPECT_EQ(ParsePingPayload(*next.value()).value(),
              static_cast<std::uint64_t>(i));
  }
  EXPECT_FALSE(parser.Next().value().has_value());
}

TEST(FrameParser, OversizedFrameIsAnError) {
  FrameParser parser(16384);
  util::ByteWriter writer;
  writer.WriteU24(16385);
  writer.WriteU8(0);
  writer.WriteU8(0);
  writer.WriteU32(1);
  parser.Feed(writer.bytes());
  EXPECT_FALSE(parser.Next().ok());
}

TEST(FrameParser, RandomChunkingNeverLosesFrames) {
  util::Rng rng(55);
  Bytes wire;
  const int frame_count = 40;
  for (int i = 0; i < frame_count; ++i) {
    Bytes payload(rng.NextBounded(100));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.NextBounded(256));
    const Bytes frame = SerializeFrame(MakeDataFrame(1, payload, false));
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  FrameParser parser;
  int parsed = 0;
  std::size_t offset = 0;
  while (offset < wire.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(1 + rng.NextBounded(37), wire.size() - offset);
    parser.Feed(BytesView(wire.data() + offset, chunk));
    offset += chunk;
    while (true) {
      auto next = parser.Next();
      ASSERT_TRUE(next.ok());
      if (!next.value().has_value()) break;
      ++parsed;
    }
  }
  EXPECT_EQ(parsed, frame_count);
}

}  // namespace
}  // namespace sww::http2
