// Integration tests: the full SWW client/server flow of §5 and the §6.2
// functionality matrix, over in-process connections and loopback TCP.
#include <gtest/gtest.h>

#include <thread>

#include "core/page_builder.hpp"
#include "core/renderer.hpp"
#include "core/session.hpp"
#include "html/parser.hpp"
#include "net/pump.hpp"
#include "net/tcp.hpp"

namespace sww::core {
namespace {

ContentStore GoldfishStore() {
  ContentStore store;
  EXPECT_TRUE(store.AddPage("/", MakeGoldfishPage()).ok());
  return store;
}

TEST(Session, GenerativeModeDeliversPromptsOnly) {
  ContentStore store = GoldfishStore();
  auto session = LocalSession::Start(&store, {});
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session.value()->client().NegotiatedGenerative());
  EXPECT_TRUE(session.value()->server().ServingGenerative());

  auto fetch = session.value()->FetchPage("/");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().mode, "generative");
  EXPECT_EQ(fetch.value().generated_items, 1u);
  // The wire carried only the page with its prompt — no image bytes.
  EXPECT_LT(fetch.value().page_bytes, 1000u);
  EXPECT_EQ(fetch.value().asset_bytes, 0u);
  // The client materialized the image locally.
  ASSERT_EQ(fetch.value().files.size(), 1u);
  EXPECT_GT(fetch.value().files.begin()->second.size(), 100000u);  // 512² PPM
  // Client-side generation cost is the Table 2 medium-image laptop cost.
  EXPECT_NEAR(fetch.value().generation_seconds, 19.0, 1.5);
  // Figure 1 "after": the div now points at the generated file.
  EXPECT_NE(fetch.value().final_html.find("generated/goldfish.ppm"),
            std::string::npos);
}

TEST(Session, NaiveClientGetsServerSideGeneration) {
  // §6.2: "When the client does not support generative content, the server
  // uses the prompt to generate the content before sending it."
  ContentStore store = GoldfishStore();
  LocalSession::Options options;
  options.client.advertised_ability = http2::kGenAbilityNone;
  auto session = LocalSession::Start(&store, options);
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session.value()->client().NegotiatedGenerative());

  auto fetch = session.value()->FetchPage("/");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().mode, "traditional");
  EXPECT_EQ(fetch.value().generated_items, 0u);
  // The image travelled over the wire this time.
  EXPECT_GT(fetch.value().asset_bytes, 100000u);
  EXPECT_EQ(fetch.value().generation_seconds, 0.0);
  // Server paid the generation cost instead (workstation profile).
  EXPECT_GT(session.value()->server().stats().generation_seconds, 0.0);
  EXPECT_EQ(session.value()->server().stats().pages_served_traditional, 1u);
}

TEST(Session, NaiveServerFallsBackToo) {
  ContentStore store = GoldfishStore();
  LocalSession::Options options;
  options.server.advertised_ability = http2::kGenAbilityNone;
  auto session = LocalSession::Start(&store, options);
  ASSERT_TRUE(session.ok());
  auto fetch = session.value()->FetchPage("/");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().mode, "traditional");
}

TEST(Session, SameContentBothModes) {
  // Determinism across serving modes: the client-generated image equals
  // the server-generated one (same prompt, same seed derivation).
  ContentStore store = GoldfishStore();
  auto generative = LocalSession::Start(&store, {});
  LocalSession::Options naive;
  naive.client.advertised_ability = http2::kGenAbilityNone;
  auto traditional = LocalSession::Start(&store, naive);
  auto fetch_generative = generative.value()->FetchPage("/");
  auto fetch_traditional = traditional.value()->FetchPage("/");
  ASSERT_TRUE(fetch_generative.ok());
  ASSERT_TRUE(fetch_traditional.ok());
  ASSERT_EQ(fetch_generative.value().files.size(), 1u);
  ASSERT_EQ(fetch_traditional.value().files.size(), 1u);
  EXPECT_EQ(fetch_generative.value().files.begin()->second,
            fetch_traditional.value().files.begin()->second);
}

TEST(Session, PolicyOverrideServesTraditionalDespiteAbility) {
  // §5.1: "A server can choose to serve traditional content even if the
  // client supports generative ability."
  ContentStore store = GoldfishStore();
  LocalSession::Options options;
  options.server.policy = ServePolicy::kAlwaysTraditional;
  auto session = LocalSession::Start(&store, options);
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session.value()->client().NegotiatedGenerative());
  auto fetch = session.value()->FetchPage("/");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().mode, "traditional");
}

TEST(Session, PolicyCanFlipMidConnection) {
  ContentStore store = GoldfishStore();
  auto session = LocalSession::Start(&store, {});
  ASSERT_TRUE(session.ok());
  auto first = session.value()->FetchPage("/");
  EXPECT_EQ(first.value().mode, "generative");
  // Renewable energy ran out at the edge:
  session.value()->server().SetPolicy(ServePolicy::kAlwaysTraditional);
  auto second = session.value()->FetchPage("/");
  EXPECT_EQ(second.value().mode, "traditional");
}

TEST(Session, NotFoundAndMethodErrors) {
  ContentStore store = GoldfishStore();
  auto session = LocalSession::Start(&store, {});
  auto missing = session.value()->FetchPage("/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().response.status, 404);
}

TEST(Session, TravelBlogFetchesUniqueAssets) {
  // §2.1's full scenario: generated text + stock images + unique photos.
  ContentStore store;
  const TravelBlogPage blog = MakeTravelBlogPage(3, 2);
  ASSERT_TRUE(store.AddPage("/blog", blog.html).ok());
  for (const std::string& path : blog.unique_asset_paths) {
    store.AddAsset(path, util::Bytes(20000, 0x42), "image/x-portable-pixmap");
  }
  auto session = LocalSession::Start(&store, {});
  ASSERT_TRUE(session.ok());
  auto fetch = session.value()->FetchPage("/blog");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().mode, "generative");
  EXPECT_EQ(fetch.value().generated_items, 4u);  // 1 text + 3 stock images
  // 3 generated files + 2 fetched unique photos.
  EXPECT_EQ(fetch.value().files.size(), 5u);
  EXPECT_EQ(fetch.value().asset_bytes, 40000u);
  EXPECT_EQ(session.value()->server().stats().assets_served, 2u);
}

TEST(Session, LandscapePageReproducesFig2Compression) {
  // Figure 2 economics end-to-end: 49 landscape prompts over the wire
  // instead of ~1.4 MB of thumbnails.
  ContentStore store;
  const LandscapePage page = MakeLandscapeSearchPage(49);
  ASSERT_TRUE(store.AddPage("/landscape", page.html).ok());
  LocalSession::Options options;
  options.client.generator.inference_steps = 4;  // keep the test quick
  auto session = LocalSession::Start(&store, options);
  ASSERT_TRUE(session.ok());
  auto fetch = session.value()->FetchPage("/landscape");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().generated_items, 49u);
  const double traditional_bytes =
      static_cast<double>(page.traditional_image_bytes);
  const double prompt_bytes = static_cast<double>(page.total_metadata_bytes);
  EXPECT_GT(traditional_bytes / prompt_bytes, 50.0);
  EXPECT_EQ(fetch.value().files.size(), 49u);
}

TEST(Session, RendererShowsGeneratedMedia) {
  ContentStore store = GoldfishStore();
  auto session = LocalSession::Start(&store, {});
  auto fetch = session.value()->FetchPage("/");
  ASSERT_TRUE(fetch.ok());
  auto doc = html::ParseDocument(fetch.value().final_html);
  ASSERT_TRUE(doc.ok());
  PageRenderer renderer;
  const std::string text = renderer.RenderToText(*doc.value());
  EXPECT_NE(text.find("Meet the goldfish"), std::string::npos);
  EXPECT_NE(text.find("[image 512x512"), std::string::npos);
  EXPECT_NE(text.find("goldfish.ppm"), std::string::npos);
}

TEST(Session, WireStatsShowSettingsExchange) {
  ContentStore store = GoldfishStore();
  auto session = LocalSession::Start(&store, {});
  const auto& frames =
      session.value()->client().connection().wire_stats().frames_sent;
  ASSERT_TRUE(frames.count(http2::FrameType::kSettings));
  EXPECT_GE(frames.at(http2::FrameType::kSettings), 2u);  // SETTINGS + ACK
}

TEST(Session, FullFlowOverLoopbackTcp) {
  // The same endpoints over real sockets: client thread + server thread.
  ContentStore store = GoldfishStore();
  auto listener = net::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value()->port();

  std::thread server_thread([&] {
    auto transport = listener.value()->Accept(5000);
    ASSERT_TRUE(transport.ok());
    auto server = GenerativeServer::Create(&store, {});
    ASSERT_TRUE(server.ok());
    server.value()->StartHandshake();
    // Pump until the client closes or 5s elapse.
    for (int i = 0; i < 5000; ++i) {
      auto pumped = net::PumpOnce(server.value()->connection(),
                                  *transport.value());
      if (!pumped.ok()) break;
      ASSERT_TRUE(server.value()->ProcessEvents().ok());
      if (pumped.value().peer_closed) break;
      if (!pumped.value().made_progress) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });

  auto transport = net::TcpConnect(port);
  ASSERT_TRUE(transport.ok());
  auto client = GenerativeClient::Create({});
  ASSERT_TRUE(client.ok());
  client.value()->StartHandshake();
  auto pump = [&]() -> util::Status {
    auto pumped = net::PumpOnce(client.value()->connection(), *transport.value());
    if (!pumped.ok()) return pumped.error();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return util::Status::Ok();
  };
  auto fetch = client.value()->FetchPage("/", pump);
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().mode, "generative");
  EXPECT_EQ(fetch.value().generated_items, 1u);
  transport.value()->Close();
  server_thread.join();
}

}  // namespace
}  // namespace sww::core
