// obs_test — the metrics registry, span tracer, and exporters.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "json/json.hpp"
#include "obs/clock.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace sww::obs {
namespace {

TEST(Counter, AddAndReset) {
  Registry registry;
  Counter& c = registry.GetCounter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsAreLossless) {
  Registry registry;
  Counter& c = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAndAdd) {
  Registry registry;
  Gauge& g = registry.GetGauge("test.gauge");
  g.Set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.Add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 1.75);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Registry, SameNameReturnsSameInstrument) {
  Registry registry;
  Counter& a = registry.GetCounter("dup");
  Counter& b = registry.GetCounter("dup");
  EXPECT_EQ(&a, &b);
  a.Add();
  EXPECT_EQ(b.value(), 1u);
}

TEST(Registry, HandlesSurviveReset) {
  Registry registry;
  Counter& c = registry.GetCounter("keep.counter");
  Gauge& g = registry.GetGauge("keep.gauge");
  Histogram& h = registry.GetHistogram("keep.histogram");
  c.Add(5);
  g.Set(2.0);
  h.Observe(1.0);
  registry.Reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.Snapshot().count, 0u);
  // The same handles keep working after Reset.
  c.Add();
  EXPECT_EQ(registry.GetCounter("keep.counter").value(), 1u);
}

TEST(Histogram, BucketsAndPercentiles) {
  Registry registry;
  Histogram& h = registry.GetHistogram("test.hist");
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i));
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.sum, 5050.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_DOUBLE_EQ(snap.mean, 50.5);
  // Occupied-bucket compression: every count maps to a grid bucket whose
  // extent brackets it, totals add back up, and nothing overflows.
  ASSERT_EQ(snap.counts.size(), snap.bounds.size() + 1);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
    EXPECT_GT(snap.counts[i], 0u);
    EXPECT_GT(snap.bounds[i], Histogram::LowerBoundForUpper(snap.bounds[i]));
    total += snap.counts[i];
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(snap.counts.back(), 0u);  // overflow bucket empty
  // Quantiles from bucket midpoints: within the grid's 1/32 relative
  // bucket width of the exact order statistics.
  EXPECT_NEAR(snap.p50, 50.0, 50.0 / 32.0);
  EXPECT_NEAR(snap.p95, 95.0, 95.0 / 32.0);
  EXPECT_NEAR(snap.p99, 99.0, 99.0 / 32.0);
}

TEST(Registry, SnapshotIsDeterministicallyOrdered) {
  Registry registry;
  registry.GetCounter("z.last").Add(1);
  registry.GetCounter("a.first").Add(2);
  registry.GetGauge("m.middle").Set(3.0);
  RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters.begin()->first, "a.first");
  EXPECT_EQ(snap.counters.rbegin()->first, "z.last");
  EXPECT_DOUBLE_EQ(snap.gauges.at("m.middle"), 3.0);
}

TEST(ManualClock, AdvancesDeterministically) {
  ManualClock clock;
  EXPECT_EQ(clock.NowNanos(), 0u);
  clock.AdvanceNanos(10);
  EXPECT_EQ(clock.NowNanos(), 10u);
  clock.AdvanceSeconds(1.5);
  EXPECT_EQ(clock.NowNanos(), 1'500'000'010u);
  clock.AdvanceSimulated(0.5);  // virtual hook advances manual time
  EXPECT_EQ(clock.NowNanos(), 2'000'000'010u);
  clock.AdvanceSeconds(-1.0);  // negative advances are ignored
  EXPECT_EQ(clock.NowNanos(), 2'000'000'010u);
}

TEST(SystemClock, SimulatedAdvanceIsNoOp) {
  SystemClock clock;
  const std::uint64_t before = clock.NowNanos();
  clock.AdvanceSimulated(1000.0);
  // Real time moved by nanoseconds at most, not the simulated 1000 s.
  EXPECT_LT(clock.NowNanos() - before, 1'000'000'000u);
}

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Default().SetClock(&clock_);
    Tracer::Default().SetEnabled(true);
    Tracer::Default().Clear();
  }
  void TearDown() override {
    Tracer::Default().Clear();
    Tracer::Default().SetClock(nullptr);
  }
  ManualClock clock_;
};

TEST_F(TracerTest, SpansNestViaThreadStack) {
  Tracer& tracer = Tracer::Default();
  SpanId outer = tracer.BeginSpan("outer", "test");
  clock_.AdvanceNanos(100);
  SpanId inner = tracer.BeginSpan("inner", "test");
  EXPECT_EQ(tracer.CurrentSpan(), inner);
  clock_.AdvanceNanos(50);
  tracer.EndSpan(inner);
  EXPECT_EQ(tracer.CurrentSpan(), outer);
  tracer.EndSpan(outer);
  EXPECT_EQ(tracer.CurrentSpan(), 0u);

  std::vector<Span> spans = tracer.FinishedSpans();
  ASSERT_EQ(spans.size(), 2u);  // finish order: inner first
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent, outer);
  EXPECT_EQ(spans[0].start_nanos, 100u);
  EXPECT_EQ(spans[0].end_nanos, 150u);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].end_nanos, 150u);
}

TEST_F(TracerTest, AsyncSpansSkipTheStack) {
  Tracer& tracer = Tracer::Default();
  SpanId async = tracer.BeginAsyncSpan("async", "test");
  EXPECT_EQ(tracer.CurrentSpan(), 0u);
  SpanId scoped = tracer.BeginSpan("scoped");
  EXPECT_NE(scoped, async);
  tracer.EndSpan(scoped);
  tracer.EndSpan(async);
  EXPECT_EQ(tracer.finished_count(), 2u);
}

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Default();
  tracer.SetEnabled(false);
  SpanId id = tracer.BeginSpan("ignored");
  EXPECT_EQ(id, 0u);
  tracer.AddAttribute(id, "k", "v");  // id 0 is harmless everywhere
  tracer.EndSpan(id);
  EXPECT_EQ(tracer.finished_count(), 0u);
  tracer.SetEnabled(true);
}

TEST_F(TracerTest, AttributesAndDoubleEndAreSafe) {
  Tracer& tracer = Tracer::Default();
  {
    ScopedSpan span("attributed", "test");
    span.AddAttribute("model", "sd3-medium");
    tracer.EndSpan(span.id());  // explicit end; destructor end is a no-op
  }
  std::vector<Span> spans = tracer.FinishedSpans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attributes.size(), 1u);
  EXPECT_EQ(spans[0].attributes[0].first, "model");
  EXPECT_EQ(spans[0].attributes[0].second, "sd3-medium");
}

TEST_F(TracerTest, SnapshotDeterministicUnderManualClock) {
  // Two identical runs under a fresh manual clock produce identical spans.
  auto run = [](ManualClock& clock) {
    Tracer::Default().SetClock(&clock);
    Tracer::Default().Clear();
    ScopedSpan outer("fetch", "core");
    clock.AdvanceSimulated(1.25);
    {
      ScopedSpan inner("generate", "genai");
      clock.AdvanceSimulated(3.5);
    }
  };
  ManualClock first_clock;
  run(first_clock);
  std::vector<Span> first = Tracer::Default().FinishedSpans();
  ManualClock second_clock;
  run(second_clock);
  std::vector<Span> second = Tracer::Default().FinishedSpans();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, second[i].id);
    EXPECT_EQ(first[i].name, second[i].name);
    EXPECT_EQ(first[i].start_nanos, second[i].start_nanos);
    EXPECT_EQ(first[i].end_nanos, second[i].end_nanos);
  }
  EXPECT_DOUBLE_EQ(first.back().DurationSeconds(), 4.75);
}

TEST_F(TracerTest, ChromeTraceExportRoundTripsThroughJsonParse) {
  Tracer& tracer = Tracer::Default();
  {
    ScopedSpan outer("client.fetch_page", "core");
    outer.AddAttribute("path", "/index \"quoted\"\n");
    clock_.AdvanceSimulated(0.001);
    ScopedSpan inner("genai.generate", "genai");
    clock_.AdvanceSimulated(0.002);
  }
  const std::string trace = ExportChromeTrace(tracer.FinishedSpans(), "obs_test");
  auto parsed = json::Parse(trace);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  const json::Value& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  const json::Value* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Metadata events (process_name + thread_name per track) + 2 spans.
  const json::Value& meta = events->AsArray()[0];
  EXPECT_EQ(meta.GetString("ph"), "M");
  EXPECT_EQ(meta.GetString("name"), "process_name");

  int complete = 0;
  bool found_fetch = false;
  for (const json::Value& event : events->AsArray()) {
    const std::string ph = event.GetString("ph");
    ASSERT_TRUE(ph == "X" || ph == "M") << ph;
    if (ph != "X") continue;
    ++complete;
    EXPECT_GE(event.GetNumber("dur", -1.0), 0.0);
    if (event.GetString("name") == "client.fetch_page") {
      found_fetch = true;
      // 3 ms total at microsecond scale.
      EXPECT_NEAR(event.GetNumber("dur"), 3000.0, 1.0);
      const json::Value* args = event.Get("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->GetString("path"), "/index \"quoted\"\n");
    }
  }
  EXPECT_EQ(complete, 2);
  EXPECT_TRUE(found_fetch);
}

TEST(Export, JsonLinesEveryLineParses) {
  Registry registry;
  registry.GetCounter("lines.counter").Add(7);
  registry.GetGauge("lines.gauge").Set(1.25);
  Histogram& h = registry.GetHistogram("lines.hist");
  h.Observe(0.5);
  h.Observe(1.5);
  const std::string out = ExportJsonLines(registry.Snapshot());
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    std::size_t end = out.find('\n', start);
    if (end == std::string::npos) end = out.size();
    const std::string line = out.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    ++lines;
    auto parsed = json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_TRUE(parsed.value().Has("kind"));
    EXPECT_TRUE(parsed.value().Has("name"));
    if (parsed.value().GetString("name") == "lines.counter") {
      EXPECT_EQ(parsed.value().GetInt("value"), 7);
    }
    if (parsed.value().GetString("name") == "lines.hist") {
      EXPECT_EQ(parsed.value().GetString("kind"), "histogram");
      EXPECT_EQ(parsed.value().GetInt("count"), 2);
    }
  }
  EXPECT_EQ(lines, 3u);
}

}  // namespace
}  // namespace sww::obs
