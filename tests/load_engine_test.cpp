// End-to-end tests for the open-loop workload engine: determinism across
// runs and pool sizes (the acceptance criterion — byte-identical
// reports), the coordinated-omission contract (a stall window inflates
// the recorded tail), journaling, SLO evaluation, and the per-scenario
// registry series.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "load/engine.hpp"
#include "load/report.hpp"
#include "load/spec.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "util/thread_pool.hpp"

namespace sww::load {
namespace {

/// Run `spec` against fresh, private observability sinks so runs do not
/// bleed series or journal records into each other.
struct IsolatedRun {
  obs::Registry registry;
  obs::Journal journal{1 << 16};
  util::Result<ScenarioResult> result;

  IsolatedRun(const ScenarioSpec& spec, util::ThreadPool* pool = nullptr)
      : result(util::Error(util::ErrorCode::kInternal, "unset")) {
    EngineOptions options;
    options.pool = pool;
    options.registry = &registry;
    options.journal = &journal;
    result = RunScenario(spec, options);
  }
};

TEST(LoadEngine, SmokeScenarioIsDeterministicAcrossRunsAndPools) {
  const ScenarioSpec spec = FindBuiltinScenario("smoke").value();

  IsolatedRun reference(spec);
  ASSERT_TRUE(reference.result.ok()) << reference.result.error().ToString();
  const std::string reference_report =
      RenderScenarioReport(reference.result.value());
  EXPECT_FALSE(reference_report.empty());

  // Repeated run: byte-identical report.
  {
    IsolatedRun repeat(spec);
    ASSERT_TRUE(repeat.result.ok());
    EXPECT_EQ(RenderScenarioReport(repeat.result.value()), reference_report);
  }
  // Different pool sizes: the precompute pass is stateless, so the
  // report must not depend on who computed which arrival.
  for (int threads : {1, 2, 8}) {
    util::ThreadPool pool(threads);
    IsolatedRun run(spec, &pool);
    ASSERT_TRUE(run.result.ok()) << "pool size " << threads;
    EXPECT_EQ(RenderScenarioReport(run.result.value()), reference_report)
        << "pool size " << threads;
  }
}

TEST(LoadEngine, SmokeScenarioShape) {
  const ScenarioSpec spec = FindBuiltinScenario("smoke").value();
  IsolatedRun run(spec);
  ASSERT_TRUE(run.result.ok());
  const ScenarioResult& result = run.result.value();

  // ~6 rps over 60 s of virtual time.
  EXPECT_EQ(result.requests, 360u);
  EXPECT_EQ(result.latency.count, result.requests);
  EXPECT_GT(result.goodput_rps, 0.0);
  EXPECT_GT(result.delivered_bytes, 0u);
  EXPECT_GT(result.edge_requests, 0u);
  EXPECT_GT(result.edge_hits, 0u);
  EXPECT_GT(result.total_energy_wh, 0.0);
  EXPECT_GT(result.energy_joules_per_page, 0.0);
  EXPECT_GT(result.gco2e_per_page, 0.0);
  // Calibrated overhead is deterministic and strictly positive.
  EXPECT_GT(result.server_overhead_seconds, 0.0);

  // One SLO objective over load.smoke.latency, evaluated at run end.
  ASSERT_FALSE(result.slo.empty());
  EXPECT_EQ(result.slo.front().objective.series, "load.smoke.latency");
}

TEST(LoadEngine, StallWindowInflatesRecordedTail) {
  // The coordinated-omission check: identical arrival stream, one 6 s
  // stall — the tail must absorb the queueing delay.
  const ScenarioSpec smoke = FindBuiltinScenario("smoke").value();
  const ScenarioSpec stalled = FindBuiltinScenario("smoke-stall").value();

  IsolatedRun smoke_run(smoke);
  IsolatedRun stalled_run(stalled);
  ASSERT_TRUE(smoke_run.result.ok());
  ASSERT_TRUE(stalled_run.result.ok());
  const ScenarioResult& a = smoke_run.result.value();
  const ScenarioResult& b = stalled_run.result.value();

  // Same open-loop arrivals: the request count cannot thin out.
  EXPECT_EQ(a.requests, b.requests);
  const double p99_smoke = obs::HistogramSnapshotQuantile(a.latency, 99.0);
  const double p99_stall = obs::HistogramSnapshotQuantile(b.latency, 99.0);
  EXPECT_GT(p99_stall, p99_smoke * 2.0)
      << "stall did not land in the latency distribution";
  EXPECT_GT(obs::HistogramSnapshotQuantile(b.queue_wait, 99.0),
            obs::HistogramSnapshotQuantile(a.queue_wait, 99.0));
}

TEST(LoadEngine, JournalsOneLoadRecordPerRequest) {
  const ScenarioSpec spec = FindBuiltinScenario("smoke").value();
  IsolatedRun run(spec);
  ASSERT_TRUE(run.result.ok());
  const ScenarioResult& result = run.result.value();

  std::uint64_t load_records = 0;
  for (const obs::JournalRecord& record : run.journal.Records()) {
    if (record.kind == "load") ++load_records;
  }
  EXPECT_EQ(load_records, result.requests);
  EXPECT_EQ(result.journal_dropped, 0u);
  EXPECT_GE(result.journal_recorded, result.requests);
}

TEST(LoadEngine, RegistrySeriesCarryTheRun) {
  const ScenarioSpec spec = FindBuiltinScenario("smoke").value();
  IsolatedRun run(spec);
  ASSERT_TRUE(run.result.ok());
  const ScenarioResult& result = run.result.value();

  EXPECT_EQ(run.registry.GetCounter("load.smoke.requests").value(),
            result.requests);
  EXPECT_EQ(run.registry.GetCounter("load.smoke.errors").value(),
            result.errors);
  const obs::HistogramSnapshot latency =
      run.registry.GetHistogram("load.smoke.latency").Snapshot();
  EXPECT_EQ(latency.count, result.requests);
  // The registry histogram mirrors the private snapshot exactly.
  EXPECT_DOUBLE_EQ(obs::HistogramSnapshotQuantile(latency, 99.0),
                   obs::HistogramSnapshotQuantile(result.latency, 99.0));
}

TEST(LoadEngine, ClientGenerativeModeUsesClientCache) {
  // diurnal-mixed is client-generative with a revisit-heavy population;
  // its client prompt cache must see hits and its latency tail sits at
  // device-generation scale.
  ScenarioSpec spec = FindBuiltinScenario("diurnal-mixed").value();
  spec.duration_seconds = 300.0;  // trim for test runtime
  IsolatedRun run(spec);
  ASSERT_TRUE(run.result.ok());
  const ScenarioResult& result = run.result.value();
  EXPECT_GT(result.requests, 0u);
  EXPECT_GT(result.client_cache_hits, 0u);
}

TEST(LoadEngine, SmokeReportMatchesCheckedInGolden) {
  // The same artifact CI regenerates and diffs (fleet-smoke job); a
  // drift here means the modeled numbers changed, not a flake.
  std::ifstream in(std::string(SWW_GOLDEN_DIR) + "/load.report.txt");
  ASSERT_TRUE(in.good()) << "golden file missing";
  std::ostringstream slurp;
  slurp << in.rdbuf();
  const std::string golden = slurp.str();
  ASSERT_FALSE(golden.empty());

  // Default options, like the tool: the edge journals into
  // Journal::Default(), so the report's journal line counts one "load"
  // record plus one "edge" record per request only when the engine
  // shares that sink.  Deltas are computed across the run, so prior
  // records in this process do not shift the count.
  auto result = RunScenario(FindBuiltinScenario("smoke").value());
  ASSERT_TRUE(result.ok());
  const std::string report = RenderLoadReport({result.value()});
  EXPECT_EQ(report, golden)
      << "report drifted from tests/golden/load.report.txt; if the change "
         "is intentional, regenerate with: sww_load --scenario smoke "
         "--out-dir tests/golden";
}

TEST(LoadEngine, InvalidSpecIsRejected) {
  ScenarioSpec spec = FindBuiltinScenario("smoke").value();
  spec.name = "not a metric name";
  EngineOptions options;
  obs::Registry registry;
  obs::Journal journal;
  options.registry = &registry;
  options.journal = &journal;
  EXPECT_FALSE(RunScenario(spec, options).ok());
}

}  // namespace
}  // namespace sww::load
