// Tests for the client-side prompt cache: revisits regenerate on-device
// with zero network traffic.
#include <gtest/gtest.h>

#include "core/page_builder.hpp"
#include "core/prompt_cache.hpp"
#include "core/session.hpp"

namespace sww::core {
namespace {

// --- unit: the cache itself ---------------------------------------------------

TEST(PromptCache, HitAfterPut) {
  PromptCache cache(1024);
  EXPECT_FALSE(cache.Get("/a").has_value());
  cache.Put("/a", "body-a");
  auto hit = cache.Get("/a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "body-a");
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PromptCache, PutReplacesExisting) {
  PromptCache cache(1024);
  cache.Put("/a", "v1");
  cache.Put("/a", "version-two");
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(*cache.Get("/a"), "version-two");
  EXPECT_EQ(cache.stored_bytes(), 11u);
}

TEST(PromptCache, LruEvictionUnderPressure) {
  // One stripe: global LRU order, so eviction picks the true coldest entry.
  PromptCache cache(20, /*stripes=*/1);
  cache.Put("/a", "0123456789");  // 10 B
  cache.Put("/b", "0123456789");  // 10 B — full
  (void)cache.Get("/a");          // /a now most recent
  cache.Put("/c", "0123456789");  // evicts /b
  EXPECT_TRUE(cache.Get("/a").has_value());
  EXPECT_FALSE(cache.Get("/b").has_value());
  EXPECT_TRUE(cache.Get("/c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stored_bytes(), 20u);
}

TEST(PromptCache, OversizedEntryNotCached) {
  PromptCache cache(8);
  cache.Put("/big", "way too large for this cache");
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(PromptCache, InvalidateAndClear) {
  PromptCache cache(1024);
  cache.Put("/a", "x");
  cache.Put("/b", "y");
  cache.Invalidate("/a");
  EXPECT_FALSE(cache.Get("/a").has_value());
  EXPECT_TRUE(cache.Get("/b").has_value());
  cache.Clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.stored_bytes(), 0u);
}

// --- integration: cached revisits ------------------------------------------------

TEST(PromptCacheE2E, RevisitTouchesNoNetwork) {
  ContentStore store;
  ASSERT_TRUE(store.AddPage("/", MakeGoldfishPage()).ok());
  LocalSession::Options options;
  options.client.enable_prompt_cache = true;
  auto session = LocalSession::Start(&store, options);
  ASSERT_TRUE(session.ok());

  auto first = session.value()->FetchPage("/");
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().from_cache);
  EXPECT_GT(first.value().page_bytes, 0u);
  EXPECT_EQ(session.value()->server().stats().requests, 1u);

  auto second = session.value()->FetchPage("/");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().from_cache);
  EXPECT_EQ(second.value().page_bytes, 0u);
  // The server never saw the revisit.
  EXPECT_EQ(session.value()->server().stats().requests, 1u);
  // Same content regenerated.
  EXPECT_EQ(first.value().files, second.value().files);
  EXPECT_EQ(first.value().final_html, second.value().final_html);
  // And the generation cost was paid again (it is compute, not storage).
  EXPECT_NEAR(second.value().generation_seconds,
              first.value().generation_seconds, 1e-9);
}

TEST(PromptCacheE2E, TraditionalPagesAreNotCached) {
  ContentStore store;
  ASSERT_TRUE(store.AddPage("/", MakeGoldfishPage()).ok());
  LocalSession::Options options;
  options.client.enable_prompt_cache = true;
  options.client.advertised_ability = http2::kGenAbilityNone;
  auto session = LocalSession::Start(&store, options);
  ASSERT_TRUE(session.ok());
  auto first = session.value()->FetchPage("/");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().mode, "traditional");
  auto second = session.value()->FetchPage("/");
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().from_cache);
  EXPECT_EQ(session.value()->server().stats().requests, 4u);  // 2× page+asset
}

TEST(PromptCacheE2E, CacheDisabledByDefault) {
  ContentStore store;
  ASSERT_TRUE(store.AddPage("/", MakeGoldfishPage()).ok());
  auto session = LocalSession::Start(&store, {});
  (void)session.value()->FetchPage("/");
  auto second = session.value()->FetchPage("/");
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().from_cache);
  EXPECT_EQ(session.value()->server().stats().requests, 2u);
}

TEST(PromptCacheE2E, CacheFootprintIsTiny) {
  // The whole point: the 49-image Figure 2 page caches in ~18 kB of
  // prompts where an image cache would hold ~1.4 MB.
  ContentStore store;
  const LandscapePage page = MakeLandscapeSearchPage(49);
  ASSERT_TRUE(store.AddPage("/landscape", page.html).ok());
  LocalSession::Options options;
  options.client.enable_prompt_cache = true;
  options.client.generator.inference_steps = 3;  // keep the test fast
  auto session = LocalSession::Start(&store, options);
  auto first = session.value()->FetchPage("/landscape");
  ASSERT_TRUE(first.ok());
  const PromptCache& cache = session.value()->client().prompt_cache();
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_LT(cache.stored_bytes(), 25000u);
  EXPECT_GT(page.traditional_image_bytes / cache.stored_bytes(), 50u);
  auto second = session.value()->FetchPage("/landscape");
  EXPECT_TRUE(second.value().from_cache);
  EXPECT_EQ(second.value().generated_items, 49u);
}

}  // namespace
}  // namespace sww::core
