// Tests for src/json — the metadata dictionary format of §4.1.
#include <gtest/gtest.h>

#include "json/json.hpp"

namespace sww::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Parse("null").value().is_null());
  EXPECT_EQ(Parse("true").value().AsBool(), true);
  EXPECT_EQ(Parse("false").value().AsBool(), false);
  EXPECT_DOUBLE_EQ(Parse("3.5").value().AsNumber(), 3.5);
  EXPECT_DOUBLE_EQ(Parse("-0.25e2").value().AsNumber(), -25.0);
  EXPECT_EQ(Parse("\"hi\"").value().AsString(), "hi");
}

TEST(JsonParse, MetadataDictionary) {
  // The exact shape the HTML parser passes to the media generator.
  auto value = Parse(R"({"prompt":"A cartoon goldfish","name":"goldfish","width":512,"height":512})");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value().GetString("prompt"), "A cartoon goldfish");
  EXPECT_EQ(value.value().GetInt("width"), 512);
  EXPECT_EQ(value.value().GetInt("missing", 7), 7);
  EXPECT_TRUE(value.value().Has("name"));
  EXPECT_FALSE(value.value().Has("nope"));
}

TEST(JsonParse, NestedStructures) {
  auto value = Parse(R"({"bullets":["a","b"],"deep":{"x":[1,2,3]}})");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value().Get("bullets")->AsArray().size(), 2u);
  EXPECT_EQ(value.value().Get("deep")->Get("x")->AsArray()[2].AsInt(), 3);
}

TEST(JsonParse, StringEscapes) {
  auto value = Parse(R"("a\"b\\c\nd\tA")");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value().AsString(), "a\"b\\c\nd\tA");
}

TEST(JsonParse, SurrogatePairDecodesToUtf8) {
  auto value = Parse(R"("😀")");  // 😀
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value().AsString(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, WhitespaceTolerant) {
  auto value = Parse("  {\n\t\"a\" : [ 1 , 2 ]\r\n}  ");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value().Get("a")->AsArray().size(), 2u);
}

class JsonInvalidInput : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonInvalidInput, IsRejected) {
  EXPECT_FALSE(Parse(GetParam()).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, JsonInvalidInput,
    ::testing::Values("", "{", "}", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru",
                      "01", "1.", "1e", "\"unterminated", "\"bad\\q\"",
                      "\"\\u12\"", "{\"a\":1}x", "nul", "[1 2]", "-",
                      "\"\\ud800\"", "{'a':1}", "{\"a\":1,}"));

TEST(JsonParse, DepthLimitRejectsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 400; ++i) deep += "[";
  for (int i = 0; i < 400; ++i) deep += "]";
  EXPECT_FALSE(Parse(deep).ok());
}

TEST(JsonDump, CompactAndDeterministic) {
  Value value{Object{}};
  value.Set("width", 512);
  value.Set("prompt", "fish");
  value.Set("name", "goldfish");
  // std::map ordering → alphabetical keys, no whitespace.
  EXPECT_EQ(value.Dump(), R"({"name":"goldfish","prompt":"fish","width":512})");
}

TEST(JsonDump, RoundTripsThroughParse) {
  const std::string original =
      R"({"a":[1,2.5,"x",true,null],"b":{"c":"\n\""}})";
  auto first = Parse(original);
  ASSERT_TRUE(first.ok());
  auto second = Parse(first.value().Dump());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());
}

TEST(JsonDump, IntegersHaveNoDecimalPoint) {
  Value value{Object{}};
  value.Set("w", 224);
  EXPECT_EQ(value.Dump(), R"({"w":224})");
}

TEST(JsonDump, PrettyIsIndentedAndReparses) {
  auto value = Parse(R"({"a":[1,2],"b":"x"})").value();
  const std::string pretty = value.DumpPretty();
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Parse(pretty).value(), value);
}

TEST(JsonValue, TypeMismatchThrows) {
  Value value(3.0);
  EXPECT_THROW(value.AsString(), std::logic_error);
  EXPECT_THROW(value.AsArray(), std::logic_error);
  EXPECT_THROW(Value("x").AsNumber(), std::logic_error);
}

TEST(JsonValue, SetCreatesObjectFromNull) {
  Value value;
  value.Set("k", "v");
  EXPECT_EQ(value.GetString("k"), "v");
}

TEST(JsonValue, ControlCharactersEscapeOnDump) {
  Value value(std::string("a\x01") + "b");
  EXPECT_EQ(value.Dump(), "\"a\\u0001b\"");
}

}  // namespace
}  // namespace sww::json
