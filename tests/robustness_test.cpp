// Robustness suite: fuzz-style property tests and failure injection.
// Network-facing parsers must never crash, hang, or mis-handle hostile
// input — they either produce a value or a typed error, and connections
// die with a GOAWAY rather than undefined behaviour.
#include <gtest/gtest.h>

#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "hpack/hpack.hpp"
#include "hpack/huffman.hpp"
#include "html/entities.hpp"
#include "html/generated_content.hpp"
#include "html/parser.hpp"
#include "http2/connection.hpp"
#include "json/json.hpp"
#include "net/pump.hpp"
#include "util/rng.hpp"

namespace sww {
namespace {

util::Bytes RandomBytes(util::Rng& rng, std::size_t max_length) {
  util::Bytes bytes(rng.NextBounded(max_length));
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.NextBounded(256));
  return bytes;
}

std::string RandomAsciiSoup(util::Rng& rng, std::size_t max_length) {
  static const char kChars[] =
      "<>/=\"' abcdefgXYZ&;#{}[]:,.!-\t\nclassdivimgmetadatapromptgenerated";
  std::string out;
  const std::size_t length = rng.NextBounded(max_length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kChars[rng.NextIndex(sizeof(kChars) - 1)]);
  }
  return out;
}

// --- parser fuzzing ----------------------------------------------------------

TEST(Fuzz, HpackDecoderSurvivesRandomBlocks) {
  util::Rng rng(0xF00D);
  hpack::Decoder decoder;
  int decoded = 0, rejected = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const util::Bytes block = RandomBytes(rng, 64);
    auto result = decoder.DecodeBlock(block);
    result.ok() ? ++decoded : ++rejected;
  }
  // Both outcomes occur; neither crashes.
  EXPECT_GT(decoded, 0);
  EXPECT_GT(rejected, 0);
}

TEST(Fuzz, HuffmanDecoderSurvivesRandomBytes) {
  util::Rng rng(0xBEEF);
  for (int trial = 0; trial < 2000; ++trial) {
    const util::Bytes data = RandomBytes(rng, 48);
    (void)hpack::HuffmanDecode(data);  // value or error; never UB
  }
  SUCCEED();
}

TEST(Fuzz, FrameParserSurvivesRandomStreams) {
  util::Rng rng(0xCAFE);
  for (int trial = 0; trial < 500; ++trial) {
    http2::FrameParser parser;
    parser.Feed(RandomBytes(rng, 256));
    for (int i = 0; i < 64; ++i) {
      auto next = parser.Next();
      if (!next.ok() || !next.value().has_value()) break;
    }
  }
  SUCCEED();
}

TEST(Fuzz, ServerConnectionSurvivesGarbageAfterPreface) {
  util::Rng rng(0x5EED);
  for (int trial = 0; trial < 300; ++trial) {
    http2::Connection::Options options;
    options.local_settings.set_gen_ability(http2::kGenAbilityFull);
    http2::Connection server(http2::Connection::Role::kServer, options);
    server.StartHandshake();
    util::Bytes wire = util::ToBytes(std::string(http2::kClientPreface));
    // A valid SETTINGS frame first (so random frames reach deeper states
    // half the time), then garbage.
    if (rng.NextBool()) {
      const util::Bytes settings =
          http2::SerializeFrame(http2::MakeSettingsFrame({}));
      wire.insert(wire.end(), settings.begin(), settings.end());
    }
    const util::Bytes garbage = RandomBytes(rng, 128);
    wire.insert(wire.end(), garbage.begin(), garbage.end());
    auto status = server.Receive(wire);
    if (!status.ok()) {
      EXPECT_TRUE(server.dead());
      // A GOAWAY was queued for the peer before dying.
      const util::Bytes out = server.TakeOutput();
      EXPECT_FALSE(out.empty());
    }
  }
}

TEST(Fuzz, HtmlParserSurvivesTagSoup) {
  util::Rng rng(0xD00D);
  for (int trial = 0; trial < 500; ++trial) {
    const std::string soup = RandomAsciiSoup(rng, 300);
    auto doc = html::ParseDocument(soup);
    if (!doc.ok()) continue;  // only the depth limit may reject
    // Whatever parsed must re-serialize and re-parse to a fixed point.
    const std::string once = doc.value()->Serialize();
    auto doc2 = html::ParseDocument(once);
    ASSERT_TRUE(doc2.ok());
    EXPECT_EQ(once, doc2.value()->Serialize()) << "trial " << trial;
  }
}

TEST(Fuzz, JsonParserSurvivesNoise) {
  util::Rng rng(0xACED);
  int parsed = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string text = RandomAsciiSoup(rng, 80);
    if (json::Parse(text).ok()) ++parsed;
  }
  // Random soup virtually never parses — but must never crash.
  EXPECT_LT(parsed, 50);
}

TEST(Fuzz, GeneratedContentExtractionToleratesHostileMetadata) {
  util::Rng rng(0x1CEB);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string html =
        R"(<div class="generated content" content-type="img" metadata=")" +
        html::EscapeAttribute(RandomAsciiSoup(rng, 60)) + R"("></div>)";
    auto doc = html::ParseDocument(html);
    ASSERT_TRUE(doc.ok());
    // Either a valid spec or a reported error — never a crash, never a
    // silent half-parsed spec.
    html::ExtractionResult result = html::ExtractGeneratedContent(*doc.value());
    EXPECT_EQ(result.specs.size() + result.errors.size(), 1u);
  }
}

// --- protocol property: chunking independence ---------------------------------

TEST(Property, ConnectionResultIndependentOfChunking) {
  // The same wire bytes, delivered in any chunking, produce the same
  // stream state.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    http2::Connection::Options options;
    http2::Connection client(http2::Connection::Role::kClient, options);
    http2::Connection server(http2::Connection::Role::kServer, options);
    client.StartHandshake();
    server.StartHandshake();
    (void)server.Receive(client.TakeOutput());
    hpack::HeaderList request = {{":method", "GET", false},
                                 {":scheme", "https", false},
                                 {":path", "/x", false}};
    (void)client.Receive(server.TakeOutput());
    (void)client.SubmitRequest(request, util::ToBytes("hello body"));
    const util::Bytes wire = client.TakeOutput();

    // Reference: single delivery.
    http2::Connection reference(http2::Connection::Role::kServer, options);
    reference.StartHandshake();
    const util::Bytes preface_and_settings = [] {
      http2::Connection c(http2::Connection::Role::kClient, {});
      c.StartHandshake();
      return c.TakeOutput();
    }();
    // Build the full byte stream the server sees.
    util::Bytes full;
    {
      http2::Connection c(http2::Connection::Role::kClient, options);
      c.StartHandshake();
      util::Bytes handshake = c.TakeOutput();
      // Server's settings not required before client sends.
      (void)c.SubmitRequest(request, util::ToBytes("hello body"));
      util::Bytes rest = c.TakeOutput();
      full = std::move(handshake);
      full.insert(full.end(), rest.begin(), rest.end());
    }
    ASSERT_TRUE(reference.Receive(full).ok());

    // Random chunking must land in the same state.
    http2::Connection chunked(http2::Connection::Role::kServer, options);
    chunked.StartHandshake();
    util::Rng rng(seed);
    std::size_t offset = 0;
    while (offset < full.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng.NextBounded(13), full.size() - offset);
      ASSERT_TRUE(chunked
                      .Receive(util::BytesView(full.data() + offset, n))
                      .ok());
      offset += n;
    }
    const http2::Stream* a = reference.FindStream(1);
    const http2::Stream* b = chunked.FindStream(1);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->headers, b->headers);
    EXPECT_EQ(a->body, b->body);
    EXPECT_EQ(a->state, b->state);
  }
}

// --- failure injection -----------------------------------------------------------

TEST(FailureInjection, ClientSurfacesTransportDeathMidFetch) {
  core::ContentStore store;
  ASSERT_TRUE(store.AddPage("/", core::MakeGoldfishPage()).ok());
  auto client = core::GenerativeClient::Create({});
  ASSERT_TRUE(client.ok());
  client.value()->StartHandshake();
  int pumps = 0;
  auto dying_pump = [&pumps]() -> util::Status {
    if (++pumps > 3) {
      return util::Error(util::ErrorCode::kIo, "transport died");
    }
    return util::Status::Ok();
  };
  auto fetch = client.value()->FetchPage("/", dying_pump);
  ASSERT_FALSE(fetch.ok());
  EXPECT_EQ(fetch.error().code, util::ErrorCode::kIo);
}

TEST(FailureInjection, PumpThatNeverProgressesTimesOutCleanly) {
  auto client = core::GenerativeClient::Create({});
  ASSERT_TRUE(client.ok());
  client.value()->StartHandshake();
  auto black_hole = []() -> util::Status { return util::Status::Ok(); };
  auto fetch = client.value()->FetchRaw("/", black_hole);
  ASSERT_FALSE(fetch.ok());  // bounded retries, then a typed error
  EXPECT_EQ(fetch.error().code, util::ErrorCode::kIo);
}

TEST(FailureInjection, ServerAnswers405ForNonGet) {
  core::ContentStore store;
  ASSERT_TRUE(store.AddPage("/", core::MakeGoldfishPage()).ok());
  auto session = core::LocalSession::Start(&store, {});
  ASSERT_TRUE(session.ok());
  // Issue a POST through the raw connection.
  core::Request request;
  request.method = "POST";
  request.path = "/";
  auto stream_id = session.value()->client().connection().SubmitRequest(
      request.ToHeaders(), util::ToBytes("body"));
  ASSERT_TRUE(stream_id.ok());
  auto pump = session.value()->Pump();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pump().ok());
  }
  const http2::Stream* stream =
      session.value()->client().connection().FindStream(stream_id.value());
  ASSERT_NE(stream, nullptr);
  auto response = core::ParseResponse(stream->headers, stream->body);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 405);
  EXPECT_EQ(response.value().Header("allow").value_or(""), "GET");
}

TEST(FailureInjection, MalformedRequestGets400NotConnectionDeath) {
  core::ContentStore store;
  ASSERT_TRUE(store.AddPage("/", core::MakeGoldfishPage()).ok());
  auto session = core::LocalSession::Start(&store, {});
  ASSERT_TRUE(session.ok());
  // Hand-craft a header list with a pseudo-header after a regular header —
  // valid HPACK, invalid HTTP semantics.
  hpack::HeaderList bad = {{":method", "GET", false},
                           {"accept", "*/*", false},
                           {":path", "/", false}};
  auto stream_id =
      session.value()->client().connection().SubmitRequest(bad, {});
  ASSERT_TRUE(stream_id.ok());
  auto pump = session.value()->Pump();
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(pump().ok());
  const http2::Stream* stream =
      session.value()->client().connection().FindStream(stream_id.value());
  ASSERT_NE(stream, nullptr);
  auto response = core::ParseResponse(stream->headers, stream->body);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 400);
  // The connection itself survives: a good request still works.
  auto fetch = session.value()->FetchPage("/");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().response.status, 200);
}

TEST(FailureInjection, StoreRefusesPageWithBrokenMetadataUpFront) {
  // Defense in depth: invalid pages are rejected at authoring time, so
  // the serving path never meets them.
  core::ContentStore store;
  const std::string bad =
      R"(<div class="generated content" content-type="img" metadata="{oops"></div>)";
  auto status = store.AddPage("/bad", bad);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kMalformed);
}

TEST(FailureInjection, HugeHeaderListRejectedByReceiver) {
  http2::Connection::Options server_options;
  server_options.local_settings.set_max_header_list_size(256);
  http2::Connection server(http2::Connection::Role::kServer, server_options);
  http2::Connection client(http2::Connection::Role::kClient, {});
  client.StartHandshake();
  server.StartHandshake();
  net::DirectLinkExchange(client, server);
  hpack::HeaderList request = {{":method", "GET", false},
                               {":scheme", "https", false},
                               {":path", "/", false},
                               {"x-big", std::string(1000, 'x'), false}};
  ASSERT_TRUE(client.SubmitRequest(request, {}).ok());
  auto status = server.Receive(client.TakeOutput());
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(server.dead());
}

}  // namespace
}  // namespace sww
