// Tests for the HPACK codec, anchored on RFC 7541 Appendix C examples.
#include <gtest/gtest.h>

#include "hpack/hpack.hpp"
#include "hpack/static_table.hpp"
#include "util/bytes.hpp"

namespace sww::hpack {
namespace {

using util::ByteReader;
using util::Bytes;
using util::FromHex;
using util::HexDump;

// --- integers (RFC 7541 C.1) ----------------------------------------------

TEST(HpackInteger, SmallValueFitsPrefix) {
  Bytes out;
  EncodeInteger(10, 5, 0x00, out);
  EXPECT_EQ(HexDump(out), "0a");
  ByteReader reader(out);
  EXPECT_EQ(DecodeInteger(reader, 5).value(), 10u);
}

TEST(HpackInteger, C12LargeValueWithContinuation) {
  // RFC 7541 C.1.2: 1337 with 5-bit prefix → 1f 9a 0a.
  Bytes out;
  EncodeInteger(1337, 5, 0x00, out);
  EXPECT_EQ(HexDump(out), "1f 9a 0a");
  ByteReader reader(out);
  EXPECT_EQ(DecodeInteger(reader, 5).value(), 1337u);
}

TEST(HpackInteger, C13OctetBoundary) {
  // RFC 7541 C.1.3: 42 with 8-bit prefix → 2a.
  Bytes out;
  EncodeInteger(42, 8, 0x00, out);
  EXPECT_EQ(HexDump(out), "2a");
}

TEST(HpackInteger, FlagsArePreserved) {
  Bytes out;
  EncodeInteger(2, 7, 0x80, out);
  EXPECT_EQ(HexDump(out), "82");  // indexed field, index 2
}

TEST(HpackInteger, TruncatedContinuationFails) {
  const Bytes truncated = {0x1f};  // needs continuation bytes
  ByteReader reader(truncated);
  EXPECT_FALSE(DecodeInteger(reader, 5).ok());
}

TEST(HpackInteger, OverflowRejected) {
  Bytes malicious = {0x1f};
  for (int i = 0; i < 12; ++i) malicious.push_back(0xff);
  malicious.push_back(0x7f);
  ByteReader reader(malicious);
  EXPECT_FALSE(DecodeInteger(reader, 5).ok());
}

class IntegerRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(IntegerRoundTrip, SurvivesEncodeDecode) {
  const auto [value, prefix] = GetParam();
  Bytes out;
  EncodeInteger(value, prefix, 0x00, out);
  ByteReader reader(out);
  EXPECT_EQ(DecodeInteger(reader, prefix).value(), value);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntegerRoundTrip,
    ::testing::Combine(::testing::Values(0ull, 1ull, 30ull, 31ull, 32ull,
                                         127ull, 128ull, 16383ull, 1337ull,
                                         (1ull << 21), (1ull << 40)),
                       ::testing::Values(4, 5, 6, 7, 8)));

// --- strings ----------------------------------------------------------------

TEST(HpackString, ShortBinaryStaysRaw) {
  Bytes out;
  EncodeString("\x01\x02", out);  // Huffman would expand; raw chosen
  EXPECT_EQ(out[0], 0x02);        // length 2, H bit clear
  ByteReader reader(out);
  EXPECT_EQ(DecodeString(reader).value(), "\x01\x02");
}

TEST(HpackString, CompressibleTextUsesHuffman) {
  Bytes out;
  EncodeString("www.example.com", out);
  EXPECT_EQ(out[0] & 0x80, 0x80);  // H bit set
  EXPECT_EQ(out[0] & 0x7f, 12);    // 12 Huffman bytes, not 15 raw
  ByteReader reader(out);
  EXPECT_EQ(DecodeString(reader).value(), "www.example.com");
}

TEST(HpackString, LengthBeyondBlockRejected) {
  const Bytes bad = {0x7f, 0xff};  // claims a huge raw length
  ByteReader reader(bad);
  EXPECT_FALSE(DecodeString(reader).ok());
}

// --- static table -----------------------------------------------------------

TEST(HpackStaticTable, KnownEntries) {
  EXPECT_EQ(StaticTableEntry(2).value().name, ":method");
  EXPECT_EQ(StaticTableEntry(2).value().value, "GET");
  EXPECT_EQ(StaticTableEntry(8).value().name, ":status");
  EXPECT_EQ(StaticTableEntry(8).value().value, "200");
  EXPECT_EQ(StaticTableEntry(61).value().name, "www-authenticate");
  // A bad index is peer-controlled wire data: an error, never an exception.
  EXPECT_FALSE(StaticTableEntry(0).ok());
  EXPECT_FALSE(StaticTableEntry(62).ok());
  EXPECT_EQ(StaticTableEntry(62).error().code, util::ErrorCode::kCompression);
}

TEST(HpackStaticTable, Lookup) {
  EXPECT_EQ(StaticTableFind(":method", "GET"), 2u);
  EXPECT_EQ(StaticTableFind(":method", "PUT"), 0u);
  EXPECT_EQ(StaticTableFindName("cookie"), 32u);
  EXPECT_EQ(StaticTableFindName("x-custom"), 0u);
}

// --- dynamic table ------------------------------------------------------------

TEST(HpackDynamicTable, InsertAndIndex) {
  DynamicTable table(4096);
  table.Insert("a", "1");
  table.Insert("b", "2");
  EXPECT_EQ(table.entry_count(), 2u);
  EXPECT_EQ(table.At(0).name, "b");  // newest first
  EXPECT_EQ(table.At(1).name, "a");
  EXPECT_EQ(table.Find("a", "1"), 1u);
  EXPECT_EQ(table.FindName("b"), 0u);
  EXPECT_EQ(table.Find("a", "x"), DynamicTable::npos);
}

TEST(HpackDynamicTable, EntrySizeIncludesOverhead) {
  DynamicTable table(4096);
  table.Insert("ab", "cde");
  EXPECT_EQ(table.size_bytes(), 2u + 3u + 32u);
}

TEST(HpackDynamicTable, EvictsOldestWhenFull) {
  DynamicTable table(80);  // fits two tiny entries (each 34-36 bytes)
  table.Insert("a", "1");  // 34
  table.Insert("b", "2");  // 34
  table.Insert("c", "3");  // 34 → evicts "a"
  EXPECT_EQ(table.entry_count(), 2u);
  EXPECT_EQ(table.FindName("a"), DynamicTable::npos);
  EXPECT_EQ(table.At(0).name, "c");
}

TEST(HpackDynamicTable, OversizedEntryEmptiesTable) {
  DynamicTable table(64);
  table.Insert("a", "1");
  table.Insert("name", std::string(100, 'x'));
  EXPECT_EQ(table.entry_count(), 0u);
  EXPECT_EQ(table.size_bytes(), 0u);
}

TEST(HpackDynamicTable, ShrinkingMaxSizeEvicts) {
  DynamicTable table(200);
  table.Insert("a", "1");
  table.Insert("b", "2");
  table.SetMaxSize(40);
  EXPECT_EQ(table.entry_count(), 1u);
  EXPECT_EQ(table.At(0).name, "b");
}

// --- encoder/decoder against RFC 7541 C.4 (Huffman request examples) --------

HeaderList FirstRequest() {
  return {{":method", "GET", false},
          {":scheme", "http", false},
          {":path", "/", false},
          {":authority", "www.example.com", false}};
}

TEST(HpackCodec, C41FirstRequestMatchesRfcBytes) {
  Encoder encoder;
  const Bytes block = encoder.EncodeBlock(FirstRequest());
  EXPECT_EQ(HexDump(block),
            HexDump(FromHex("8286 8441 8cf1 e3c2 e5f2 3a6b a0ab 90f4 ff").value()));
  EXPECT_EQ(encoder.table().size_bytes(), 57u);  // RFC: table size 57
}

TEST(HpackCodec, C42SecondRequestUsesDynamicIndex) {
  Encoder encoder;
  (void)encoder.EncodeBlock(FirstRequest());
  HeaderList second = FirstRequest();
  second.push_back({"cache-control", "no-cache", false});
  const Bytes block = encoder.EncodeBlock(second);
  EXPECT_EQ(HexDump(block),
            HexDump(FromHex("8286 84be 5886 a8eb 1064 9cbf").value()));
  EXPECT_EQ(encoder.table().size_bytes(), 110u);
}

TEST(HpackCodec, C43ThirdRequestAddsCustomHeader) {
  Encoder encoder;
  (void)encoder.EncodeBlock(FirstRequest());
  HeaderList second = FirstRequest();
  second.push_back({"cache-control", "no-cache", false});
  (void)encoder.EncodeBlock(second);
  HeaderList third = {{":method", "GET", false},
                      {":scheme", "https", false},
                      {":path", "/index.html", false},
                      {":authority", "www.example.com", false},
                      {"custom-key", "custom-value", false}};
  const Bytes block = encoder.EncodeBlock(third);
  EXPECT_EQ(HexDump(block),
            HexDump(FromHex("8287 85bf 4088 25a8 49e9 5ba9 7d7f 8925 a849"
                            " e95b b8e8 b4bf").value()));
  EXPECT_EQ(encoder.table().size_bytes(), 164u);
}

TEST(HpackCodec, DecoderConsumesRfcBlocksInSequence) {
  Decoder decoder;
  auto first = decoder.DecodeBlock(
      FromHex("8286 8441 8cf1 e3c2 e5f2 3a6b a0ab 90f4 ff").value());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), FirstRequest());

  auto second =
      decoder.DecodeBlock(FromHex("8286 84be 5886 a8eb 1064 9cbf").value());
  ASSERT_TRUE(second.ok());
  HeaderList expected_second = FirstRequest();
  expected_second.push_back({"cache-control", "no-cache", false});
  EXPECT_EQ(second.value(), expected_second);

  auto third = decoder.DecodeBlock(
      FromHex("8287 85bf 4088 25a8 49e9 5ba9 7d7f 8925 a849 e95b b8e8 b4bf")
          .value());
  ASSERT_TRUE(third.ok());
  ASSERT_EQ(third.value().size(), 5u);
  EXPECT_EQ(third.value()[4].name, "custom-key");
  EXPECT_EQ(third.value()[4].value, "custom-value");
}

// --- round trips and error handling -----------------------------------------

TEST(HpackCodec, SensitiveHeadersAreNeverIndexed) {
  Encoder encoder;
  HeaderList headers = {{"authorization", "secret-token", true}};
  const Bytes block = encoder.EncodeBlock(headers);
  // Never-indexed literal: first byte prefix 0001 with 4-bit name index.
  EXPECT_EQ(block[0] & 0xf0, 0x10);
  // Nothing entered the dynamic table.
  EXPECT_EQ(encoder.table().entry_count(), 0u);
  Decoder decoder;
  auto decoded = decoder.DecodeBlock(block);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value()[0].value, "secret-token");
  EXPECT_TRUE(decoded.value()[0].sensitive);
}

TEST(HpackCodec, RoundTripArbitraryHeaders) {
  Encoder encoder;
  Decoder decoder;
  HeaderList headers = {{":status", "200", false},
                        {"content-type", "text/html", false},
                        {"x-sww-mode", "generative", false},
                        {"x-sww-mode", "generative", false},  // repeat → indexed
                        {"empty", "", false}};
  for (int round = 0; round < 3; ++round) {
    auto decoded = decoder.DecodeBlock(encoder.EncodeBlock(headers));
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value().size(), headers.size());
    for (std::size_t i = 0; i < headers.size(); ++i) {
      EXPECT_EQ(decoded.value()[i].name, headers[i].name);
      EXPECT_EQ(decoded.value()[i].value, headers[i].value);
    }
  }
}

TEST(HpackDecoder, IndexZeroIsError) {
  Decoder decoder;
  EXPECT_FALSE(decoder.DecodeBlock(Bytes{0x80}).ok());
}

TEST(HpackDecoder, IndexBeyondTablesIsError) {
  Decoder decoder;
  Bytes block;
  EncodeInteger(200, 7, 0x80, block);
  EXPECT_FALSE(decoder.DecodeBlock(block).ok());
}

TEST(HpackDecoder, TableSizeUpdateAboveLimitIsError) {
  Decoder decoder(4096);
  decoder.SetMaxTableSizeLimit(4096);
  Bytes block;
  EncodeInteger(8192, 5, 0x20, block);
  EXPECT_FALSE(decoder.DecodeBlock(block).ok());
}

TEST(HpackDecoder, TableSizeUpdateAfterFieldIsError) {
  Decoder decoder;
  Bytes block = {0x82};             // :method GET
  EncodeInteger(0, 5, 0x20, block); // then a size update — illegal
  EXPECT_FALSE(decoder.DecodeBlock(block).ok());
}

TEST(HpackDecoder, TableSizeUpdateAtBlockStartApplies) {
  Decoder decoder(4096);
  Bytes block;
  EncodeInteger(0, 5, 0x20, block);  // shrink to zero
  block.push_back(0x82);
  auto decoded = decoder.DecodeBlock(block);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoder.table().max_size(), 0u);
}

TEST(HpackEncoder, TableSizeUpdateEmittedAtNextBlock) {
  Encoder encoder;
  encoder.SetMaxTableSize(256);
  const Bytes block = encoder.EncodeBlock({{":method", "GET", false}});
  // First byte must be the size update (001 prefix).
  EXPECT_EQ(block[0] & 0xe0, 0x20);
}

TEST(HpackDecoder, TruncatedBlockIsError) {
  Decoder decoder;
  // Literal with incremental indexing, new name, but string cut off.
  const Bytes bad = {0x40, 0x05, 'a', 'b'};
  EXPECT_FALSE(decoder.DecodeBlock(bad).ok());
}

}  // namespace
}  // namespace sww::hpack
