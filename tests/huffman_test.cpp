// Tests for the HPACK Huffman code, anchored on RFC 7541 Appendix C's
// published example encodings.
#include <gtest/gtest.h>

#include "hpack/huffman.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace sww::hpack {
namespace {

using util::Bytes;
using util::FromHex;
using util::HexDump;

std::string EncodeToHex(std::string_view text) {
  Bytes out;
  HuffmanEncode(text, out);
  return HexDump(out);
}

struct RfcVector {
  const char* text;
  const char* hex;
};

class Rfc7541Vectors : public ::testing::TestWithParam<RfcVector> {};

TEST_P(Rfc7541Vectors, EncodeMatchesRfc) {
  EXPECT_EQ(EncodeToHex(GetParam().text),
            HexDump(FromHex(GetParam().hex).value()));
}

TEST_P(Rfc7541Vectors, DecodeMatchesRfc) {
  auto decoded = HuffmanDecode(FromHex(GetParam().hex).value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), GetParam().text);
}

TEST_P(Rfc7541Vectors, SizePredictionMatches) {
  EXPECT_EQ(HuffmanEncodedSize(GetParam().text),
            FromHex(GetParam().hex).value().size());
}

// All string literals from RFC 7541 Appendix C.4 and C.6.
INSTANTIATE_TEST_SUITE_P(
    AppendixC, Rfc7541Vectors,
    ::testing::Values(
        RfcVector{"www.example.com", "f1e3 c2e5 f23a 6ba0 ab90 f4ff"},
        RfcVector{"no-cache", "a8eb 1064 9cbf"},
        RfcVector{"custom-key", "25a8 49e9 5ba9 7d7f"},
        RfcVector{"custom-value", "25a8 49e9 5bb8 e8b4 bf"},
        RfcVector{"302", "6402"},
        RfcVector{"private", "aec3 771a 4b"},
        RfcVector{"Mon, 21 Oct 2013 20:13:21 GMT",
                  "d07a be94 1054 d444 a820 0595 040b 8166 e082 a62d 1bff"},
        RfcVector{"https://www.example.com",
                  "9d29 ad17 1863 c78f 0b97 c8e9 ae82 ae43 d3"},
        RfcVector{"Mon, 21 Oct 2013 20:13:22 GMT",
                  "d07a be94 1054 d444 a820 0595 040b 8166 e084 a62d 1bff"},
        RfcVector{"gzip", "9bd9 ab"},
        RfcVector{"foo=ASDJKHQKBZXOQWEOPIUAXQWEOIU; max-age=3600; version=1",
                  "94e7 821d d7f2 e6c7 b335 dfdf cd5b 3960 d5af 2708 7f36 72c1"
                  " ab27 0fb5 291f 9587 3160 65c0 03ed 4ee5 b106 3d50 07"}));

TEST(Huffman, EmptyStringEncodesToNothing) {
  Bytes out;
  HuffmanEncode("", out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(HuffmanDecode({}).value(), "");
}

TEST(Huffman, AllByteValuesRoundTrip) {
  std::string all;
  for (int c = 0; c < 256; ++c) all.push_back(static_cast<char>(c));
  Bytes encoded;
  HuffmanEncode(all, encoded);
  auto decoded = HuffmanDecode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), all);
}

TEST(Huffman, RandomStringsRoundTrip) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const std::size_t length = rng.NextBounded(64);
    for (std::size_t i = 0; i < length; ++i) {
      text.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    Bytes encoded;
    HuffmanEncode(text, encoded);
    auto decoded = HuffmanDecode(encoded);
    ASSERT_TRUE(decoded.ok()) << "trial " << trial;
    EXPECT_EQ(decoded.value(), text);
  }
}

TEST(Huffman, PaddingMustBeEosPrefix) {
  // "0" encodes to 5 bits 00000; pad with zeros instead of ones → error.
  const Bytes bad = {0x00};
  EXPECT_FALSE(HuffmanDecode(bad).ok());
}

TEST(Huffman, PaddingLongerThanSevenBitsRejected) {
  // A full byte of ones is a valid EOS prefix but exceeds 7 padding bits.
  const Bytes bad = {0xff};
  auto result = HuffmanDecode(bad);
  EXPECT_FALSE(result.ok());
}

TEST(Huffman, ValidPaddingAccepted) {
  // "0" = 00000 + 3 one-bits of padding = 0x07.
  const Bytes good = {0x07};
  auto result = HuffmanDecode(good);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), "0");
}

TEST(Huffman, CodeTableSpotChecks) {
  EXPECT_EQ(CodeForSymbol('0').bits, 0x0u);
  EXPECT_EQ(CodeForSymbol('0').length, 5);
  EXPECT_EQ(CodeForSymbol('a').bits, 0x3u);
  EXPECT_EQ(CodeForSymbol('a').length, 5);
  EXPECT_EQ(CodeForSymbol(256).length, 30);  // EOS
  EXPECT_EQ(CodeForSymbol(0).length, 13);
}

TEST(Huffman, EncodedSizeFavorsCommonCharacters) {
  // Lowercase ASCII compresses well below 1 byte/char; control characters
  // expand.
  EXPECT_LT(HuffmanEncodedSize("aeiou aeiou"), 11u);
  EXPECT_GT(HuffmanEncodedSize("\x01\x02\x03"), 3u);
}

}  // namespace
}  // namespace sww::hpack
