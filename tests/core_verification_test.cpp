// Tests for §7's trust mechanism: semantic digests over generated content.
#include <gtest/gtest.h>

#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "core/verification.hpp"
#include "genai/diffusion.hpp"

namespace sww::core {
namespace {

genai::DiffusionModel Dalle() {
  return genai::DiffusionModel(genai::FindImageModel(genai::kDalle3).value());
}

TEST(Digest, HexRoundTrip) {
  const SemanticDigest digest = 0x0123456789abcdefULL;
  EXPECT_EQ(DigestToHex(digest), "0123456789abcdef");
  EXPECT_EQ(DigestFromHex("0123456789abcdef"), digest);
  EXPECT_EQ(DigestFromHex("0123456789ABCDEF"), digest);
}

TEST(Digest, MalformedHexYieldsZero) {
  EXPECT_EQ(DigestFromHex(""), 0u);
  EXPECT_EQ(DigestFromHex("123"), 0u);
  EXPECT_EQ(DigestFromHex("zzzzzzzzzzzzzzzz"), 0u);
  EXPECT_EQ(DigestFromHex("0123456789abcdef00"), 0u);
}

TEST(Digest, DistanceProperties) {
  EXPECT_EQ(DigestDistance(0, 0), 0);
  EXPECT_EQ(DigestDistance(0, ~0ULL), 64);
  EXPECT_EQ(DigestDistance(0b1010, 0b0110), 2);
}

TEST(Digest, StableForPrompt) {
  const std::string prompt = "a misty mountain lake at dawn";
  EXPECT_EQ(DigestOfPrompt(prompt), DigestOfPrompt(prompt));
  EXPECT_NE(DigestOfPrompt(prompt), DigestOfPrompt("a busy city street"));
}

TEST(Verification, FaithfulGenerationPasses) {
  genai::DiffusionModel model = Dalle();
  const std::string prompt = "a misty mountain lake with forest reflection";
  const SemanticDigest expected = DigestOfPrompt(prompt);
  // Any seed: verification is semantic, not pixel-exact.
  for (std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
    const auto generated = model.Generate(prompt, 224, 224, 15, seed);
    const ContentVerification result = VerifyGeneratedContent(
        prompt, prompt, expected, generated.value().image);
    EXPECT_TRUE(result.verified()) << "seed " << seed << " distance "
                                   << result.distance;
  }
}

TEST(Verification, RandomImageFails) {
  const SemanticDigest expected =
      DigestOfPrompt("a misty mountain lake with forest reflection");
  const genai::Image random = genai::DiffusionModel::RandomImage(224, 224, 5);
  const VerificationResult result = VerifyGeneratedImage(random, expected);
  EXPECT_FALSE(result.verified);
  // Random signatures sit near 32 bits of disagreement.
  EXPECT_GT(result.distance, kDefaultDigestBudget);
}

TEST(Verification, TamperedPromptFails) {
  // A man-in-the-middle swaps the prompt but keeps the digest: stage 1
  // (prompt integrity) mismatches deterministically.
  genai::DiffusionModel model = Dalle();
  const SemanticDigest authored_digest =
      DigestOfPrompt("a misty mountain lake with forest reflection");
  const std::string attacker_prompt =
      "a crowded casino floor with slot machines";
  const auto swapped = model.Generate(attacker_prompt, 224, 224, 15, 3);
  const ContentVerification result = VerifyGeneratedContent(
      attacker_prompt, attacker_prompt, authored_digest, swapped.value().image);
  EXPECT_FALSE(result.prompt_integrity);
  EXPECT_FALSE(result.verified());
  // The attacker's image is faithful to the attacker's prompt — only the
  // integrity stage catches this attack.
  EXPECT_TRUE(result.semantically_faithful);
}

TEST(Verification, WeakerModelStillPasses) {
  // The digest must accept any *faithful* generator, including SD 2.1 —
  // it verifies semantics, not quality.
  genai::DiffusionModel weak(genai::FindImageModel(genai::kSd21).value());
  const std::string prompt = core::MakeLandscapePrompt(77);
  const auto generated = weak.Generate(prompt, 224, 224, 15, 4);
  const ContentVerification result = VerifyGeneratedContent(
      prompt, prompt, DigestOfPrompt(prompt), generated.value().image);
  EXPECT_TRUE(result.verified()) << "distance " << result.distance;
}

TEST(VerificationE2E, PageItemsVerifyDuringFetch) {
  ContentStore store;
  ASSERT_TRUE(store.AddPage("/", MakeGoldfishPage()).ok());
  auto session = LocalSession::Start(&store, {});
  ASSERT_TRUE(session.ok());
  auto fetch = session.value()->FetchPage("/");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().verified_items, 1u);
  EXPECT_EQ(fetch.value().failed_verification_items, 0u);
  ASSERT_FALSE(fetch.value().media.empty());
  EXPECT_TRUE(fetch.value().media[0].has_verification);
}

TEST(VerificationE2E, CorruptedDigestIsDetected) {
  // Author a page whose digest does not match its prompt.
  json::Value metadata{json::Object{}};
  metadata.Set("prompt", "a quiet harbor at dusk with fishing boats");
  metadata.Set("name", "harbor");
  metadata.Set("width", 64);
  metadata.Set("height", 64);
  metadata.Set("digest",
               DigestToHex(DigestOfPrompt("completely different content")));
  auto div = html::MakeGeneratedContentDiv(html::GeneratedContentType::kImage,
                                           metadata);
  ContentStore store;
  ASSERT_TRUE(
      store.AddPage("/bad", "<html><body>" + div->Serialize() + "</body></html>")
          .ok());
  auto session = LocalSession::Start(&store, {});
  auto fetch = session.value()->FetchPage("/bad");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().verified_items, 0u);
  EXPECT_EQ(fetch.value().failed_verification_items, 1u);
}

TEST(VerificationE2E, PersonalizedContentStillVerifies) {
  // Bounded personalization keeps the image faithful to the prompt it
  // actually used; the fallback check accepts it.
  ContentStore store;
  ASSERT_TRUE(store.AddPage("/", MakeGoldfishPage()).ok());
  LocalSession::Options options;
  options.client.generator.profile.interests = {"sailing", "astronomy"};
  options.client.generator.profile.consented = true;
  auto session = LocalSession::Start(&store, options);
  auto fetch = session.value()->FetchPage("/");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().failed_verification_items, 0u);
}

TEST(VerificationE2E, LandscapePageAllItemsCarryDigests) {
  ContentStore store;
  const LandscapePage page = MakeLandscapeSearchPage(5);
  ASSERT_TRUE(store.AddPage("/l", page.html).ok());
  auto session = LocalSession::Start(&store, {});
  auto fetch = session.value()->FetchPage("/l");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().verified_items + fetch.value().failed_verification_items,
            5u);
  EXPECT_EQ(fetch.value().failed_verification_items, 0u);
}

}  // namespace
}  // namespace sww::core
