// obs_distributed_trace_test — the acceptance test for cross-process trace
// propagation and the wire tap:
//   * a client↔server fetch under a ManualClock yields ONE trace tree —
//     server.request (and the edge spans) inherit the client's trace id
//     through the sww-trace header, with correct parent links;
//   * the flight recorder's frame log matches the http2.frames_sent /
//     frames_received counters exactly, including the SETTINGS exchange
//     carrying SETTINGS_GEN_ABILITY.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cdn/catalog.hpp"
#include "cdn/edge.hpp"
#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "genai/model_specs.hpp"
#include "obs/clock.hpp"
#include "obs/flight.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace sww {
namespace {

class ObsDistributedTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Default().SetClock(&clock_);
    obs::Tracer::Default().SetEnabled(true);
    obs::Tracer::Default().Clear();
    obs::Registry::Default().Reset();
    obs::FlightRecorder::Default().Clear();
  }
  void TearDown() override {
    obs::Tracer::Default().Clear();
    obs::Tracer::Default().SetClock(nullptr);
    obs::Registry::Default().Reset();
    obs::FlightRecorder::Default().Clear();
  }

  static const obs::Span* FindSpan(const std::vector<obs::Span>& spans,
                                   std::string_view name) {
    auto it = std::find_if(spans.begin(), spans.end(),
                           [&](const obs::Span& s) { return s.name == name; });
    return it == spans.end() ? nullptr : &*it;
  }

  obs::ManualClock clock_;
};

TEST(TraceHeader, FormatParseRoundTrip) {
  const obs::SpanContext context{0x1234abcd5678ef01ull, 0xdeadbeef00c0ffeeull};
  const std::string header = obs::FormatTraceHeader(context);
  // W3C-traceparent-like: 00-<32 hex trace>-<16 hex span>-01.
  ASSERT_EQ(header.size(), 55u);
  EXPECT_EQ(header.substr(0, 3), "00-");
  EXPECT_EQ(header.substr(2 + 1, 16), "0000000000000000");  // upper 64 bits
  auto parsed = obs::ParseTraceHeader(header);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, context.trace_id);
  EXPECT_EQ(parsed->span_id, context.span_id);
}

TEST(TraceHeader, RejectsMalformedInput) {
  EXPECT_FALSE(obs::ParseTraceHeader("").has_value());
  EXPECT_FALSE(obs::ParseTraceHeader("not-a-trace-header").has_value());
  EXPECT_FALSE(obs::ParseTraceHeader(
                   "00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-0000000000000001-01")
                   .has_value());
  // Invalid (zero) context formats to "" and "" parses to nothing.
  EXPECT_EQ(obs::FormatTraceHeader(obs::SpanContext{}), "");
}

TEST_F(ObsDistributedTraceTest, FetchYieldsOneTraceTree) {
  core::ContentStore store;
  ASSERT_TRUE(store.AddPage("/", core::MakeGoldfishPage()).ok());

  core::LocalSession::Options options;
  options.client.wire_tap = &obs::FlightRecorder::Default().GetTap("client");
  options.server.wire_tap = &obs::FlightRecorder::Default().GetTap("server");
  auto session = core::LocalSession::Start(&store, options);
  ASSERT_TRUE(session.ok()) << session.error().ToString();
  auto fetch = session.value()->FetchPage("/");
  ASSERT_TRUE(fetch.ok()) << fetch.error().ToString();

  const std::vector<obs::Span> spans = obs::Tracer::Default().FinishedSpans();
  const obs::Span* page = FindSpan(spans, "client.fetch_page");
  const obs::Span* client_fetch = FindSpan(spans, "client.fetch");
  const obs::Span* server_request = FindSpan(spans, "server.request");
  ASSERT_NE(page, nullptr);
  ASSERT_NE(client_fetch, nullptr);
  ASSERT_NE(server_request, nullptr);

  // ONE distributed trace: the server span adopted the client's trace id
  // via the sww-trace header, and its parent is the client.fetch span.
  ASSERT_NE(page->trace_id, 0u);
  EXPECT_EQ(client_fetch->trace_id, page->trace_id);
  EXPECT_EQ(server_request->trace_id, page->trace_id);
  EXPECT_EQ(client_fetch->parent, page->id);
  EXPECT_EQ(server_request->parent, client_fetch->id);

  // Role tracks label the root of each process's subtree.
  EXPECT_EQ(client_fetch->process, "client");
  EXPECT_EQ(server_request->process, "server");

  // The sww-trace header actually crossed the wire: the server's tap saw
  // it on the received request HEADERS.
  bool header_on_wire = false;
  for (const obs::FrameRecord& record :
       obs::FlightRecorder::Default().GetTap("server").Records()) {
    if (record.type_name != "HEADERS" ||
        record.direction != obs::TapDirection::kReceived) {
      continue;
    }
    for (const auto& [name, value] : record.details) {
      if (name == obs::kTraceHeaderName) {
        header_on_wire = true;
        auto context = obs::ParseTraceHeader(value);
        ASSERT_TRUE(context.has_value()) << value;
        EXPECT_EQ(context->trace_id, page->trace_id);
        EXPECT_EQ(context->span_id, client_fetch->id);
      }
    }
  }
  EXPECT_TRUE(header_on_wire) << "sww-trace header missing from the tap";
}

TEST_F(ObsDistributedTraceTest, EdgeSpansJoinTheUserTrace) {
  auto image_model = genai::FindImageModel(genai::kSd3Medium);
  auto text_model = genai::FindTextModel(genai::kDeepseek8b);
  ASSERT_TRUE(image_model.ok() && text_model.ok());
  cdn::CatalogOptions catalog_options;
  catalog_options.item_count = 4;
  const cdn::Catalog catalog = cdn::Catalog::MakeSynthetic(catalog_options);
  cdn::EdgeNode edge(cdn::EdgeMode::kPromptMode, 1 << 20, image_model.value(),
                     text_model.value());

  obs::TraceId user_trace = 0;
  obs::SpanId user_span = 0;
  {
    obs::ScopedSpan user_fetch("client.fetch", "core");
    user_fetch.SetProcess("client");
    const obs::SpanContext context = user_fetch.context();
    user_trace = context.trace_id;
    user_span = context.span_id;
    // Propagate through the wire encoding, as a remote edge would see it.
    auto parsed = obs::ParseTraceHeader(obs::FormatTraceHeader(context));
    ASSERT_TRUE(parsed.has_value());
    edge.ServeRequest(catalog.item(0), *parsed);
  }

  const std::vector<obs::Span> spans = obs::Tracer::Default().FinishedSpans();
  const obs::Span* edge_span = FindSpan(spans, "edge.request");
  const obs::Span* origin_span = FindSpan(spans, "edge.origin_fetch");
  ASSERT_NE(edge_span, nullptr);
  ASSERT_NE(origin_span, nullptr) << "first request must miss";
  ASSERT_NE(user_trace, 0u);
  EXPECT_EQ(edge_span->trace_id, user_trace);
  EXPECT_EQ(edge_span->parent, user_span);
  EXPECT_EQ(origin_span->trace_id, user_trace);
  EXPECT_EQ(origin_span->parent, edge_span->id);
  EXPECT_EQ(edge_span->process, "edge");
  EXPECT_EQ(origin_span->process, "origin");
  // The simulated prompt-mode materialization advanced the manual clock.
  EXPECT_GT(edge_span->DurationSeconds(), 0.0);
}

TEST_F(ObsDistributedTraceTest, FrameLogMatchesWireCounters) {
  core::ContentStore store;
  ASSERT_TRUE(store.AddPage("/", core::MakeGoldfishPage()).ok());

  obs::ConnectionTap& client_tap =
      obs::FlightRecorder::Default().GetTap("client");
  obs::ConnectionTap& server_tap =
      obs::FlightRecorder::Default().GetTap("server");
  core::LocalSession::Options options;
  options.client.wire_tap = &client_tap;
  options.server.wire_tap = &server_tap;
  auto session = core::LocalSession::Start(&store, options);
  ASSERT_TRUE(session.ok()) << session.error().ToString();
  ASSERT_TRUE(session.value()->FetchPage("/").ok());

  // The taps saw exactly what the connections counted — every frame, both
  // directions, SETTINGS handshake included.
  const obs::RegistrySnapshot snap = obs::Registry::Default().Snapshot();
  EXPECT_EQ(client_tap.total_sent() + server_tap.total_sent(),
            snap.counters.at("http2.frames_sent"));
  EXPECT_EQ(client_tap.total_received() + server_tap.total_received(),
            snap.counters.at("http2.frames_received"));
  EXPECT_EQ(client_tap.dropped(), 0u);
  EXPECT_EQ(server_tap.dropped(), 0u);

  // Per-connection: the tap agrees with the connection's own wire stats.
  std::uint64_t client_frames_sent = 0;
  for (const auto& [type, count] :
       session.value()->client().connection().wire_stats().frames_sent) {
    (void)type;
    client_frames_sent += count;
  }
  EXPECT_EQ(client_tap.total_sent(), client_frames_sent);

  // The SETTINGS exchange carrying SETTINGS_GEN_ABILITY is in the log,
  // decoded, in both directions.
  int gen_ability_sent = 0, gen_ability_received = 0;
  for (const obs::FrameRecord& record : client_tap.Records()) {
    if (record.type_name != "SETTINGS") continue;
    for (const auto& [name, value] : record.details) {
      if (name == "GEN_ABILITY") {
        EXPECT_EQ(value, "1");  // kGenAbilityFull
        if (record.direction == obs::TapDirection::kSent) ++gen_ability_sent;
        if (record.direction == obs::TapDirection::kReceived) {
          ++gen_ability_received;
        }
      }
    }
  }
  EXPECT_EQ(gen_ability_sent, 1) << "client must advertise GEN_ABILITY";
  EXPECT_EQ(gen_ability_received, 1) << "server's SETTINGS must be tapped";
}

TEST_F(ObsDistributedTraceTest, UntappedConnectionRecordsNothing) {
  core::ContentStore store;
  ASSERT_TRUE(store.AddPage("/", core::MakeGoldfishPage()).ok());
  auto session = core::LocalSession::Start(&store, {});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->FetchPage("/").ok());
  EXPECT_EQ(session.value()->client().connection().wire_tap(), nullptr);
  for (const obs::ConnectionTap* tap :
       obs::FlightRecorder::Default().taps()) {
    EXPECT_EQ(tap->total_recorded(), 0u) << tap->label();
  }
}

}  // namespace
}  // namespace sww
