// Tests for the epoll reactor transport: timer wheel, reactor loop,
// scatter-gather write queue, tcp options/deadlines, and the sharded
// reactor server end-to-end over real loopback sockets.
#include <gtest/gtest.h>

#include <errno.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/page_builder.hpp"
#include "core/reactor_host.hpp"
#include "core/session.hpp"
#include "http2/connection.hpp"
#include "net/pump.hpp"
#include "net/reactor.hpp"
#include "net/reactor_server.hpp"
#include "net/tcp.hpp"
#include "net/timer_wheel.hpp"
#include "net/write_queue.hpp"
#include "obs/registry.hpp"
#include "util/bytes.hpp"

namespace sww::net {
namespace {

using util::Bytes;
using util::BytesView;

constexpr std::uint64_t kMs = 1'000'000;  // nanos per millisecond

// ---------------------------------------------------------------- wheel

TEST(TimerWheel, FiresAtDeadlineNotBefore) {
  TimerWheel wheel;
  int fired = 0;
  wheel.Schedule(5 * kMs, [&] { ++fired; });
  EXPECT_EQ(wheel.Advance(4 * kMs), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.Advance(5 * kMs), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.armed_count(), 0u);
}

TEST(TimerWheel, ZeroDelayFiresOnNextTick) {
  TimerWheel wheel;
  bool fired = false;
  wheel.Schedule(0, [&] { fired = true; });
  wheel.Advance(1 * kMs);
  EXPECT_TRUE(fired);
}

TEST(TimerWheel, CancelPreventsFiring) {
  TimerWheel wheel;
  bool fired = false;
  const auto id = wheel.Schedule(3 * kMs, [&] { fired = true; });
  EXPECT_TRUE(wheel.Cancel(id));
  EXPECT_FALSE(wheel.Cancel(id));  // second cancel is a no-op
  wheel.Advance(10 * kMs);
  EXPECT_FALSE(fired);
  EXPECT_EQ(wheel.armed_count(), 0u);
}

TEST(TimerWheel, CallbackCancelsSiblingInSameDueChain) {
  TimerWheel wheel;
  // Two timers due on the same tick, each cancelling the other: whichever
  // fires first leaves a cancelled sibling sitting in Advance()'s detached
  // due-chain.  That entry must be disarmed in place, not released twice.
  int fired = 0;
  TimerWheel::TimerId a = TimerWheel::kInvalidTimer;
  TimerWheel::TimerId b = TimerWheel::kInvalidTimer;
  a = wheel.Schedule(2 * kMs, [&] {
    ++fired;
    EXPECT_TRUE(wheel.Cancel(b));
  });
  b = wheel.Schedule(2 * kMs, [&] {
    ++fired;
    EXPECT_TRUE(wheel.Cancel(a));
  });
  EXPECT_EQ(wheel.Advance(5 * kMs), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.armed_count(), 0u);  // double decrement would underflow
  // Pool integrity: the cancelled entry went back to the free list exactly
  // once, so two fresh timers get distinct entries and both fire.
  int c_fired = 0;
  int d_fired = 0;
  const auto c = wheel.Schedule(1 * kMs, [&] { ++c_fired; });
  const auto d = wheel.Schedule(1 * kMs, [&] { ++d_fired; });
  EXPECT_NE(c, d);
  EXPECT_EQ(wheel.Advance(10 * kMs), 2u);
  EXPECT_EQ(c_fired, 1);
  EXPECT_EQ(d_fired, 1);
  EXPECT_EQ(wheel.armed_count(), 0u);
}

TEST(TimerWheel, CancelSiblingThenScheduleDoesNotAliasChainEntry) {
  TimerWheel wheel;
  // The firing callback cancels a chain sibling and immediately schedules
  // a new timer: the new timer must not be handed the sibling's pool entry
  // (still reachable via the due-chain) or its callback would be clobbered.
  bool victim_fired = false;
  bool replacement_fired = false;
  TimerWheel::TimerId victim = TimerWheel::kInvalidTimer;
  victim = wheel.Schedule(2 * kMs, [&] { victim_fired = true; });
  wheel.Schedule(2 * kMs, [&] {
    EXPECT_TRUE(wheel.Cancel(victim));
    wheel.Schedule(1 * kMs, [&] { replacement_fired = true; });
  });
  wheel.Advance(10 * kMs);
  EXPECT_FALSE(victim_fired);
  EXPECT_TRUE(replacement_fired);
  EXPECT_EQ(wheel.armed_count(), 0u);
}

TEST(TimerWheel, ManyTimersFireInDeadlineOrder) {
  TimerWheel wheel;
  std::vector<int> order;
  wheel.Schedule(30 * kMs, [&] { order.push_back(30); });
  wheel.Schedule(10 * kMs, [&] { order.push_back(10); });
  wheel.Schedule(20 * kMs, [&] { order.push_back(20); });
  wheel.Advance(100 * kMs);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 10);
  EXPECT_EQ(order[1], 20);
  EXPECT_EQ(order[2], 30);
}

TEST(TimerWheel, CascadesAcrossLevelBoundaries) {
  TimerWheel wheel;
  // 300 ticks lands in level 1 (level 0 spans 256); 70000 in level 2.
  bool mid_fired = false;
  bool far_fired = false;
  wheel.Schedule(300 * kMs, [&] { mid_fired = true; });
  wheel.Schedule(70'000 * kMs, [&] { far_fired = true; });
  wheel.Advance(299 * kMs);
  EXPECT_FALSE(mid_fired);
  wheel.Advance(300 * kMs);
  EXPECT_TRUE(mid_fired);
  EXPECT_FALSE(far_fired);
  wheel.Advance(69'999 * kMs);
  EXPECT_FALSE(far_fired);
  wheel.Advance(70'000 * kMs);
  EXPECT_TRUE(far_fired);
}

TEST(TimerWheel, ScheduleInsideCallbackFiresOnLaterTick) {
  TimerWheel wheel;
  int chained = 0;
  wheel.Schedule(1 * kMs, [&] {
    ++chained;
    wheel.Schedule(1 * kMs, [&] { ++chained; });
  });
  wheel.Advance(10 * kMs);
  EXPECT_EQ(chained, 2);
}

TEST(TimerWheel, NextDeadlineIsConservativeLowerBound) {
  TimerWheel wheel;
  EXPECT_FALSE(wheel.NextDeadlineDelayNanos().has_value());
  wheel.Schedule(5 * kMs, [] {});
  auto delay = wheel.NextDeadlineDelayNanos();
  ASSERT_TRUE(delay.has_value());
  EXPECT_GT(*delay, 0u);
  EXPECT_LE(*delay, 5 * kMs);
  wheel.Advance(10 * kMs);
  EXPECT_FALSE(wheel.NextDeadlineDelayNanos().has_value());
  // A far timer reports at most the next cascade boundary — never later
  // than its true deadline.
  wheel.Schedule(10'000 * kMs, [] {});
  delay = wheel.NextDeadlineDelayNanos();
  ASSERT_TRUE(delay.has_value());
  EXPECT_LE(*delay, 10'000 * kMs);
}

TEST(TimerWheel, AdvanceWithNothingArmedJumpsDirectly) {
  TimerWheel wheel;
  // A huge jump with no timers must not iterate tick-by-tick (this would
  // time out the test if it did).
  EXPECT_EQ(wheel.Advance(3'600'000 * kMs), 0u);
  bool fired = false;
  wheel.Schedule(2 * kMs, [&] { fired = true; });
  wheel.Advance(3'600'010 * kMs);
  EXPECT_TRUE(fired);
}

// -------------------------------------------------------------- reactor

TEST(Reactor, DispatchesReadEvents) {
  Reactor reactor;
  ASSERT_TRUE(reactor.ok());
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds), 0);
  std::string received;
  ASSERT_TRUE(reactor
                  .Register(fds[0], EPOLLIN,
                            [&](std::uint32_t) {
                              char buffer[64];
                              const ssize_t n =
                                  ::read(fds[0], buffer, sizeof(buffer));
                              if (n > 0) received.assign(buffer, buffer + n);
                            })
                  .ok());
  ASSERT_EQ(::write(fds[1], "ping", 4), 4);
  for (int i = 0; i < 100 && received.empty(); ++i) reactor.PollOnce(10);
  EXPECT_EQ(received, "ping");
  EXPECT_TRUE(reactor.Deregister(fds[0]).ok());
  EXPECT_FALSE(reactor.Deregister(fds[0]).ok());  // second is kNotFound
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Reactor, TimersFireThroughPollOnce) {
  Reactor reactor;
  ASSERT_TRUE(reactor.ok());
  bool fired = false;
  reactor.ScheduleTimer(5 * kMs, [&] { fired = true; });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (!fired && std::chrono::steady_clock::now() < deadline) {
    reactor.PollOnce(50);
  }
  EXPECT_TRUE(fired);
}

TEST(Reactor, PostRunsOnLoopAndStopEndsRun) {
  Reactor reactor;
  ASSERT_TRUE(reactor.ok());
  std::atomic<bool> ran{false};
  std::thread poster([&] {
    reactor.Post([&] { ran = true; });
    reactor.Stop();
  });
  reactor.Run();  // returns after Stop
  poster.join();
  EXPECT_TRUE(ran);
}

// --------------------------------------------------------- write queue

// A client connection with pending handshake output is a convenient
// source of real frame bytes for the writer.
std::unique_ptr<http2::Connection> ConnectionWithOutput() {
  auto connection = std::make_unique<http2::Connection>(
      http2::Connection::Role::kClient, http2::Connection::Options{});
  connection->StartHandshake();
  return connection;
}

TEST(WriteQueue, ShortWritesPreserveByteOrder) {
  auto connection = ConnectionWithOutput();
  const Bytes expected(connection->OutputView().begin(),
                       connection->OutputView().end());
  Bytes written;
  WriteQueue::Options options;
  // Kernel takes at most 10 bytes per call: every flush is a short write.
  options.writev_fn = [&](int, const struct iovec* iov, int n) -> long {
    std::size_t budget = 10;
    long taken = 0;
    for (int i = 0; i < n && budget > 0; ++i) {
      const std::size_t take = std::min(budget, iov[i].iov_len);
      const auto* base = static_cast<const std::uint8_t*>(iov[i].iov_base);
      written.insert(written.end(), base, base + take);
      budget -= take;
      taken += static_cast<long>(take);
    }
    return taken;
  };
  WriteQueue queue(std::move(options));
  ASSERT_TRUE(queue.Flush(-1, *connection).ok());
  EXPECT_FALSE(connection->HasOutput());  // arena always reclaimed
  // Drain: each flush is another EPOLLOUT edge.
  for (int i = 0; i < 1000 && !queue.empty(); ++i) {
    ASSERT_TRUE(queue.Flush(-1, *connection).ok());
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(written, expected);
}

TEST(WriteQueue, EagainStagesEverythingAndResumesInOrder) {
  auto connection = ConnectionWithOutput();
  const Bytes first(connection->OutputView().begin(),
                    connection->OutputView().end());
  Bytes written;
  bool allow = false;
  WriteQueue::Options options;
  options.writev_fn = [&](int, const struct iovec* iov, int n) -> long {
    if (!allow) {
      errno = EAGAIN;
      return -1;
    }
    long taken = 0;
    for (int i = 0; i < n; ++i) {
      const auto* base = static_cast<const std::uint8_t*>(iov[i].iov_base);
      written.insert(written.end(), base, base + iov[i].iov_len);
      taken += static_cast<long>(iov[i].iov_len);
    }
    return taken;
  };
  WriteQueue queue(std::move(options));
  ASSERT_TRUE(queue.Flush(-1, *connection).ok());
  EXPECT_TRUE(queue.blocked());
  EXPECT_EQ(queue.backlog_bytes(), first.size());
  EXPECT_FALSE(connection->HasOutput());
  // New output produced while blocked must come out *after* the staged
  // residue once the socket opens up.
  connection->SendPing(0x1234);
  const Bytes fresh(connection->OutputView().begin(),
                    connection->OutputView().end());
  allow = true;
  ASSERT_TRUE(queue.Flush(-1, *connection).ok());
  EXPECT_FALSE(queue.blocked());
  EXPECT_TRUE(queue.empty());
  Bytes expected = first;
  expected.insert(expected.end(), fresh.begin(), fresh.end());
  EXPECT_EQ(written, expected);
}

TEST(WriteQueue, BackpressureThresholdsAndGauge) {
  obs::Gauge& gauge =
      obs::Registry::Default().GetGauge("net.reactor.backlog_bytes");
  const double gauge_before = gauge.value();
  auto connection = ConnectionWithOutput();
  WriteQueue::Options options;
  options.max_backlog_bytes = 48;
  options.low_watermark_bytes = 16;
  bool allow = false;
  options.writev_fn = [&](int, const struct iovec* iov, int n) -> long {
    if (!allow) {
      errno = EAGAIN;
      return -1;
    }
    long taken = 0;
    for (int i = 0; i < n; ++i) taken += static_cast<long>(iov[i].iov_len);
    return taken;
  };
  WriteQueue queue(std::move(options));
  // Stall the "kernel" until the staged backlog crosses the limit.
  for (int i = 0; i < 100 && !queue.over_limit(); ++i) {
    connection->SendPing(static_cast<std::uint64_t>(i));
    ASSERT_TRUE(queue.Flush(-1, *connection).ok());
  }
  EXPECT_TRUE(queue.over_limit());
  EXPECT_FALSE(queue.below_low_watermark());
  // The global gauge tracks this queue's staged residue exactly.
  EXPECT_DOUBLE_EQ(gauge.value() - gauge_before,
                   static_cast<double>(queue.backlog_bytes()));
  allow = true;
  ASSERT_TRUE(queue.Flush(-1, *connection).ok());
  EXPECT_TRUE(queue.below_low_watermark());
  EXPECT_TRUE(queue.empty());
  EXPECT_DOUBLE_EQ(gauge.value(), gauge_before);
}

TEST(WriteQueue, SteadyStateStagesWithoutAllocating) {
  auto connection = ConnectionWithOutput();
  bool allow = false;
  WriteQueue::Options options;
  options.writev_fn = [&](int, const struct iovec* iov, int n) -> long {
    if (!allow) {
      errno = EAGAIN;
      return -1;
    }
    long taken = 0;
    for (int i = 0; i < n; ++i) taken += static_cast<long>(iov[i].iov_len);
    return taken;
  };
  WriteQueue queue(std::move(options));
  auto stall_then_drain = [&] {
    connection->SendPing(7);
    allow = false;
    ASSERT_TRUE(queue.Flush(-1, *connection).ok());  // stages the ping
    allow = true;
    ASSERT_TRUE(queue.Flush(-1, *connection).ok());  // drains it
  };
  // Warm-up: the stage grows to its high-water mark.
  stall_then_drain();
  ASSERT_TRUE(queue.Flush(-1, *connection).ok());  // flush handshake bytes
  const std::uint64_t warm = queue.allocations();
  for (int i = 0; i < 64; ++i) stall_then_drain();
  EXPECT_EQ(queue.allocations(), warm) << "steady-state staging allocated";
}

// ------------------------------------------------- pump under a stall

// Transport whose Write always fails (a reader stalled past its socket
// buffer surfaces exactly like this to pump callers).
class StalledTransport final : public Transport {
 public:
  util::Status Write(BytesView) override {
    return util::Error(util::ErrorCode::kIo, "send timed out: simulated");
  }
  util::Result<Bytes> Read() override { return Bytes{}; }
  void Close() override { closed_ = true; }
  bool closed() const override { return closed_; }

 private:
  bool closed_ = false;
};

TEST(Pump, BacklogGaugeHoldsQueueDepthUnderStalledReader) {
  obs::Gauge& gauge =
      obs::Registry::Default().GetGauge("net.pump.backlog_bytes");
  gauge.Set(0.0);
  auto connection = ConnectionWithOutput();
  const std::size_t queued = connection->OutputView().size();
  ASSERT_GT(queued, 0u);
  StalledTransport stalled;
  auto result = PumpOnce(*connection, stalled);
  EXPECT_FALSE(result.ok());
  // The gauge reports the bytes still parked in the arena — live scrapes
  // see the stall as a standing backlog, not a zero.
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(queued));
  EXPECT_TRUE(connection->HasOutput());
  // Once the reader unblocks, one pump drains and the gauge drops to 0.
  TransportPair pair = MakeInMemoryPair();
  ASSERT_TRUE(PumpOnce(*connection, *pair.first).ok());
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

// ------------------------------------------------------- tcp options

TEST(TcpOptions, RoundTripThroughKernel) {
  TcpListener::Options options;
  options.reuse_port = true;
  options.non_blocking = true;
  options.tuning.tcp_nodelay = true;
  options.tuning.recv_buffer_bytes = 64 * 1024;
  options.tuning.send_buffer_bytes = 64 * 1024;
  auto listener = TcpListener::Bind(0, options);
  ASSERT_TRUE(listener.ok());
  EXPECT_EQ(listener.value()->options().tuning.recv_buffer_bytes, 64 * 1024);

  int value = 0;
  socklen_t len = sizeof(value);
  ASSERT_EQ(::getsockopt(listener.value()->fd(), SOL_SOCKET, SO_REUSEPORT,
                         &value, &len),
            0);
  EXPECT_EQ(value, 1);

  // A second listener on the same port succeeds because of REUSEPORT.
  auto sibling = TcpListener::Bind(listener.value()->port(), options);
  ASSERT_TRUE(sibling.ok());

  auto client = TcpConnect(listener.value()->port());
  ASSERT_TRUE(client.ok());
  int accepted = -1;
  for (int i = 0; i < 200 && accepted < 0; ++i) {
    for (auto* l : {listener.value().get(), sibling.value().get()}) {
      auto fd = l->AcceptFd();
      ASSERT_TRUE(fd.ok());
      if (fd.value() >= 0) {
        accepted = fd.value();
        break;
      }
    }
    if (accepted < 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(accepted, 0);

  // The accepted socket carries the tuning: NODELAY on, buffers at least
  // what we hinted (Linux doubles the request for bookkeeping).
  len = sizeof(value);
  ASSERT_EQ(::getsockopt(accepted, IPPROTO_TCP, TCP_NODELAY, &value, &len), 0);
  EXPECT_EQ(value, 1);
  len = sizeof(value);
  ASSERT_EQ(::getsockopt(accepted, SOL_SOCKET, SO_RCVBUF, &value, &len), 0);
  EXPECT_GE(value, 64 * 1024);
  len = sizeof(value);
  ASSERT_EQ(::getsockopt(accepted, SOL_SOCKET, SO_SNDBUF, &value, &len), 0);
  EXPECT_GE(value, 64 * 1024);
  ::close(accepted);
}

TEST(TcpConnectDeadline, RefusedPortSurfacesError) {
  // Bind-then-close guarantees an unused port with nothing listening.
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t dead_port = listener.value()->port();
  listener.value().reset();
  auto result = TcpConnect(dead_port, 1000);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("refused"), std::string::npos)
      << result.error().message;
}

TEST(TcpWriteDeadline, StalledReaderSurfacesTimeout) {
  TcpListener::Options options;
  options.tuning.recv_buffer_bytes = 4096;
  auto listener = TcpListener::Bind(0, options);
  ASSERT_TRUE(listener.ok());
  auto client = TcpConnect(listener.value()->port());
  ASSERT_TRUE(client.ok());
  auto* tcp = static_cast<TcpTransport*>(client.value().get());
  // Shrink our send buffer too so the pipe fills fast.
  const SocketTuning tuning{true, 0, 4096};
  ASSERT_TRUE(ApplySocketTuning(tcp->fd(), tuning).ok());
  tcp->set_write_timeout_ms(50);
  // Accept but never read: the peer's buffers fill and Write must give
  // up at the deadline instead of spinning forever.
  auto server_side = listener.value()->Accept(2000);
  ASSERT_TRUE(server_side.ok());
  const Bytes chunk(256 * 1024, 0xab);
  util::Status status = util::Status::Ok();
  for (int i = 0; i < 64 && status.ok(); ++i) status = tcp->Write(chunk);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("timed out"), std::string::npos)
      << status.error().message;
}

// ------------------------------------------------------ reactor server

core::ContentStore& GoldfishStore() {
  static core::ContentStore* store = [] {
    auto* s = new core::ContentStore();
    EXPECT_TRUE(s->AddPage("/", core::MakeGoldfishPage()).ok());
    return s;
  }();
  return *store;
}

TEST(ReactorServer, ServesPagesAcrossShards) {
  core::ReactorHost::Options options;
  options.server.shards = 2;
  auto host = core::ReactorHost::Start(&GoldfishStore(), std::move(options));
  ASSERT_TRUE(host.ok());
  for (int i = 0; i < 6; ++i) {
    auto session = core::LoopbackSession::Connect(host.value()->port());
    ASSERT_TRUE(session.ok());
    auto fetch = session.value()->FetchPage("/");
    ASSERT_TRUE(fetch.ok()) << fetch.error().ToString();
    EXPECT_FALSE(fetch.value().final_html.empty());
    session.value()->Close();
  }
  host.value()->Shutdown();
  EXPECT_EQ(host.value()->server().total_accepted(), 6u);
  EXPECT_EQ(host.value()->server().total_closed(), 6u);
}

TEST(ReactorServer, ConcurrentClientsOneShard) {
  core::ReactorHost::Options options;
  options.server.shards = 1;
  auto host = core::ReactorHost::Start(&GoldfishStore(), std::move(options));
  ASSERT_TRUE(host.ok());
  constexpr int kClients = 4;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      auto session = core::LoopbackSession::Connect(host.value()->port());
      if (!session.ok()) return;
      auto fetch = session.value()->FetchPage("/");
      if (fetch.ok()) ok_count.fetch_add(1);
      session.value()->Close();
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok_count.load(), kClients);
  host.value()->Shutdown();
}

TEST(ReactorServer, IdleConnectionsAreReaped) {
  core::ReactorHost::Options options;
  options.server.shards = 1;
  options.server.idle_timeout_ms = 50;
  auto host = core::ReactorHost::Start(&GoldfishStore(), std::move(options));
  ASSERT_TRUE(host.ok());
  auto client = TcpConnect(host.value()->port());
  ASSERT_TRUE(client.ok());
  // Never speak: the server's idle timer must close us.
  bool closed = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!closed && std::chrono::steady_clock::now() < deadline) {
    auto data = client.value()->Read();
    if (!data.ok()) {
      closed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(closed);
  host.value()->Shutdown();
}

TEST(ReactorServer, GracefulShutdownSendsGoaway) {
  core::ReactorHost::Options options;
  options.server.shards = 1;
  auto host = core::ReactorHost::Start(&GoldfishStore(), std::move(options));
  ASSERT_TRUE(host.ok());
  auto session = core::LoopbackSession::Connect(host.value()->port());
  ASSERT_TRUE(session.ok());
  std::thread shutdown_thread([&] { host.value()->Shutdown(); });
  // Pump until the GOAWAY lands client-side.
  bool goaway = false;
  auto pump = session.value()->Pump();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!goaway && std::chrono::steady_clock::now() < deadline) {
    (void)pump();
    for (const auto& event : session.value()->client().connection().TakeEvents()) {
      if (event.type == http2::Connection::Event::Type::kGoawayReceived) {
        goaway = true;
      }
    }
    if (session.value()->client().connection().going_away()) goaway = true;
  }
  session.value()->Close();
  shutdown_thread.join();
  EXPECT_TRUE(goaway);
}

TEST(ReactorServer, ShutdownWithResetPeersStaysSafe) {
  core::ReactorHost::Options options;
  options.server.shards = 1;
  auto host = core::ReactorHost::Start(&GoldfishStore(), std::move(options));
  ASSERT_TRUE(host.ok());
  // Connect several raw clients, then RST them all (SO_LINGER 0) right
  // before Shutdown: BeginShutdown's GOAWAY flush hits dead sockets and
  // closes connections mid-walk, which must not upset its iteration.
  constexpr int kClients = 8;
  std::vector<std::unique_ptr<Transport>> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    auto client = TcpConnect(host.value()->port());
    ASSERT_TRUE(client.ok()) << client.error().ToString();
    clients.push_back(std::move(client).value());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (host.value()->server().total_accepted() <
             static_cast<std::uint64_t>(kClients) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& client : clients) {
    auto* tcp = static_cast<TcpTransport*>(client.get());
    struct linger hard_reset{1, 0};
    ASSERT_EQ(::setsockopt(tcp->fd(), SOL_SOCKET, SO_LINGER, &hard_reset,
                           sizeof(hard_reset)),
              0);
  }
  clients.clear();  // close → RST on every connection
  host.value()->Shutdown();
  EXPECT_EQ(host.value()->server().total_closed(),
            host.value()->server().total_accepted());
}

TEST(ReactorServer, HoldsManyIdleConnections) {
  core::ReactorHost::Options options;
  options.server.shards = 2;
  options.server.idle_timeout_ms = 0;  // never reap during the test
  auto host = core::ReactorHost::Start(&GoldfishStore(), std::move(options));
  ASSERT_TRUE(host.ok());
  constexpr int kConnections = 128;
  std::vector<std::unique_ptr<Transport>> held;
  held.reserve(kConnections);
  for (int i = 0; i < kConnections; ++i) {
    auto client = TcpConnect(host.value()->port());
    ASSERT_TRUE(client.ok()) << i << ": " << client.error().ToString();
    held.push_back(std::move(client).value());
  }
  // All accepted across the shards.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (host.value()->server().total_accepted() <
             static_cast<std::uint64_t>(kConnections) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(host.value()->server().total_accepted(),
            static_cast<std::uint64_t>(kConnections));
  held.clear();
  host.value()->Shutdown();
}

}  // namespace
}  // namespace sww::net
