// Determinism and distribution tests for the fleet workload samplers.
//
// The samplers' whole contract is schedule independence: the i-th draw is
// a pure function of (seed, i, stream), so the golden first-K values here
// pin the bit pattern forever — any change to CounterHash, the stream
// ids, or the jittered-quantile inversion shows up as a golden diff, not
// as a silent reshuffle of every downstream scenario.
#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <vector>

#include "load/samplers.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace sww::load {
namespace {

TEST(LoadSamplers, GoldenFirstDraws) {
  const double expected[8] = {
      0.93034039667142687, 0.19917790246429634, 0.97523166559080876,
      0.58256934394421012, 0.55187732091933372, 0.99816902304045507,
      0.62894382831000861, 0.46754025274370836,
  };
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(Draw(42, i, DrawStream::kPage), expected[i]) << i;
  }
  const std::uint64_t expected_u64[4] = {
      16903240629303690400ull,
      12043192113689477002ull,
      11780871626915272135ull,
      15802743936537045765ull,
  };
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(DrawU64(42, i, DrawStream::kTrace), expected_u64[i]) << i;
  }
}

TEST(LoadSamplers, StreamsAreIndependent) {
  // Same (seed, index) on different streams must decorrelate.
  EXPECT_NE(Draw(42, 0, DrawStream::kPage), Draw(42, 0, DrawStream::kClass));
  EXPECT_NE(Draw(42, 0, DrawStream::kUser), Draw(42, 0, DrawStream::kError));
  EXPECT_NE(DrawU64(42, 0, DrawStream::kTrace),
            DrawU64(43, 0, DrawStream::kTrace));
}

TEST(LoadSamplers, DrawsAreInUnitInterval) {
  for (int i = 0; i < 4096; ++i) {
    const double u = Draw(7, i, DrawStream::kArrivalJitter);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(LoadSamplers, UniformChiSquareWithinBounds) {
  // 20k uniform draws over 16 equiprobable cells.  15 degrees of freedom:
  // chi-square beyond 37.7 has p < 0.001 — deterministic draws, so this
  // either always passes or flags a genuinely broken generator.
  constexpr int kCells = 16;
  constexpr int kDraws = 20000;
  int counts[kCells] = {};
  for (int i = 0; i < kDraws; ++i) {
    const double u = Draw(1234, i, DrawStream::kNetworkJitter);
    ++counts[static_cast<int>(u * kCells)];
  }
  const double expected = static_cast<double>(kDraws) / kCells;
  double chi2 = 0.0;
  for (int c = 0; c < kCells; ++c) {
    const double d = counts[c] - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 37.7) << "uniform draws fail chi-square";
}

TEST(LoadSamplers, ZipfChiSquareMatchesAnalyticPmf) {
  // Sampled Zipf ranks against the analytic pmf the sampler exposes.
  constexpr int kItems = 32;
  constexpr int kDraws = 20000;
  ZipfSampler zipf(kItems, 1.1);
  std::vector<int> counts(kItems, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[zipf.Sample(Draw(99, i, DrawStream::kPage))];
  }
  double chi2 = 0.0;
  for (int k = 0; k < kItems; ++k) {
    const double expected = zipf.Probability(k) * kDraws;
    ASSERT_GT(expected, 5.0) << "cell too thin for chi-square at rank " << k;
    const double d = counts[k] - expected;
    chi2 += d * d / expected;
  }
  // 31 degrees of freedom: p < 0.001 beyond ~61.1.
  EXPECT_LT(chi2, 61.1) << "zipf draws fail chi-square";
}

TEST(LoadSamplers, ZipfHeadOutweighsTail) {
  ZipfSampler zipf(64, 1.0);
  EXPECT_GT(zipf.Probability(0), zipf.Probability(1));
  EXPECT_GT(zipf.Probability(1), zipf.Probability(63));
  double total = 0.0;
  for (std::size_t k = 0; k < 64; ++k) total += zipf.Probability(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(LoadSamplers, BitIdenticalAcrossSimdLanes) {
  // Draws must not depend on the active SIMD lane: run the same window
  // under every supported lane and require exact equality.
  const util::simd::Lane original = util::simd::ActiveLane();
  std::vector<double> reference;
  std::vector<std::uint64_t> reference_u64;
  for (util::simd::Lane lane :
       {util::simd::Lane::kScalar, util::simd::Lane::kSse2,
        util::simd::Lane::kAvx2}) {
    if (!util::simd::LaneSupported(lane)) continue;
    util::simd::SetActiveLane(lane);
    std::vector<double> draws;
    std::vector<std::uint64_t> draws_u64;
    for (int i = 0; i < 512; ++i) {
      draws.push_back(Draw(42, i, DrawStream::kPage));
      draws_u64.push_back(DrawU64(42, i, DrawStream::kTrace));
    }
    if (reference.empty()) {
      reference = draws;
      reference_u64 = draws_u64;
    } else {
      EXPECT_EQ(draws, reference)
          << "lane " << util::simd::LaneName(lane) << " diverged";
      EXPECT_EQ(draws_u64, reference_u64)
          << "lane " << util::simd::LaneName(lane) << " diverged (u64)";
    }
  }
  util::simd::SetActiveLane(original);
}

TEST(LoadSamplers, ArrivalScheduleIsThreadCountInvariant) {
  ArrivalCurve curve;
  curve.base_rps = 6.0;
  curve.diurnal_amplitude = 0.4;
  curve.diurnal_period_seconds = 60.0;
  curve.flash_crowds.push_back({20.0, 5.0, 3.0});
  const ArrivalSchedule schedule(curve, 60.0, 42);
  ASSERT_GT(schedule.count(), 0u);

  // Sequential reference.
  std::vector<double> reference(schedule.count());
  for (std::size_t i = 0; i < schedule.count(); ++i) {
    reference[i] = schedule.ArrivalSeconds(i);
  }
  // Evaluate the same indices from pools of several sizes; any thread may
  // compute any index, so the result must be bit-identical.
  for (int threads : {1, 2, 8}) {
    util::ThreadPool pool(threads);
    std::vector<double> parallel(schedule.count());
    pool.ParallelFor(static_cast<std::int64_t>(schedule.count()),
                     [&](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i) {
                         parallel[static_cast<std::size_t>(i)] =
                             schedule.ArrivalSeconds(
                                 static_cast<std::size_t>(i));
                       }
                     });
    EXPECT_EQ(parallel, reference) << "pool size " << threads;
  }
}

TEST(LoadSamplers, ArrivalScheduleGolden) {
  ArrivalCurve curve;
  curve.base_rps = 6.0;
  const ArrivalSchedule schedule(curve, 60.0, 42);
  EXPECT_EQ(schedule.count(), 360u);
  const double expected[4] = {
      0.11622440781507767,
      0.25083580937574207,
      0.3355206612060071,
      0.52192119517612989,
  };
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(schedule.ArrivalSeconds(i), expected[i]) << i;
  }
}

TEST(LoadSamplers, ArrivalScheduleIsStrictlyMonotone) {
  ArrivalCurve curve;
  curve.base_rps = 12.0;
  curve.diurnal_amplitude = 0.6;
  curve.diurnal_period_seconds = 120.0;
  curve.flash_crowds.push_back({30.0, 10.0, 6.0});
  const ArrivalSchedule schedule(curve, 120.0, 1001);
  ASSERT_GT(schedule.count(), 1u);
  double previous = -1.0;
  for (std::size_t i = 0; i < schedule.count(); ++i) {
    const double t = schedule.ArrivalSeconds(i);
    EXPECT_GT(t, previous) << "arrival " << i << " not after its predecessor";
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 120.0 + 1e-9);
    previous = t;
  }
}

TEST(LoadSamplers, FlashCrowdRaisesRate) {
  ArrivalCurve curve;
  curve.base_rps = 10.0;
  curve.flash_crowds.push_back({60.0, 10.0, 6.0});
  EXPECT_DOUBLE_EQ(curve.RateAt(30.0), 10.0);
  EXPECT_DOUBLE_EQ(curve.RateAt(65.0), 60.0);
  EXPECT_DOUBLE_EQ(curve.RateAt(70.0), 10.0);  // window is half-open
}

TEST(LoadSamplers, WeightedChoicePicksSlots) {
  const std::vector<double> cumulative = CumulativeWeights({7.0, 3.0});
  ASSERT_EQ(cumulative.size(), 2u);
  EXPECT_NEAR(cumulative[0], 0.7, 1e-12);
  EXPECT_NEAR(cumulative[1], 1.0, 1e-12);
  EXPECT_EQ(WeightedChoice(cumulative, 0.0), 0u);
  EXPECT_EQ(WeightedChoice(cumulative, 0.69), 0u);
  EXPECT_EQ(WeightedChoice(cumulative, 0.71), 1u);
  EXPECT_EQ(WeightedChoice(cumulative, 0.999), 1u);
}

}  // namespace
}  // namespace sww::load
