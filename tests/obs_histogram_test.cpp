// obs_histogram_test — the HDR log-linear histogram against its in-tree
// sort-based oracle (metrics::Percentile):
//   * randomized differential quantiles on 10k lognormal samples stay
//     within the documented 1/32 relative bucket error;
//   * concurrent recording merges deterministically — bucket counts,
//     count, min, max, and every quantile match a serial replay exactly;
//   * grid geometry round-trips (BucketIndex ↔ BucketUpperBound ↔
//     LowerBoundForUpper) and the documented edges hold (empty,
//     single-sample, underflow, overflow);
//   * MergeHistogramSnapshots over disjoint streams equals one histogram
//     fed the union.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include "metrics/stats.hpp"
#include "obs/registry.hpp"

namespace sww::obs {
namespace {

TEST(HistogramDifferential, QuantilesTrackSortOracleOnRandomStreams) {
  // Three deterministic lognormal streams at very different scales —
  // microsecond-ish latencies, unit-scale seconds, and large byte counts.
  const struct {
    double log_mean;
    double log_sigma;
  } shapes[] = {{-13.0, 1.0}, {0.0, 2.0}, {14.0, 0.5}};
  for (const auto& shape : shapes) {
    std::mt19937 rng(1234);
    std::lognormal_distribution<double> dist(shape.log_mean, shape.log_sigma);
    Histogram hist;
    std::vector<double> values;
    values.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      const double value = dist(rng);
      values.push_back(value);
      hist.Observe(value);
    }
    const HistogramSnapshot snap = hist.Snapshot();
    ASSERT_EQ(snap.count, values.size());
    for (const double q : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
      const double oracle = metrics::Percentile(values, q);
      const double estimate = HistogramSnapshotQuantile(snap, q);
      // Bucket midpoints are within half a bucket (1/64) of any value in
      // the bucket; the oracle's interpolated rank can land one bucket
      // over, so allow a full bucket width on either side.
      EXPECT_NEAR(estimate, oracle, oracle / 16.0)
          << "q=" << q << " sigma=" << shape.log_sigma;
    }
    // min/max are tracked exactly, not from the grid.
    EXPECT_DOUBLE_EQ(snap.min, *std::min_element(values.begin(), values.end()));
    EXPECT_DOUBLE_EQ(snap.max, *std::max_element(values.begin(), values.end()));
  }
}

TEST(HistogramConcurrency, ConcurrentRecordingMergesDeterministically) {
  // The same 10k-value stream recorded by 4 racing threads and by one
  // serial loop must snapshot identically in everything but `sum`/`mean`
  // (floating-point accumulation order).
  std::mt19937 rng(99);
  std::lognormal_distribution<double> dist(0.0, 3.0);
  std::vector<double> values;
  values.reserve(10000);
  for (int i = 0; i < 10000; ++i) values.push_back(dist(rng));

  Histogram serial;
  for (double value : values) serial.Observe(value);

  Histogram racing;
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&racing, &values, t] {
      for (std::size_t i = t; i < values.size(); i += kThreads) {
        racing.Observe(values[i]);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const HistogramSnapshot a = serial.Snapshot();
  const HistogramSnapshot b = racing.Snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.bounds, b.bounds);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p95, b.p95);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
  // Same additions in a different order: near, not necessarily equal.
  EXPECT_NEAR(a.sum, b.sum, std::abs(a.sum) * 1e-9);
}

TEST(HistogramEdges, EmptySnapshotIsAllZero) {
  Histogram hist;
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_TRUE(snap.bounds.empty());
  ASSERT_EQ(snap.counts.size(), 1u);  // just the (empty) overflow bucket
  EXPECT_EQ(snap.counts[0], 0u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  EXPECT_DOUBLE_EQ(snap.p50, 0.0);
  EXPECT_DOUBLE_EQ(HistogramSnapshotQuantile(snap, 99.0), 0.0);
}

TEST(HistogramEdges, SingleSampleQuantilesAreExact) {
  Histogram hist;
  hist.Observe(0.125);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  ASSERT_EQ(snap.bounds.size(), 1u);
  ASSERT_EQ(snap.counts.size(), 2u);
  EXPECT_EQ(snap.counts[0], 1u);
  // Clamping to [min, max] collapses the bucket midpoint onto the value.
  EXPECT_DOUBLE_EQ(snap.min, 0.125);
  EXPECT_DOUBLE_EQ(snap.max, 0.125);
  EXPECT_DOUBLE_EQ(snap.p50, 0.125);
  EXPECT_DOUBLE_EQ(snap.p99, 0.125);
}

TEST(HistogramEdges, OverflowRoutesToMax) {
  Histogram hist;
  hist.Observe(Histogram::kMaxValue);  // first untrackable value
  hist.Observe(1e12);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_TRUE(snap.bounds.empty());  // nothing in the tracked range
  ASSERT_EQ(snap.counts.size(), 1u);
  EXPECT_EQ(snap.counts.back(), 2u);
  EXPECT_DOUBLE_EQ(snap.max, 1e12);
  // Quantiles falling in the overflow bucket report the tracked max.
  EXPECT_DOUBLE_EQ(snap.p50, 1e12);
  EXPECT_DOUBLE_EQ(snap.p99, 1e12);
}

TEST(HistogramEdges, UnderflowAbsorbsZeroNegativeAndNaN) {
  Histogram hist;
  hist.Observe(0.0);
  hist.Observe(-3.0);
  hist.Observe(std::numeric_limits<double>::quiet_NaN());
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  ASSERT_EQ(snap.bounds.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.bounds[0], Histogram::kMinValue);
  EXPECT_EQ(snap.counts[0], 3u);
  // NaN never wins a min/max CAS; the real extremes survive.
  EXPECT_DOUBLE_EQ(snap.min, -3.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  // The underflow bucket midpoint clamps into [min, max].
  EXPECT_DOUBLE_EQ(snap.p50, 0.0);
}

TEST(HistogramGeometry, IndexAndBoundsRoundTrip) {
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kMinValue), 1u);
  EXPECT_EQ(Histogram::BucketIndex(
                std::nextafter(Histogram::kMinValue, 0.0)),
            0u);
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kMaxValue),
            Histogram::kBucketCount - 1);
  for (std::size_t i = 1; i + 1 < Histogram::kBucketCount; i += 7) {
    const double upper = Histogram::BucketUpperBound(i);
    const double lower = Histogram::LowerBoundForUpper(upper);
    ASSERT_LT(lower, upper) << i;
    // Lower bound is inclusive, upper exclusive (it opens bucket i+1, or
    // the overflow bucket when upper == kMaxValue).
    EXPECT_EQ(Histogram::BucketIndex(lower), i);
    EXPECT_EQ(Histogram::BucketIndex(std::nextafter(upper, 0.0)), i);
    EXPECT_EQ(Histogram::BucketIndex(upper), i + 1);
    // Relative bucket width never exceeds 1/kSubBuckets of the lower end.
    EXPECT_LE(upper - lower,
              lower / static_cast<double>(Histogram::kSubBuckets) * 1.0001);
  }
  // Bounds are strictly increasing across the whole grid.
  for (std::size_t i = 1; i + 2 < Histogram::kBucketCount; ++i) {
    EXPECT_LT(Histogram::BucketUpperBound(i), Histogram::BucketUpperBound(i + 1));
  }
}

TEST(HistogramMerge, DisjointStreamsMergeToTheUnion) {
  Histogram evens;
  Histogram odds;
  Histogram all;
  for (int i = 1; i <= 1000; ++i) {
    (i % 2 == 0 ? evens : odds).Observe(i);
    all.Observe(i);
  }
  const HistogramSnapshot merged =
      MergeHistogramSnapshots({evens.Snapshot(), odds.Snapshot()});
  const HistogramSnapshot expected = all.Snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.bounds, expected.bounds);
  EXPECT_EQ(merged.counts, expected.counts);
  EXPECT_DOUBLE_EQ(merged.min, expected.min);
  EXPECT_DOUBLE_EQ(merged.max, expected.max);
  EXPECT_DOUBLE_EQ(merged.p50, expected.p50);
  EXPECT_DOUBLE_EQ(merged.p95, expected.p95);
  EXPECT_DOUBLE_EQ(merged.p99, expected.p99);
  EXPECT_NEAR(merged.sum, expected.sum, expected.sum * 1e-12);

  // Merging in an empty part changes nothing; merging nothing is empty.
  const HistogramSnapshot with_empty =
      MergeHistogramSnapshots({expected, Histogram().Snapshot()});
  EXPECT_EQ(with_empty.counts, expected.counts);
  EXPECT_DOUBLE_EQ(with_empty.p99, expected.p99);
  const HistogramSnapshot none = MergeHistogramSnapshots({});
  EXPECT_EQ(none.count, 0u);
  EXPECT_DOUBLE_EQ(none.min, 0.0);
  EXPECT_DOUBLE_EQ(none.max, 0.0);
}

}  // namespace
}  // namespace sww::obs
