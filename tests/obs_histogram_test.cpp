// obs_histogram_test — the HDR log-linear histogram against its in-tree
// sort-based oracle (metrics::Percentile):
//   * randomized differential quantiles on 10k lognormal samples stay
//     within the documented 1/32 relative bucket error;
//   * concurrent recording merges deterministically — bucket counts,
//     count, min, max, and every quantile match a serial replay exactly;
//   * grid geometry round-trips (BucketIndex ↔ BucketUpperBound ↔
//     LowerBoundForUpper) and the documented edges hold (empty,
//     single-sample, underflow, overflow);
//   * MergeHistogramSnapshots over disjoint streams equals one histogram
//     fed the union.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include "metrics/stats.hpp"
#include "obs/registry.hpp"

namespace sww::obs {
namespace {

TEST(HistogramDifferential, QuantilesTrackSortOracleOnRandomStreams) {
  // Three deterministic lognormal streams at very different scales —
  // microsecond-ish latencies, unit-scale seconds, and large byte counts.
  const struct {
    double log_mean;
    double log_sigma;
  } shapes[] = {{-13.0, 1.0}, {0.0, 2.0}, {14.0, 0.5}};
  for (const auto& shape : shapes) {
    std::mt19937 rng(1234);
    std::lognormal_distribution<double> dist(shape.log_mean, shape.log_sigma);
    Histogram hist;
    std::vector<double> values;
    values.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      const double value = dist(rng);
      values.push_back(value);
      hist.Observe(value);
    }
    const HistogramSnapshot snap = hist.Snapshot();
    ASSERT_EQ(snap.count, values.size());
    for (const double q : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
      const double oracle = metrics::Percentile(values, q);
      const double estimate = HistogramSnapshotQuantile(snap, q);
      // Bucket midpoints are within half a bucket (1/64) of any value in
      // the bucket; the oracle's interpolated rank can land one bucket
      // over, so allow a full bucket width on either side.
      EXPECT_NEAR(estimate, oracle, oracle / 16.0)
          << "q=" << q << " sigma=" << shape.log_sigma;
    }
    // min/max are tracked exactly, not from the grid.
    EXPECT_DOUBLE_EQ(snap.min, *std::min_element(values.begin(), values.end()));
    EXPECT_DOUBLE_EQ(snap.max, *std::max_element(values.begin(), values.end()));
  }
}

TEST(HistogramConcurrency, ConcurrentRecordingMergesDeterministically) {
  // The same 10k-value stream recorded by 4 racing threads and by one
  // serial loop must snapshot identically in everything but `sum`/`mean`
  // (floating-point accumulation order).
  std::mt19937 rng(99);
  std::lognormal_distribution<double> dist(0.0, 3.0);
  std::vector<double> values;
  values.reserve(10000);
  for (int i = 0; i < 10000; ++i) values.push_back(dist(rng));

  Histogram serial;
  for (double value : values) serial.Observe(value);

  Histogram racing;
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&racing, &values, t] {
      for (std::size_t i = t; i < values.size(); i += kThreads) {
        racing.Observe(values[i]);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const HistogramSnapshot a = serial.Snapshot();
  const HistogramSnapshot b = racing.Snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.bounds, b.bounds);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p95, b.p95);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
  // Same additions in a different order: near, not necessarily equal.
  EXPECT_NEAR(a.sum, b.sum, std::abs(a.sum) * 1e-9);
}

TEST(HistogramEdges, EmptySnapshotIsAllZero) {
  Histogram hist;
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_TRUE(snap.bounds.empty());
  ASSERT_EQ(snap.counts.size(), 1u);  // just the (empty) overflow bucket
  EXPECT_EQ(snap.counts[0], 0u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  EXPECT_DOUBLE_EQ(snap.p50, 0.0);
  EXPECT_DOUBLE_EQ(HistogramSnapshotQuantile(snap, 99.0), 0.0);
}

TEST(HistogramEdges, SingleSampleQuantilesAreExact) {
  Histogram hist;
  hist.Observe(0.125);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  ASSERT_EQ(snap.bounds.size(), 1u);
  ASSERT_EQ(snap.counts.size(), 2u);
  EXPECT_EQ(snap.counts[0], 1u);
  // Clamping to [min, max] collapses the bucket midpoint onto the value.
  EXPECT_DOUBLE_EQ(snap.min, 0.125);
  EXPECT_DOUBLE_EQ(snap.max, 0.125);
  EXPECT_DOUBLE_EQ(snap.p50, 0.125);
  EXPECT_DOUBLE_EQ(snap.p99, 0.125);
}

TEST(HistogramEdges, OverflowRoutesToMax) {
  Histogram hist;
  hist.Observe(Histogram::kMaxValue);  // first untrackable value
  hist.Observe(1e12);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_TRUE(snap.bounds.empty());  // nothing in the tracked range
  ASSERT_EQ(snap.counts.size(), 1u);
  EXPECT_EQ(snap.counts.back(), 2u);
  EXPECT_DOUBLE_EQ(snap.max, 1e12);
  // Quantiles falling in the overflow bucket report the tracked max.
  EXPECT_DOUBLE_EQ(snap.p50, 1e12);
  EXPECT_DOUBLE_EQ(snap.p99, 1e12);
}

TEST(HistogramEdges, UnderflowAbsorbsZeroNegativeAndNaN) {
  Histogram hist;
  hist.Observe(0.0);
  hist.Observe(-3.0);
  hist.Observe(std::numeric_limits<double>::quiet_NaN());
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  ASSERT_EQ(snap.bounds.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.bounds[0], Histogram::kMinValue);
  EXPECT_EQ(snap.counts[0], 3u);
  // NaN never wins a min/max CAS; the real extremes survive.
  EXPECT_DOUBLE_EQ(snap.min, -3.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  // The underflow bucket midpoint clamps into [min, max].
  EXPECT_DOUBLE_EQ(snap.p50, 0.0);
}

TEST(HistogramGeometry, IndexAndBoundsRoundTrip) {
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kMinValue), 1u);
  EXPECT_EQ(Histogram::BucketIndex(
                std::nextafter(Histogram::kMinValue, 0.0)),
            0u);
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kMaxValue),
            Histogram::kBucketCount - 1);
  for (std::size_t i = 1; i + 1 < Histogram::kBucketCount; i += 7) {
    const double upper = Histogram::BucketUpperBound(i);
    const double lower = Histogram::LowerBoundForUpper(upper);
    ASSERT_LT(lower, upper) << i;
    // Lower bound is inclusive, upper exclusive (it opens bucket i+1, or
    // the overflow bucket when upper == kMaxValue).
    EXPECT_EQ(Histogram::BucketIndex(lower), i);
    EXPECT_EQ(Histogram::BucketIndex(std::nextafter(upper, 0.0)), i);
    EXPECT_EQ(Histogram::BucketIndex(upper), i + 1);
    // Relative bucket width never exceeds 1/kSubBuckets of the lower end.
    EXPECT_LE(upper - lower,
              lower / static_cast<double>(Histogram::kSubBuckets) * 1.0001);
  }
  // Bounds are strictly increasing across the whole grid.
  for (std::size_t i = 1; i + 2 < Histogram::kBucketCount; ++i) {
    EXPECT_LT(Histogram::BucketUpperBound(i), Histogram::BucketUpperBound(i + 1));
  }
}

TEST(HistogramMerge, DisjointStreamsMergeToTheUnion) {
  Histogram evens;
  Histogram odds;
  Histogram all;
  for (int i = 1; i <= 1000; ++i) {
    (i % 2 == 0 ? evens : odds).Observe(i);
    all.Observe(i);
  }
  const HistogramSnapshot merged =
      MergeHistogramSnapshots({evens.Snapshot(), odds.Snapshot()});
  const HistogramSnapshot expected = all.Snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.bounds, expected.bounds);
  EXPECT_EQ(merged.counts, expected.counts);
  EXPECT_DOUBLE_EQ(merged.min, expected.min);
  EXPECT_DOUBLE_EQ(merged.max, expected.max);
  EXPECT_DOUBLE_EQ(merged.p50, expected.p50);
  EXPECT_DOUBLE_EQ(merged.p95, expected.p95);
  EXPECT_DOUBLE_EQ(merged.p99, expected.p99);
  EXPECT_NEAR(merged.sum, expected.sum, expected.sum * 1e-12);

  // Merging in an empty part changes nothing; merging nothing is empty.
  const HistogramSnapshot with_empty =
      MergeHistogramSnapshots({expected, Histogram().Snapshot()});
  EXPECT_EQ(with_empty.counts, expected.counts);
  EXPECT_DOUBLE_EQ(with_empty.p99, expected.p99);
  const HistogramSnapshot none = MergeHistogramSnapshots({});
  EXPECT_EQ(none.count, 0u);
  EXPECT_DOUBLE_EQ(none.min, 0.0);
  EXPECT_DOUBLE_EQ(none.max, 0.0);
}

// Find the exemplar whose bucket covers `value`, or the overflow slot.
const HistogramExemplar* ExemplarFor(const HistogramSnapshot& snapshot,
                                     double value) {
  if (snapshot.exemplars.size() != snapshot.counts.size()) return nullptr;
  for (std::size_t i = 0; i < snapshot.bounds.size(); ++i) {
    if (value <= snapshot.bounds[i]) return &snapshot.exemplars[i];
  }
  return &snapshot.exemplars.back();
}

TEST(HistogramExemplars, TracedObserveRetainsNewestObservationPerBucket) {
  Histogram hist;
  hist.Observe(1.0, /*trace_id=*/0xaaa, /*timestamp_nanos=*/10);
  hist.Observe(1.0, /*trace_id=*/0xbbb, /*timestamp_nanos=*/20);
  hist.Observe(1000.0, /*trace_id=*/0xccc, /*timestamp_nanos=*/15);
  hist.Observe(2.0 * Histogram::kMaxValue, /*trace_id=*/0xddd,
               /*timestamp_nanos=*/30);
  // An untraced observation counts but never claims an exemplar slot.
  hist.Observe(1000.0);
  hist.Observe(1000.0, /*trace_id=*/0, /*timestamp_nanos=*/99);

  const HistogramSnapshot snapshot = hist.Snapshot();
  ASSERT_EQ(snapshot.exemplars.size(), snapshot.counts.size());
  const HistogramExemplar* near_one = ExemplarFor(snapshot, 1.0);
  ASSERT_NE(near_one, nullptr);
  EXPECT_EQ(near_one->trace_id, 0xbbbu);  // latest uncontended write wins
  EXPECT_EQ(near_one->timestamp_nanos, 20u);
  EXPECT_DOUBLE_EQ(near_one->value, 1.0);
  const HistogramExemplar* near_thousand = ExemplarFor(snapshot, 1000.0);
  ASSERT_NE(near_thousand, nullptr);
  EXPECT_EQ(near_thousand->trace_id, 0xcccu);
  EXPECT_EQ(near_thousand->timestamp_nanos, 15u);
  // Overflow observations land in the +Inf exemplar slot (snapshot back).
  EXPECT_EQ(snapshot.exemplars.back().trace_id, 0xdddu);
}

TEST(HistogramExemplars, MergeKeepsNewestPerBucketInAnyPartOrder) {
  Histogram a;
  Histogram b;
  a.Observe(5.0, /*trace_id=*/0x1, /*timestamp_nanos=*/100);
  b.Observe(5.0, /*trace_id=*/0x2, /*timestamp_nanos=*/200);
  a.Observe(2.0 * Histogram::kMaxValue, /*trace_id=*/0x3,
            /*timestamp_nanos=*/300);
  b.Observe(2.0 * Histogram::kMaxValue, /*trace_id=*/0x4,
            /*timestamp_nanos=*/250);
  const HistogramSnapshot sa = a.Snapshot();
  const HistogramSnapshot sb = b.Snapshot();

  const HistogramSnapshot forward = MergeHistogramSnapshots({sa, sb});
  const HistogramSnapshot backward = MergeHistogramSnapshots({sb, sa});
  for (const HistogramSnapshot& merged : {forward, backward}) {
    const HistogramExemplar* near_five = ExemplarFor(merged, 5.0);
    ASSERT_NE(near_five, nullptr);
    EXPECT_EQ(near_five->trace_id, 0x2u);  // newest timestamp wins
    EXPECT_EQ(merged.exemplars.back().trace_id, 0x3u);
  }

  // Equal timestamps: the larger trace id wins, so the merge stays a
  // deterministic function of the part *set*, not the part order.
  Histogram c;
  Histogram d;
  c.Observe(7.0, /*trace_id=*/0x10, /*timestamp_nanos=*/500);
  d.Observe(7.0, /*trace_id=*/0x20, /*timestamp_nanos=*/500);
  const HistogramSnapshot tie1 =
      MergeHistogramSnapshots({c.Snapshot(), d.Snapshot()});
  const HistogramSnapshot tie2 =
      MergeHistogramSnapshots({d.Snapshot(), c.Snapshot()});
  const HistogramExemplar* t1 = ExemplarFor(tie1, 7.0);
  const HistogramExemplar* t2 = ExemplarFor(tie2, 7.0);
  ASSERT_NE(t1, nullptr);
  ASSERT_NE(t2, nullptr);
  EXPECT_EQ(t1->trace_id, 0x20u);
  EXPECT_EQ(t2->trace_id, 0x20u);

  // Parts without exemplars merge counts but contribute no exemplars.
  HistogramSnapshot bare = sa;
  bare.exemplars.clear();
  const HistogramSnapshot with_bare = MergeHistogramSnapshots({bare, sb});
  const HistogramExemplar* only_b = ExemplarFor(with_bare, 5.0);
  ASSERT_NE(only_b, nullptr);
  EXPECT_EQ(only_b->trace_id, 0x2u);
}

TEST(HistogramExemplars, RegistryResetClearsSlotsAndTheyRepopulate) {
  Registry registry;
  Histogram& hist = registry.GetHistogram("exemplar.reset");
  hist.Observe(3.0, /*trace_id=*/0xabc, /*timestamp_nanos=*/42);
  const HistogramSnapshot before = hist.Snapshot();
  ASSERT_EQ(ExemplarFor(before, 3.0)->trace_id, 0xabcu);

  registry.Reset();
  const HistogramSnapshot cleared = hist.Snapshot();
  EXPECT_EQ(cleared.count, 0u);
  for (const HistogramExemplar& exemplar : cleared.exemplars) {
    EXPECT_EQ(exemplar.trace_id, 0u);  // a fresh run inherits no traces
  }

  // The seqlock slots stay usable after the wipe.
  hist.Observe(3.0, /*trace_id=*/0xdef, /*timestamp_nanos=*/43);
  const HistogramSnapshot after = hist.Snapshot();
  const HistogramExemplar* repopulated = ExemplarFor(after, 3.0);
  ASSERT_NE(repopulated, nullptr);
  EXPECT_EQ(repopulated->trace_id, 0xdefu);
  EXPECT_EQ(repopulated->timestamp_nanos, 43u);
}

TEST(HistogramExemplars, ConcurrentTracedObservesStayCoherent) {
  // Bucket counts must replay serially regardless of exemplar traffic,
  // and every exemplar a snapshot reads must be untorn: its value must
  // belong to the bucket whose slot reported it, and its trace id must
  // be one a writer actually wrote with that value.
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // value encodes (thread, i) so a torn slot is detectable.
        const double value = 1.0 + static_cast<double>(t % 4);
        const std::uint64_t trace_id =
            (static_cast<std::uint64_t>(t) << 32) | (i + 1);
        hist.Observe(value, trace_id, trace_id);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  Histogram serial;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      serial.Observe(1.0 + static_cast<double>(t % 4));
    }
  }
  const HistogramSnapshot concurrent = hist.Snapshot();
  const HistogramSnapshot expected = serial.Snapshot();
  EXPECT_EQ(concurrent.counts, expected.counts);
  EXPECT_EQ(concurrent.count, expected.count);

  ASSERT_EQ(concurrent.exemplars.size(), concurrent.counts.size());
  for (std::size_t i = 0; i < concurrent.bounds.size(); ++i) {
    const HistogramExemplar& exemplar = concurrent.exemplars[i];
    if (exemplar.trace_id == 0) continue;
    // Untorn: the exemplar's value lands in the bucket that held it...
    EXPECT_EQ(Histogram::BucketIndex(exemplar.value),
              Histogram::BucketIndex(
                  std::nextafter(concurrent.bounds[i], 0.0)));
    // ...and trace id / timestamp / value are one writer's consistent
    // triple: the id encodes the thread whose value was written.
    const auto thread = static_cast<int>(exemplar.trace_id >> 32);
    EXPECT_DOUBLE_EQ(exemplar.value, 1.0 + static_cast<double>(thread % 4));
    EXPECT_EQ(exemplar.timestamp_nanos, exemplar.trace_id);
  }
}

}  // namespace
}  // namespace sww::obs
