// Tests for HTTP/2 SETTINGS handling and the paper's SETTINGS_GEN_ABILITY
// extension (§3).
#include <gtest/gtest.h>

#include "http2/settings.hpp"

namespace sww::http2 {
namespace {

TEST(Settings, RfcDefaults) {
  Settings settings;
  EXPECT_EQ(settings.header_table_size(), 4096u);
  EXPECT_TRUE(settings.enable_push());
  EXPECT_EQ(settings.initial_window_size(), 65535u);
  EXPECT_EQ(settings.max_frame_size(), 16384u);
  EXPECT_EQ(settings.gen_ability(), kGenAbilityNone);
}

TEST(Settings, GenAbilityIdentifierIsSevenAsInPaper) {
  // "The identifier is 0x07 (as the first unreserved value, for
  // prototyping purposes) and the value is set to 1."
  EXPECT_EQ(kSettingsGenAbility, 0x07);
  Settings settings;
  ASSERT_TRUE(settings.Apply({kSettingsGenAbility, 1}).ok());
  EXPECT_EQ(settings.gen_ability(), kGenAbilityFull);
}

TEST(Settings, NonDefaultEntriesContainGenAbility) {
  Settings settings;
  settings.set_gen_ability(kGenAbilityFull);
  const auto entries = settings.NonDefaultEntries();
  bool found = false;
  for (const SettingsEntry& entry : entries) {
    if (entry.identifier == kSettingsGenAbility) {
      found = true;
      EXPECT_EQ(entry.value, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Settings, EnablePushValidation) {
  Settings settings;
  EXPECT_TRUE(settings.Apply({kSettingsEnablePush, 0}).ok());
  EXPECT_FALSE(settings.enable_push());
  EXPECT_FALSE(settings.Apply({kSettingsEnablePush, 2}).ok());
}

TEST(Settings, InitialWindowSizeBounds) {
  Settings settings;
  EXPECT_TRUE(settings.Apply({kSettingsInitialWindowSize, 0x7fffffffu}).ok());
  auto status = settings.Apply({kSettingsInitialWindowSize, 0x80000000u});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kFlowControl);
}

TEST(Settings, MaxFrameSizeBounds) {
  Settings settings;
  EXPECT_FALSE(settings.Apply({kSettingsMaxFrameSize, 16383}).ok());
  EXPECT_TRUE(settings.Apply({kSettingsMaxFrameSize, 16384}).ok());
  EXPECT_TRUE(settings.Apply({kSettingsMaxFrameSize, 16777215}).ok());
  EXPECT_FALSE(settings.Apply({kSettingsMaxFrameSize, 16777216}).ok());
}

TEST(Settings, UnknownIdentifiersIgnoredButRecorded) {
  // RFC 9113 §6.5.2 — this rule is what lets naïve peers interoperate
  // with SWW endpoints.
  Settings settings;
  ASSERT_TRUE(settings.Apply({0x99, 1234}).ok());
  EXPECT_EQ(settings.unknown().at(0x99), 1234u);
  // No protocol-visible effect.
  EXPECT_EQ(settings.NonDefaultEntries().size(), 0u);
}

TEST(Settings, ApplyAllStopsAtFirstError) {
  Settings settings;
  const std::vector<SettingsEntry> entries = {
      {kSettingsHeaderTableSize, 8192},
      {kSettingsEnablePush, 7},   // invalid
      {kSettingsGenAbility, 1}};  // never applied
  EXPECT_FALSE(settings.ApplyAll(entries).ok());
  EXPECT_EQ(settings.header_table_size(), 8192u);
  EXPECT_EQ(settings.gen_ability(), kGenAbilityNone);
}

// --- negotiation matrix (§3 and §6.2 of the paper) --------------------------

struct NegotiationCase {
  std::uint32_t client;
  std::uint32_t server;
  std::uint32_t expected;
  bool generative;
};

class GenAbilityNegotiation : public ::testing::TestWithParam<NegotiationCase> {};

TEST_P(GenAbilityNegotiation, MatrixMatchesPaper) {
  const NegotiationCase& c = GetParam();
  EXPECT_EQ(NegotiateGenAbility(c.client, c.server), c.expected);
  EXPECT_EQ((NegotiateGenAbility(c.client, c.server) & kGenAbilityFull) != 0,
            c.generative);
}

// §6.2: "Basic functionality testing covered scenarios where both client
// and server support generated content, only one side supports generated
// content, and no side supports it.  Except for the first scenario, in all
// other cases the communication defaulted to standard HTTP/2."
INSTANTIATE_TEST_SUITE_P(
    Paper, GenAbilityNegotiation,
    ::testing::Values(
        NegotiationCase{kGenAbilityFull, kGenAbilityFull, kGenAbilityFull, true},
        NegotiationCase{kGenAbilityFull, kGenAbilityNone, kGenAbilityNone, false},
        NegotiationCase{kGenAbilityNone, kGenAbilityFull, kGenAbilityNone, false},
        NegotiationCase{kGenAbilityNone, kGenAbilityNone, kGenAbilityNone, false},
        // "the 32-bit field can be used to negotiate more complex support
        // options, such as upscale-only."
        NegotiationCase{kGenAbilityUpscaleOnly | kGenAbilityFull,
                        kGenAbilityUpscaleOnly, kGenAbilityUpscaleOnly, false},
        NegotiationCase{kGenAbilityFull | kGenAbilityFrameRateBoost,
                        kGenAbilityFull | kGenAbilityFrameRateBoost,
                        kGenAbilityFull | kGenAbilityFrameRateBoost, true}));

TEST(GenAbilityToString, Readable) {
  EXPECT_EQ(GenAbilityToString(kGenAbilityNone), "none");
  EXPECT_EQ(GenAbilityToString(kGenAbilityFull), "full");
  EXPECT_EQ(GenAbilityToString(kGenAbilityFull | kGenAbilityUpscaleOnly),
            "full|upscale-only");
  EXPECT_EQ(GenAbilityToString(0x100), "unknown-bits");
}

}  // namespace
}  // namespace sww::http2
