// parallel_determinism_test — the acceptance test for the parallel
// generation engine's core contract: output bytes are identical no matter
// how many pool workers run the kernels or fan out the assets.  Covered at
// three layers:
//   * kernel      — DiffusionModel::Generate with 0/1/2/8-thread pools,
//   * pipeline    — MediaGenerator::GenerateBatch (items, stats, audit),
//   * end-to-end  — a full multi-asset page fetch through LocalSession.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "genai/diffusion.hpp"
#include "html/parser.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sww {
namespace {

// --- kernel ------------------------------------------------------------------

TEST(ParallelDeterminism, CounterHashIsScheduleFree) {
  // The per-pixel texture source: a pure function of (seed, x, y), so the
  // same coordinate hashes identically whether visited first or last.
  EXPECT_EQ(util::CounterHash(42, 3, 5), util::CounterHash(42, 3, 5));
  EXPECT_NE(util::CounterHash(42, 3, 5), util::CounterHash(42, 5, 3));
  EXPECT_NE(util::CounterHash(42, 3, 5), util::CounterHash(43, 3, 5));
  const double v = util::CounterRange(7, 11, 13, -9.0, 9.0);
  EXPECT_GE(v, -9.0);
  EXPECT_LT(v, 9.0);
  EXPECT_DOUBLE_EQ(v, util::CounterRange(7, 11, 13, -9.0, 9.0));
}

TEST(ParallelDeterminism, DiffusionBytesIdenticalAcrossThreadCounts) {
  genai::DiffusionModel serial(genai::FindImageModel(genai::kSd3Medium).value());
  const auto baseline =
      serial.Generate("a goldfish in a bowl", 96, 64, /*seed=*/99);
  ASSERT_TRUE(baseline.ok());
  const std::string golden = baseline.value().image.ToPpm();

  for (int threads : {1, 2, 8}) {
    util::ThreadPool pool(threads);
    genai::DiffusionModel model(
        genai::FindImageModel(genai::kSd3Medium).value());
    model.set_thread_pool(&pool);
    const auto parallel =
        model.Generate("a goldfish in a bowl", 96, 64, /*seed=*/99);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel.value().image.ToPpm(), golden)
        << "diffusion output diverged at " << threads << " threads";
  }
}

// --- pipeline ----------------------------------------------------------------

std::vector<html::GeneratedContentSpec> MenuSpecs() {
  auto doc = html::ParseDocument(core::MakeFoodMenuPage(/*dish_count=*/6).html);
  EXPECT_TRUE(doc.ok());
  auto extraction = html::ExtractGeneratedContent(*doc.value());
  EXPECT_GT(extraction.specs.size(), 6u);
  return extraction.specs;
}

TEST(ParallelDeterminism, GenerateBatchMatchesSerialItemForItem) {
  const auto specs = MenuSpecs();

  core::MediaGenerator serial =
      core::MediaGenerator::Create(energy::Laptop(), {}).value();
  auto serial_batch = serial.GenerateBatch(specs);
  ASSERT_TRUE(serial_batch.ok());

  for (int threads : {1, 2, 8}) {
    util::ThreadPool pool(threads);
    core::MediaGenerator::Options options;
    options.pool = &pool;
    core::MediaGenerator parallel =
        core::MediaGenerator::Create(energy::Laptop(), options).value();
    auto batch = parallel.GenerateBatch(specs);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch.value().items.size(), serial_batch.value().items.size());
    for (std::size_t i = 0; i < batch.value().items.size(); ++i) {
      const auto& a = serial_batch.value().items[i];
      const auto& b = batch.value().items[i];
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.file_bytes, b.file_bytes) << "item " << i;
      EXPECT_EQ(a.text, b.text) << "item " << i;
      EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    }
    // Device-seconds (the energy-accounting sum) never depends on lanes.
    EXPECT_DOUBLE_EQ(batch.value().device_seconds,
                     serial_batch.value().device_seconds);
    // The makespan does: more lanes can only shrink it.
    EXPECT_LE(batch.value().wall_seconds, batch.value().device_seconds + 1e-9);
    EXPECT_EQ(serial.items_generated(), parallel.items_generated());
    EXPECT_DOUBLE_EQ(serial.total_seconds(), parallel.total_seconds());
  }
}

TEST(ParallelDeterminism, BatchFailsWithFirstSpecOrderError) {
  auto specs = MenuSpecs();
  html::GeneratedContentSpec broken;
  broken.type = html::GeneratedContentType::kImage;
  broken.metadata = json::Value{json::Object{}};
  broken.metadata.Set("prompt", "");
  specs.insert(specs.begin() + 1, broken);

  util::ThreadPool pool(4);
  core::MediaGenerator::Options options;
  options.pool = &pool;
  core::MediaGenerator generator =
      core::MediaGenerator::Create(energy::Laptop(), options).value();
  auto batch = generator.GenerateBatch(specs);
  EXPECT_FALSE(batch.ok());
  // Serial semantics: only the spec before the failure produced effects.
  EXPECT_EQ(generator.items_generated(), 1u);
}

// --- end-to-end --------------------------------------------------------------

struct PageRun {
  std::string final_html;
  std::map<std::string, util::Bytes> files;
  std::size_t generated_items = 0;
  double generation_seconds = 0.0;
  double generation_wall_seconds = 0.0;
  obs::RegistrySnapshot snapshot;
};

PageRun FetchMenuPage(util::ThreadPool* pool) {
  obs::Registry::Default().Reset();
  // Span ids feed the injected sww-trace header; reset them so every run
  // puts identical header bytes (and thus identical byte counters) on the
  // wire regardless of how many spans earlier runs minted.
  obs::Tracer::Default().Clear();
  core::ContentStore store;
  EXPECT_TRUE(
      store.AddPage("/menu", core::MakeFoodMenuPage(/*dish_count=*/6).html)
          .ok());
  core::LocalSession::Options options;
  options.client.generator.pool = pool;
  auto session = core::LocalSession::Start(&store, options);
  EXPECT_TRUE(session.ok());
  auto fetch = session.value()->FetchPage("/menu");
  EXPECT_TRUE(fetch.ok());
  PageRun run;
  run.final_html = fetch.value().final_html;
  run.files = fetch.value().files;
  run.generated_items = fetch.value().generated_items;
  run.generation_seconds = fetch.value().generation_seconds;
  run.generation_wall_seconds = fetch.value().generation_wall_seconds;
  run.snapshot = obs::Registry::Default().Snapshot();
  obs::Registry::Default().Reset();
  return run;
}

TEST(ParallelDeterminism, FullPageRenderIdenticalAcrossThreadCounts) {
  const PageRun golden = FetchMenuPage(nullptr);
  ASSERT_GT(golden.generated_items, 6u);
  EXPECT_DOUBLE_EQ(golden.generation_wall_seconds, golden.generation_seconds)
      << "serial fetch: makespan equals the device-second sum";

  for (int threads : {1, 2, 8}) {
    util::ThreadPool pool(threads);
    const PageRun run = FetchMenuPage(&pool);
    EXPECT_EQ(run.final_html, golden.final_html)
        << "DOM diverged at " << threads << " threads";
    ASSERT_EQ(run.files.size(), golden.files.size());
    for (const auto& [path, bytes] : golden.files) {
      auto it = run.files.find(path);
      ASSERT_NE(it, run.files.end()) << path;
      EXPECT_EQ(it->second, bytes) << path << " at " << threads << " threads";
    }
    EXPECT_EQ(run.generated_items, golden.generated_items);
    EXPECT_DOUBLE_EQ(run.generation_seconds, golden.generation_seconds);
    EXPECT_LE(run.generation_wall_seconds, run.generation_seconds + 1e-9);
    // Telemetry merges on the calling thread in spec order, so even the
    // registry counters match the serial run exactly.
    EXPECT_EQ(run.snapshot.counters, golden.snapshot.counters)
        << "counters diverged at " << threads << " threads";
  }
}

}  // namespace
}  // namespace sww
