// tools_top_test — the sww_top aggregation pieces that satellite the
// exemplar/SLO plane:
//   * ParseQuantileToken's "first two digits integer, rest fraction"
//     convention (p50, p999 = 99.9, p9999 = 99.99) and its rejections;
//   * ParsePrometheusText round-trips OpenMetrics exemplar suffixes on
//     bucket lines into snapshot exemplars (and rejects malformed ones);
//   * RenderTopTable honors a custom quantile column list, prints the
//     tail exemplar trace id, and appends the SLO section when a stock
//     objective's series is present.
#include <gtest/gtest.h>

#include <string>

#include "obs/expose.hpp"
#include "obs/registry.hpp"
#include "tools/top.hpp"

namespace sww::tools {
namespace {

TEST(ParseQuantileToken, FirstTwoDigitsIntegerRestFraction) {
  auto p50 = ParseQuantileToken("p50");
  ASSERT_TRUE(p50.ok());
  EXPECT_DOUBLE_EQ(p50.value().q, 50.0);
  EXPECT_EQ(p50.value().label, "P50");

  auto p999 = ParseQuantileToken("p999");
  ASSERT_TRUE(p999.ok());
  EXPECT_DOUBLE_EQ(p999.value().q, 99.9);
  EXPECT_EQ(p999.value().label, "P999");

  auto p9999 = ParseQuantileToken("P9999");
  ASSERT_TRUE(p9999.ok());
  EXPECT_DOUBLE_EQ(p9999.value().q, 99.99);

  auto p5 = ParseQuantileToken("p5");
  ASSERT_TRUE(p5.ok());
  EXPECT_DOUBLE_EQ(p5.value().q, 5.0);

  EXPECT_FALSE(ParseQuantileToken("").ok());
  EXPECT_FALSE(ParseQuantileToken("p").ok());
  EXPECT_FALSE(ParseQuantileToken("99").ok());
  EXPECT_FALSE(ParseQuantileToken("p99x").ok());
}

TEST(ParsePrometheusText, ExemplarSuffixRoundTripsIntoSnapshot) {
  // A histogram the registry itself rendered, so the parse is tested
  // against the real producer, not a handwritten imitation.
  obs::Registry registry;
  obs::Histogram& hist = registry.GetHistogram("rt.latency");
  hist.Observe(2.0, /*trace_id=*/0xabcdef12345678ull,
               /*timestamp_nanos=*/1'500'000'000ull);
  hist.Observe(0.5);
  const std::string text = obs::RenderPrometheusText(registry.Snapshot());
  ASSERT_NE(text.find("# {trace_id=\"00abcdef12345678\"}"), std::string::npos)
      << text;

  auto sample = ParsePrometheusText(text);
  ASSERT_TRUE(sample.ok()) << sample.error().ToString();
  auto it = sample.value().histograms.find("sww_rt_latency");
  ASSERT_NE(it, sample.value().histograms.end());
  const obs::HistogramSnapshot& snapshot = it->second;
  EXPECT_EQ(snapshot.count, 2u);
  ASSERT_EQ(snapshot.exemplars.size(), snapshot.counts.size());
  bool found = false;
  for (const obs::HistogramExemplar& exemplar : snapshot.exemplars) {
    if (exemplar.trace_id != 0xabcdef12345678ull) continue;
    found = true;
    EXPECT_DOUBLE_EQ(exemplar.value, 2.0);
    EXPECT_EQ(exemplar.timestamp_nanos, 1'500'000'000ull);
  }
  EXPECT_TRUE(found);
}

TEST(ParsePrometheusText, MalformedExemplarIsAnError) {
  const std::string_view header =
      "# TYPE sww_x histogram\n"
      "sww_x_sum 1\n"
      "sww_x_count 1\n";
  EXPECT_FALSE(ParsePrometheusText(
                   std::string(header) +
                   "sww_x_bucket{le=\"+Inf\"} 1 # {span_id=\"0\"} 1 2\n")
                   .ok());
  EXPECT_FALSE(ParsePrometheusText(
                   std::string(header) +
                   "sww_x_bucket{le=\"+Inf\"} 1 # {trace_id=\"0\"} 1\n")
                   .ok());
}

TEST(RenderTopTable, CustomQuantilesExemplarColumnAndSloSection) {
  obs::Registry registry;
  obs::Histogram& fetch = registry.GetHistogram("fetch.latency");
  for (int i = 0; i < 99; ++i) fetch.Observe(1.0);
  fetch.Observe(50.0, /*trace_id=*/0xfeed, /*timestamp_nanos=*/7);

  MetricsSample sample;
  for (const auto& [name, snapshot] : registry.Snapshot().histograms) {
    sample.histograms[obs::PrometheusSeriesName(name)] = snapshot;
  }
  const std::vector<QuantileSpec> quantiles = {{50.0, "P50"}, {99.9, "P999"}};
  const std::string table = RenderTopTable(sample, 1, quantiles);
  EXPECT_NE(table.find("P999"), std::string::npos);
  EXPECT_EQ(table.find("P95"), std::string::npos);  // not requested
  // The tail exemplar trace id shows on the series row.
  EXPECT_NE(table.find("000000000000feed"), std::string::npos);
  // fetch.latency is a stock objective, so the SLO section renders.
  EXPECT_NE(table.find("SLO REPORT"), std::string::npos);
  EXPECT_NE(table.find("objective fetch-latency-p99"), std::string::npos);

  // Without any stock series there is no SLO section.
  MetricsSample unrelated;
  unrelated.histograms["sww_other"] = sample.histograms.begin()->second;
  EXPECT_EQ(RenderTopTable(unrelated, 1, quantiles).find("SLO REPORT"),
            std::string::npos);
}

TEST(RenderTopTable, MultiSourceAddsLegendAndPerSourceColumns) {
  MetricsSample a;
  a.source = "127.0.0.1:9100/metrics";
  a.counters["sww_requests_total"] = 30;
  a.gauges["sww_hit_ratio"] = 0.25;
  MetricsSample b;
  b.source = "127.0.0.1:9101/metrics";
  b.counters["sww_requests_total"] = 12;
  b.counters["sww_only_here_total"] = 7;
  b.gauges["sww_hit_ratio"] = 0.75;

  // One source: byte-identical to the merged single-sample render — the
  // run.top.txt golden must not notice the overload exists.
  const std::vector<QuantileSpec> quantiles = DefaultQuantiles();
  EXPECT_EQ(RenderTopTable({a}, quantiles),
            RenderTopTable(MergeSamples({a}), 1, quantiles));

  const std::string table = RenderTopTable({a, b}, quantiles);
  // Legend maps the S-columns back to the scrape targets.
  EXPECT_NE(table.find("S1 = 127.0.0.1:9100/metrics"), std::string::npos);
  EXPECT_NE(table.find("S2 = 127.0.0.1:9101/metrics"), std::string::npos);
  // Counters: merged total plus one column per source.
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
  const std::size_t row = table.find("sww_requests_total");
  ASSERT_NE(row, std::string::npos);
  const std::string line = table.substr(row, table.find('\n', row) - row);
  EXPECT_NE(line.find("42"), std::string::npos);  // merged
  EXPECT_NE(line.find("30"), std::string::npos);  // S1
  EXPECT_NE(line.find("12"), std::string::npos);  // S2
  // A series one source does not carry renders "-" in its column.
  const std::size_t only = table.find("sww_only_here_total");
  ASSERT_NE(only, std::string::npos);
  const std::string only_line =
      table.substr(only, table.find('\n', only) - only);
  EXPECT_NE(only_line.find("-"), std::string::npos);
  // Gauges get per-source columns too.
  const std::size_t gauge = table.find("sww_hit_ratio");
  ASSERT_NE(gauge, std::string::npos);
  const std::string gauge_line =
      table.substr(gauge, table.find('\n', gauge) - gauge);
  EXPECT_NE(gauge_line.find("0.25"), std::string::npos);
  EXPECT_NE(gauge_line.find("0.75"), std::string::npos);
}

}  // namespace
}  // namespace sww::tools
