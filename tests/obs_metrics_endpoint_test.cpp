// obs_metrics_endpoint_test — the self-hosted telemetry plane over the
// real HTTP/2 stack, under a ManualClock:
//   * GET /metrics returns Prometheus text 0.0.4 that is well-formed
//     (every sample preceded by its # TYPE line, histogram triplets
//     consistent) and byte-identical across two fresh identical runs;
//   * counters are monotone between consecutive scrapes on one session;
//   * GET /debug/vars returns one JSON document that parses with the
//     strict in-tree parser and carries the exporting clock's now_nanos.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "json/json.hpp"
#include "obs/clock.hpp"
#include "obs/expose.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace sww::obs {
namespace {

/// One fresh deterministic run: reset the global telemetry state, fetch a
/// generative page over a new in-process session, then scrape the plane.
struct ScrapeRun {
  std::string metrics;       // first GET /metrics
  std::string debug_vars;    // GET /debug/vars
  std::string metrics_again; // second GET /metrics, after the others
  std::int64_t now_nanos = 0;  // manual clock at /debug/vars render time
};

ScrapeRun DriveScrapeRun() {
  ScrapeRun out;
  ManualClock clock;
  Tracer::Default().SetClock(&clock);
  Tracer::Default().Clear();
  Registry::Default().Reset();

  core::ContentStore store;
  EXPECT_TRUE(store.AddPage("/", core::MakeGoldfishPage()).ok());
  auto session = core::LocalSession::Start(&store, {});
  EXPECT_TRUE(session.ok());
  EXPECT_TRUE(session.value()->FetchPage("/").ok());

  auto fetch = [&](const char* path, std::string* body_out,
                   const char* want_content_type) {
    auto raw =
        session.value()->client().FetchRaw(path, session.value()->Pump());
    ASSERT_TRUE(raw.ok()) << raw.error().ToString();
    EXPECT_EQ(raw.value().status, 200) << path;
    EXPECT_EQ(raw.value().Header("content-type").value_or(""),
              want_content_type)
        << path;
    body_out->assign(raw.value().body.begin(), raw.value().body.end());
  };
  fetch("/metrics", &out.metrics, kPrometheusContentType);
  out.now_nanos = static_cast<std::int64_t>(clock.NowNanos());
  fetch("/debug/vars", &out.debug_vars, "application/json");
  fetch("/metrics", &out.metrics_again, kPrometheusContentType);

  Tracer::Default().SetClock(nullptr);
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

/// Value of a plain (label-free) sample, or -1 when absent.
double SampleValue(const std::string& exposition, const std::string& series) {
  for (const std::string& line : SplitLines(exposition)) {
    if (line.compare(0, series.size() + 1, series + " ") == 0) {
      return std::strtod(line.c_str() + series.size() + 1, nullptr);
    }
  }
  return -1.0;
}

TEST(MetricsEndpoint, TwoFreshRunsAreByteIdentical) {
  const ScrapeRun first = DriveScrapeRun();
  const ScrapeRun second = DriveScrapeRun();
  EXPECT_FALSE(first.metrics.empty());
  EXPECT_EQ(first.metrics, second.metrics);
  EXPECT_EQ(first.debug_vars, second.debug_vars);
  EXPECT_EQ(first.metrics_again, second.metrics_again);
}

TEST(MetricsEndpoint, PrometheusExpositionIsWellFormed) {
  const ScrapeRun run = DriveScrapeRun();
  std::map<std::string, std::string> type_of;  // series base → counter/...
  for (const std::string& line : SplitLines(run.metrics)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      const std::string name = rest.substr(0, space);
      const std::string type = rest.substr(space + 1);
      EXPECT_EQ(name.rfind("sww_", 0), 0u) << line;
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      EXPECT_EQ(type_of.count(name), 0u) << "duplicate TYPE for " << name;
      type_of[name] = type;
      continue;
    }
    // A sample: name[{labels}] value — its base series must have a TYPE.
    std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    std::string base = line.substr(0, name_end);
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string with = base;
      if (with.size() > std::strlen(suffix) &&
          with.compare(with.size() - std::strlen(suffix), std::string::npos,
                       suffix) == 0) {
        const std::string stripped =
            with.substr(0, with.size() - std::strlen(suffix));
        if (type_of.count(stripped) != 0u) base = stripped;
      }
    }
    EXPECT_EQ(type_of.count(base), 1u) << "sample without TYPE: " << line;
  }

  // The page fetch shows up with exact counts.
  EXPECT_EQ(SampleValue(run.metrics, "sww_server_requests"), 1.0);
  EXPECT_EQ(SampleValue(run.metrics, "sww_client_pages_fetched"), 1.0);
  // Histogram triplet: +Inf bucket equals _count.
  const double count = SampleValue(run.metrics, "sww_server_page_bytes_count");
  EXPECT_EQ(count, 1.0);
  EXPECT_NE(run.metrics.find("sww_server_page_bytes_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
}

TEST(MetricsEndpoint, CountersAreMonotoneBetweenScrapes) {
  const ScrapeRun run = DriveScrapeRun();
  // Each scrape rides the same HTTP/2 connection, so frame counters grow.
  EXPECT_GT(SampleValue(run.metrics_again, "sww_http2_frames_sent"),
            SampleValue(run.metrics, "sww_http2_frames_sent"));
  // The telemetry handler counts itself: 1 at the first render, 3 by the
  // third (metrics, debug/vars, metrics).
  EXPECT_EQ(SampleValue(run.metrics, "sww_server_telemetry_requests"), 1.0);
  EXPECT_EQ(SampleValue(run.metrics_again, "sww_server_telemetry_requests"),
            3.0);
}

TEST(MetricsEndpoint, DebugVarsParsesAndCarriesTheManualClock) {
  const ScrapeRun run = DriveScrapeRun();
  auto parsed = json::Parse(run.debug_vars);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  EXPECT_EQ(parsed.value().GetInt("now_nanos"), run.now_nanos);
  const json::Value* counters = parsed.value().Get("counters");
  ASSERT_NE(counters, nullptr);
  // The page fetch plus the /metrics scrape that preceded this render.
  EXPECT_EQ(counters->GetInt("server.requests"), 2);
  const json::Value* histograms = parsed.value().Get("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* page_bytes = histograms->Get("server.page_bytes");
  ASSERT_NE(page_bytes, nullptr);
  EXPECT_EQ(page_bytes->GetInt("count"), 1);
  for (const char* key : {"sum", "min", "max", "mean", "p50", "p95", "p99",
                          "bounds", "counts"}) {
    EXPECT_TRUE(page_bytes->Has(key)) << key;
  }
}

}  // namespace
}  // namespace sww::obs
