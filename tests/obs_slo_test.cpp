// obs_slo_test — the SLO burn-rate engine:
//   * burn math: burn = bad_fraction / (1 - target); a bucket is bad
//     when its upper bound exceeds the threshold, +Inf is always bad;
//   * multi-window semantics: windows subtract the newest baseline
//     snapshot at/before now − window, the newest sample is never its
//     own baseline, and missing history clamps to whole-run burn;
//   * `burning` requires BOTH windows alerting;
//   * ParseSloObjectiveSpec accepts name,series,quantile,threshold
//     [,target] and rejects malformed specs;
//   * RenderSloReport is a deterministic function of the evaluations.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/slo.hpp"

namespace sww::obs {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000ull;

SloObjective TightObjective(double threshold) {
  SloObjective objective;
  objective.name = "test";
  objective.series = "test.latency";
  objective.quantile = 99.0;
  objective.threshold = threshold;
  objective.target = 0.99;  // 1% budget: all-bad burns at 100x
  return objective;
}

HistogramSnapshot SnapshotOf(const std::vector<double>& values) {
  Histogram hist;
  for (double value : values) hist.Observe(value);
  return hist.Snapshot();
}

TEST(SloEngine, SingleSnapshotClampsBothWindowsToWholeRunBurn) {
  // 2 good (0.001 s), 2 bad (10 s) against a 1 s threshold: bad fraction
  // 0.5 on a 1% budget burns at 50x — over the 14.4x alert in both
  // windows, so the objective is burning.
  SloEngine engine({TightObjective(1.0)});
  engine.Ingest("test.latency", SnapshotOf({0.001, 0.001, 10.0, 10.0}),
                /*now_nanos=*/0);
  const std::vector<SloEvaluation> evals = engine.Evaluate(/*now_nanos=*/0);
  ASSERT_EQ(evals.size(), 1u);
  const SloEvaluation& eval = evals[0];
  EXPECT_TRUE(eval.have_series);
  EXPECT_EQ(eval.observations, 4u);
  EXPECT_FALSE(eval.quantile_ok);  // p99 sits in the 10 s bucket
  for (const SloWindowEval* window : {&eval.fast, &eval.slow}) {
    EXPECT_TRUE(window->clamped);
    EXPECT_EQ(window->total, 4u);
    EXPECT_EQ(window->bad, 2u);
    EXPECT_DOUBLE_EQ(window->bad_fraction, 0.5);
    EXPECT_NEAR(window->burn_rate, 50.0, 1e-9);  // 0.5 / (1 - 0.99)
    EXPECT_TRUE(window->alerting);
  }
  EXPECT_TRUE(eval.burning);
}

TEST(SloEngine, AllGoodObservationsDoNotBurn) {
  SloEngine engine({TightObjective(1.0)});
  engine.Ingest("test.latency", SnapshotOf({0.001, 0.01, 0.1}), 0);
  const SloEvaluation eval = engine.Evaluate(0)[0];
  EXPECT_TRUE(eval.quantile_ok);
  EXPECT_EQ(eval.fast.bad, 0u);
  EXPECT_DOUBLE_EQ(eval.fast.burn_rate, 0.0);
  EXPECT_FALSE(eval.burning);
}

TEST(SloEngine, OverflowBucketIsAlwaysBad) {
  // An observation past the grid's top lands in +Inf — bad under any
  // finite threshold, however generous.
  SloEngine engine({TightObjective(1e12)});
  engine.Ingest("test.latency",
                SnapshotOf({0.5, 2.0 * Histogram::kMaxValue}), 0);
  const SloEvaluation eval = engine.Evaluate(0)[0];
  EXPECT_EQ(eval.fast.total, 2u);
  EXPECT_EQ(eval.fast.bad, 1u);
}

TEST(SloEngine, WindowSubtractsNewestEligibleBaseline) {
  // Cumulative history: 100 good at t=0, then 100 good + 100 bad at
  // t=100 s, then nothing new by t=3600 s.  At now=3600 s the fast
  // (300 s) window starts at 3300 s: both earlier samples are eligible
  // baselines and the *newest eligible* (t=100 s) wins, so the fast
  // delta is empty — the burst is old news.  The slow (3600 s) window
  // starts at 0 s, where only the t=0 sample is eligible, exposing the
  // 100 bad.
  Histogram hist;
  for (int i = 0; i < 100; ++i) hist.Observe(0.001);
  const HistogramSnapshot at_zero = hist.Snapshot();
  for (int i = 0; i < 100; ++i) hist.Observe(10.0);
  const HistogramSnapshot after_burst = hist.Snapshot();

  SloEngine engine({TightObjective(1.0)});
  engine.Ingest("test.latency", at_zero, 0);
  engine.Ingest("test.latency", after_burst, 100 * kSecond);
  engine.Ingest("test.latency", after_burst, 3600 * kSecond);
  const SloEvaluation eval = engine.Evaluate(3600 * kSecond)[0];

  EXPECT_FALSE(eval.fast.clamped);
  EXPECT_EQ(eval.fast.total, 0u);
  EXPECT_EQ(eval.fast.bad, 0u);
  EXPECT_FALSE(eval.fast.alerting);

  EXPECT_FALSE(eval.slow.clamped);
  EXPECT_EQ(eval.slow.total, 100u);
  EXPECT_EQ(eval.slow.bad, 100u);
  EXPECT_NEAR(eval.slow.burn_rate, 100.0, 1e-9);
  EXPECT_TRUE(eval.slow.alerting);

  // One window alerting is not enough: burning needs both.
  EXPECT_FALSE(eval.burning);
}

TEST(SloEngine, NewestSampleIsNeverItsOwnBaseline) {
  // A single sample whose timestamp predates the window start must
  // still clamp (evaluate whole-run burn), not subtract itself to an
  // empty, trivially-passing window.
  SloEngine engine({TightObjective(1.0)});
  engine.Ingest("test.latency", SnapshotOf({10.0, 10.0}), 0);
  const SloEvaluation eval = engine.Evaluate(7200 * kSecond)[0];
  EXPECT_TRUE(eval.fast.clamped);
  EXPECT_EQ(eval.fast.total, 2u);
  EXPECT_EQ(eval.fast.bad, 2u);
  EXPECT_TRUE(eval.burning);
}

TEST(SloEngine, MissingSeriesReportsNoData) {
  SloEngine engine({TightObjective(1.0)});
  const SloEvaluation eval = engine.Evaluate(0)[0];
  EXPECT_FALSE(eval.have_series);
  EXPECT_FALSE(eval.burning);
  const std::string report = RenderSloReport({eval});
  EXPECT_NE(report.find("NO DATA"), std::string::npos);
}

TEST(SloObjectiveSpec, ParsesAndValidates) {
  auto parsed = ParseSloObjectiveSpec("burn,fetch.latency,99,1e-9,0.999");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().name, "burn");
  EXPECT_EQ(parsed.value().series, "fetch.latency");
  EXPECT_DOUBLE_EQ(parsed.value().quantile, 99.0);
  EXPECT_DOUBLE_EQ(parsed.value().threshold, 1e-9);
  EXPECT_DOUBLE_EQ(parsed.value().target, 0.999);
  // Defaults fill the windows and alerts.
  EXPECT_DOUBLE_EQ(parsed.value().fast_window_seconds, 300.0);
  EXPECT_DOUBLE_EQ(parsed.value().slow_burn_alert, 14.4);

  auto four_fields = ParseSloObjectiveSpec("a,b,50,2.5");
  ASSERT_TRUE(four_fields.ok());
  EXPECT_DOUBLE_EQ(four_fields.value().target, 0.99);

  EXPECT_FALSE(ParseSloObjectiveSpec("too,few,fields").ok());
  EXPECT_FALSE(ParseSloObjectiveSpec("a,b,c,d,e,f").ok());
  EXPECT_FALSE(ParseSloObjectiveSpec(",missing-name,99,1").ok());
  EXPECT_FALSE(ParseSloObjectiveSpec("a,b,150,1").ok());    // quantile > 100
  EXPECT_FALSE(ParseSloObjectiveSpec("a,b,99,1,1.5").ok()); // target ≥ 1
}

TEST(SloReport, DeterministicForIdenticalInput) {
  SloEngine engine(DefaultSloObjectives());
  engine.Ingest("fetch.latency", SnapshotOf({1.0, 2.0, 3.0}), 0);
  const std::string first = RenderSloReport(engine.Evaluate(0));
  const std::string second = RenderSloReport(engine.Evaluate(0));
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("SLO REPORT"), std::string::npos);
  EXPECT_NE(first.find("objective fetch-latency-p99"), std::string::npos);
  EXPECT_NE(first.find("overall: OK"), std::string::npos);
  // The second stock objective has no ingested series.
  EXPECT_NE(first.find("NO DATA"), std::string::npos);
}

}  // namespace
}  // namespace sww::obs
