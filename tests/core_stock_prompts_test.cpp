// Tests for §7's stock prompt marketplace model (licensing, attribution)
// and the model-requirement fallback negotiation.
#include <gtest/gtest.h>

#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "core/stock_prompts.hpp"
#include "html/generated_content.hpp"
#include "html/parser.hpp"

namespace sww::core {
namespace {

TEST(StockPrompts, BuiltinCatalogShape) {
  const StockPromptLibrary library = StockPromptLibrary::Builtin();
  EXPECT_GE(library.size(), 20u);
  EXPECT_GE(library.Category("landscape").size(), 3u);
  EXPECT_TRUE(library.Category("nonexistent").empty());
}

TEST(StockPrompts, FindAndSearch) {
  const StockPromptLibrary library = StockPromptLibrary::Builtin();
  auto found = library.Find("nature/goldfish");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().license, PromptLicense::kPublicDomain);
  EXPECT_FALSE(library.Find("nature/unicorn").ok());

  const auto hits = library.Search({"mountain", "hut"});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, "travel/mountain-hut");
  EXPECT_TRUE(library.Search({"mountain", "neon"}).empty());
}

TEST(StockPrompts, LicenseGateBlocksUnlicensedCommercialUse) {
  const StockPromptLibrary library = StockPromptLibrary::Builtin();
  const auto commercial = library.Find("food/coffee-pour").value();
  EXPECT_FALSE(library.UsageAllowed(commercial, {}));
  EXPECT_TRUE(library.UsageAllowed(commercial, {"food/coffee-pour"}));
  // Non-commercial licenses need no grant.
  EXPECT_TRUE(library.UsageAllowed(library.Find("landscape/alpine-meadow").value(), {}));

  auto metadata = library.MakeImageMetadata("food/coffee-pour", 256, 256);
  ASSERT_FALSE(metadata.ok());
  EXPECT_EQ(metadata.error().code, util::ErrorCode::kUnsupported);
  EXPECT_TRUE(library
                  .MakeImageMetadata("food/coffee-pour", 256, 256,
                                     {"food/coffee-pour"})
                  .ok());
}

TEST(StockPrompts, MetadataCarriesLicenseAttributionAndDigest) {
  const StockPromptLibrary library = StockPromptLibrary::Builtin();
  auto metadata = library.MakeImageMetadata("landscape/alpine-meadow", 320, 240);
  ASSERT_TRUE(metadata.ok());
  EXPECT_EQ(metadata.value().GetString("license"), "cc-by-sa");
  EXPECT_EQ(metadata.value().GetString("attribution"),
            "Stock Prompts Collective");
  EXPECT_EQ(metadata.value().GetString("digest").size(), 16u);
  EXPECT_EQ(metadata.value().GetInt("width"), 320);
  EXPECT_EQ(metadata.value().GetString("name"), "landscape-alpine-meadow");
}

TEST(StockPrompts, StockPageServesEndToEnd) {
  const StockPromptLibrary library = StockPromptLibrary::Builtin();
  auto metadata = library.MakeImageMetadata("travel/harbor-town", 128, 96);
  ASSERT_TRUE(metadata.ok());
  auto div = html::MakeGeneratedContentDiv(html::GeneratedContentType::kImage,
                                           metadata.value());
  ContentStore store;
  ASSERT_TRUE(store
                  .AddPage("/stock", "<html><body>" + div->Serialize() +
                                         "</body></html>")
                  .ok());
  auto session = LocalSession::Start(&store, {});
  auto fetch = session.value()->FetchPage("/stock");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().generated_items, 1u);
  EXPECT_EQ(fetch.value().verified_items, 1u);  // digest came along
  // License/attribution survive the round trip in the page the client saw.
  auto doc = html::ParseDocument(util::ToString(fetch.value().response.body));
  auto specs = html::ExtractGeneratedContent(*doc.value());
  ASSERT_EQ(specs.specs.size(), 1u);
  EXPECT_EQ(specs.specs[0].metadata.GetString("license"), "public-domain");
}

// --- §7 model negotiation fallback -----------------------------------------------

std::string DemandingPage(double min_fidelity) {
  json::Value metadata{json::Object{}};
  metadata.Set("prompt", "a gallery-grade alpine panorama, ultra detailed");
  metadata.Set("name", "panorama");
  metadata.Set("width", 64);
  metadata.Set("height", 64);
  metadata.Set("min_fidelity", min_fidelity);
  auto div = html::MakeGeneratedContentDiv(html::GeneratedContentType::kImage,
                                           metadata);
  return "<html><body>" + div->Serialize() + "</body></html>";
}

TEST(ModelNegotiation, WeakClientFallsBackToMaterializedDelivery) {
  ContentStore store;
  // Requires more fidelity than SD 3 Medium's 0.28.
  ASSERT_TRUE(store.AddPage("/demanding", DemandingPage(0.35)).ok());
  auto session = LocalSession::Start(&store, {});
  auto fetch = session.value()->FetchPage("/demanding");
  ASSERT_TRUE(fetch.ok());
  EXPECT_TRUE(fetch.value().model_fallback);
  EXPECT_EQ(fetch.value().mode, "traditional");
  EXPECT_EQ(fetch.value().generated_items, 0u);
  EXPECT_GT(fetch.value().asset_bytes, 0u);  // the materialized image
  // The server generated it (on the workstation).
  EXPECT_GT(session.value()->server().stats().generation_seconds, 0.0);
}

TEST(ModelNegotiation, SatisfiableRequirementStaysGenerative) {
  ContentStore store;
  ASSERT_TRUE(store.AddPage("/easy", DemandingPage(0.2)).ok());
  auto session = LocalSession::Start(&store, {});
  auto fetch = session.value()->FetchPage("/easy");
  ASSERT_TRUE(fetch.ok());
  EXPECT_FALSE(fetch.value().model_fallback);
  EXPECT_EQ(fetch.value().mode, "generative");
  EXPECT_EQ(fetch.value().generated_items, 1u);
}

TEST(ModelNegotiation, StrongerClientModelSatisfiesDirectly) {
  ContentStore store;
  ASSERT_TRUE(store.AddPage("/demanding", DemandingPage(0.35)).ok());
  LocalSession::Options options;
  options.client.generator.image_model = "dalle-3";  // fidelity 0.37
  auto session = LocalSession::Start(&store, options);
  auto fetch = session.value()->FetchPage("/demanding");
  ASSERT_TRUE(fetch.ok());
  EXPECT_FALSE(fetch.value().model_fallback);
  EXPECT_EQ(fetch.value().generated_items, 1u);
}

}  // namespace
}  // namespace sww::core
