// Tests for HTTP request/response semantics over HTTP/2 header lists.
#include <gtest/gtest.h>

#include "core/http_semantics.hpp"

namespace sww::core {
namespace {

TEST(Request, ToHeadersEmitsPseudoHeadersFirst) {
  Request request;
  request.method = "GET";
  request.path = "/page";
  request.authority = "sww.local";
  request.extra_headers.push_back({"accept", "text/html", false});
  const hpack::HeaderList headers = request.ToHeaders();
  ASSERT_GE(headers.size(), 5u);
  EXPECT_EQ(headers[0].name, ":method");
  EXPECT_EQ(headers.back().name, "accept");
}

TEST(Request, ParseRoundTrip) {
  Request original;
  original.method = "GET";
  original.path = "/x?q=1";
  original.authority = "h";
  original.extra_headers.push_back({"x-test", "1", false});
  auto parsed = ParseRequest(original.ToHeaders(), util::ToBytes("body"));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().method, "GET");
  EXPECT_EQ(parsed.value().path, "/x?q=1");
  EXPECT_EQ(parsed.value().Header("x-test").value(), "1");
  EXPECT_EQ(util::ToString(parsed.value().body), "body");
}

TEST(Request, MissingMethodOrPathRejected) {
  hpack::HeaderList no_path = {{":method", "GET", false},
                               {":scheme", "https", false}};
  EXPECT_FALSE(ParseRequest(no_path, {}).ok());
  hpack::HeaderList no_method = {{":path", "/", false}};
  EXPECT_FALSE(ParseRequest(no_method, {}).ok());
}

TEST(Request, PseudoHeaderAfterRegularRejected) {
  hpack::HeaderList bad = {{":method", "GET", false},
                           {"accept", "*/*", false},
                           {":path", "/", false}};
  EXPECT_FALSE(ParseRequest(bad, {}).ok());
}

TEST(Request, DuplicateAndUnknownPseudoHeadersRejected) {
  hpack::HeaderList duplicate = {{":method", "GET", false},
                                 {":method", "POST", false},
                                 {":path", "/", false}};
  EXPECT_FALSE(ParseRequest(duplicate, {}).ok());
  hpack::HeaderList unknown = {{":method", "GET", false},
                               {":path", "/", false},
                               {":teapot", "yes", false}};
  EXPECT_FALSE(ParseRequest(unknown, {}).ok());
}

TEST(Response, RoundTripWithSwwModeHeader) {
  Response response;
  response.status = 200;
  response.SetHeader(kSwwModeHeader, "generative");
  auto parsed = ParseResponse(response.ToHeaders(), util::ToBytes("<html/>"));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().status, 200);
  EXPECT_EQ(parsed.value().Header(kSwwModeHeader).value(), "generative");
}

TEST(Response, SetHeaderOverwrites) {
  Response response;
  response.SetHeader("content-type", "text/plain");
  response.SetHeader("Content-Type", "text/html");
  EXPECT_EQ(response.extra_headers.size(), 1u);
  EXPECT_EQ(response.Header("content-type").value(), "text/html");
}

TEST(Response, MissingStatusRejected) {
  hpack::HeaderList headers = {{"content-type", "text/html", false}};
  EXPECT_FALSE(ParseResponse(headers, {}).ok());
}

TEST(Response, BadStatusValueRejected) {
  hpack::HeaderList headers = {{":status", "abc", false}};
  EXPECT_FALSE(ParseResponse(headers, {}).ok());
}

TEST(ReasonPhrase, KnownCodes) {
  EXPECT_EQ(ReasonPhrase(200), "OK");
  EXPECT_EQ(ReasonPhrase(404), "Not Found");
  EXPECT_EQ(ReasonPhrase(418), "");
}

}  // namespace
}  // namespace sww::core
