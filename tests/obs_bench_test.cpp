// Tests for the sww_bench framework's stats kernel, timing protocol, and
// JSON writer — the pieces the CI regression gate's guarantees rest on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/bench.hpp"
#include "obs/clock.hpp"

namespace sww::obs::bench {
namespace {

// --- SummarizeWall: robust stats on known vectors ---------------------------

TEST(SummarizeWall, KnownVectorOddLength) {
  // Sorted: 1 2 3 4 100 — the outlier must not move median or MAD much.
  const WallStats stats = SummarizeWall({3.0, 1.0, 100.0, 2.0, 4.0});
  EXPECT_EQ(stats.iterations, 5u);
  EXPECT_DOUBLE_EQ(stats.total_ns, 110.0);
  EXPECT_DOUBLE_EQ(stats.min_ns, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_ns, 22.0);
  EXPECT_DOUBLE_EQ(stats.median_ns, 3.0);
  // |x - 3| = {2, 1, 97, 0, 1} → sorted {0, 1, 1, 2, 97} → median 1.
  EXPECT_DOUBLE_EQ(stats.mad_ns, 1.0);
}

TEST(SummarizeWall, KnownVectorEvenLength) {
  const WallStats stats = SummarizeWall({10.0, 20.0, 30.0, 40.0});
  EXPECT_EQ(stats.iterations, 4u);
  EXPECT_DOUBLE_EQ(stats.median_ns, 25.0);
  EXPECT_DOUBLE_EQ(stats.mean_ns, 25.0);
  EXPECT_DOUBLE_EQ(stats.min_ns, 10.0);
}

TEST(SummarizeWall, P95OnTwentySamples) {
  std::vector<double> samples;
  for (int i = 1; i <= 20; ++i) samples.push_back(static_cast<double>(i));
  const WallStats stats = SummarizeWall(samples);
  // Linear interpolation at rank 0.95*(n-1) = 18.05 → 19.05.
  EXPECT_NEAR(stats.p95_ns, 19.05, 1e-9);
  EXPECT_DOUBLE_EQ(stats.median_ns, 10.5);
}

TEST(SummarizeWall, EmptyIsAllZero) {
  const WallStats stats = SummarizeWall({});
  EXPECT_EQ(stats.iterations, 0u);
  EXPECT_DOUBLE_EQ(stats.total_ns, 0.0);
  EXPECT_DOUBLE_EQ(stats.median_ns, 0.0);
  EXPECT_DOUBLE_EQ(stats.mad_ns, 0.0);
}

// --- TimeKernel: warmup exclusion + adaptive stop ---------------------------

TEST(TimeKernel, WarmupIterationsAreExcludedFromStats) {
  // The kernel costs 1000 ns on the first three (warmup) calls and 10 ns
  // after; if warmup leaked into the samples the median would be wrong.
  ManualClock clock;
  int calls = 0;
  TimingOptions options;
  options.warmup_iterations = 3;
  options.min_iterations = 5;
  options.max_iterations = 5;
  options.min_total_seconds = 0.0;
  const WallStats stats = TimeKernel(
      [&] {
        ++calls;
        clock.AdvanceNanos(calls <= 3 ? 1000 : 10);
      },
      options, &clock);
  EXPECT_EQ(calls, 8);  // 3 warmup + 5 measured
  EXPECT_EQ(stats.iterations, 5u);
  EXPECT_DOUBLE_EQ(stats.median_ns, 10.0);
  EXPECT_DOUBLE_EQ(stats.min_ns, 10.0);
  EXPECT_DOUBLE_EQ(stats.total_ns, 50.0);
}

TEST(TimeKernel, AdaptiveStopRunsUntilMinTotalTime) {
  // Each iteration advances 1 ms; min_total 0.01 s → exactly 10 measured
  // iterations even though min_iterations is lower.
  ManualClock clock;
  TimingOptions options;
  options.warmup_iterations = 0;
  options.min_iterations = 2;
  options.max_iterations = 1000;
  options.min_total_seconds = 0.01;
  const WallStats stats =
      TimeKernel([&] { clock.AdvanceNanos(1000000); }, options, &clock);
  EXPECT_EQ(stats.iterations, 10u);
  EXPECT_DOUBLE_EQ(stats.total_ns, 1e7);
}

TEST(TimeKernel, MaxIterationsCapsAZeroCostKernel) {
  // A kernel that never advances the clock can never satisfy the time
  // floor; the cap must stop it.
  ManualClock clock;
  TimingOptions options;
  options.warmup_iterations = 0;
  options.min_iterations = 4;
  options.max_iterations = 64;
  options.min_total_seconds = 1.0;
  const WallStats stats = TimeKernel([] {}, options, &clock);
  EXPECT_EQ(stats.iterations, 64u);
  EXPECT_DOUBLE_EQ(stats.total_ns, 0.0);
}

// --- CanonicalizeModeled ----------------------------------------------------

TEST(CanonicalizeModeled, RoundsToNineSignificantDigits) {
  EXPECT_DOUBLE_EQ(CanonicalizeModeled(1.0), 1.0);
  EXPECT_DOUBLE_EQ(CanonicalizeModeled(0.1 + 0.2), 0.3);
  EXPECT_DOUBLE_EQ(CanonicalizeModeled(123456789.0), 123456789.0);
  // The tenth digit is dropped: values a last-ulp apart collapse together.
  EXPECT_DOUBLE_EQ(CanonicalizeModeled(1.2345678912),
                   CanonicalizeModeled(1.2345678917));
}

// --- State + ResultsToJson: deterministic serialization ---------------------

BenchResult MakeSampleResult() {
  State state("sample");
  // Insertion order differs from key order on purpose: the JSON must come
  // out sorted either way.
  state.Modeled("zeta", 2.5);
  state.Modeled("alpha", 1.0 / 3.0);
  state.ModeledText("digest", "00ff00ff00ff00ff");
  state.Info("real_seconds", 0.123);
  return state.TakeResult();
}

TEST(ResultsToJson, ModeledSectionsAreByteIdenticalAcrossRuns) {
  const std::string a =
      ResultsToJson({MakeSampleResult()}, /*modeled_only=*/true).Dump();
  const std::string b =
      ResultsToJson({MakeSampleResult()}, /*modeled_only=*/true).Dump();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\":\"sww-bench/1\""), std::string::npos);
  EXPECT_NE(a.find("\"generator\":\"sww_bench\""), std::string::npos);
}

TEST(ResultsToJson, ModeledOnlyOmitsWallAndInfo) {
  State state("s");
  state.Info("noise", 42.0);
  state.Time("kernel", [] {});
  const std::string lean =
      ResultsToJson({state.result()}, /*modeled_only=*/true).Dump();
  const std::string full =
      ResultsToJson({state.result()}, /*modeled_only=*/false).Dump();
  EXPECT_EQ(lean.find("\"wall\""), std::string::npos);
  EXPECT_EQ(lean.find("\"info\""), std::string::npos);
  EXPECT_NE(full.find("\"wall\""), std::string::npos);
  EXPECT_NE(full.find("\"info\""), std::string::npos);
  EXPECT_NE(full.find("\"median_ns\""), std::string::npos);
}

TEST(ResultsToJson, FailuresAppearOnlyWhenPresent) {
  State ok_state("ok");
  ok_state.Check(true, "fine");
  State bad_state("bad");
  bad_state.Check(false, "invariant violated");
  EXPECT_TRUE(ok_state.result().ok());
  EXPECT_FALSE(bad_state.result().ok());
  const std::string dump =
      ResultsToJson({ok_state.result(), bad_state.result()}, true).Dump();
  EXPECT_NE(dump.find("invariant violated"), std::string::npos);
  EXPECT_EQ(dump.find("fine"), std::string::npos);
}

TEST(Suite, RegisteredBenchmarksComeBackSorted) {
  Suite suite;
  suite.Register("zebra", nullptr);
  suite.Register("apple", nullptr);
  suite.Register("mango", nullptr);
  const auto sorted = suite.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, "apple");
  EXPECT_EQ(sorted[1].first, "mango");
  EXPECT_EQ(sorted[2].first, "zebra");
}

}  // namespace
}  // namespace sww::obs::bench
