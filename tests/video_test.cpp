// Tests for the video streaming substrate (§3.2).
#include <gtest/gtest.h>

#include "http2/settings.hpp"
#include "video/streaming.hpp"

namespace sww::video {
namespace {

TEST(Rates, PaperAnchors) {
  // "turning 7GB/hour into 3GB/hour" (4K → HD), and 60→30 fps halving.
  EXPECT_DOUBLE_EQ(GigabytesPerHour(Resolution::k4K, 60), 7.0);
  EXPECT_DOUBLE_EQ(GigabytesPerHour(Resolution::kHD, 60), 3.0);
  EXPECT_DOUBLE_EQ(GigabytesPerHour(Resolution::k4K, 30), 3.5);
  EXPECT_NEAR(GigabytesPerHour(Resolution::k4K, 60) /
                  GigabytesPerHour(Resolution::kHD, 60),
              2.33, 0.01);
}

TEST(Ladder, CoversResolutionFpsGrid) {
  const auto ladder = StandardLadder();
  EXPECT_EQ(ladder.size(), 6u);
  EXPECT_EQ(ladder.front().name, "480p30");
  EXPECT_EQ(ladder.back().name, "4K60");
}

struct NegotiationCase {
  const char* name;
  std::uint32_t ability;
  const char* transmitted;
  double savings;  // baseline / planned
  bool upscale, boost;
};

class VideoNegotiation : public ::testing::TestWithParam<NegotiationCase> {};

TEST_P(VideoNegotiation, PicksCheapestReconstructibleVariant) {
  const NegotiationCase& c = GetParam();
  const DeliveryPlan plan = Negotiate({Resolution::k4K, 60}, c.ability);
  EXPECT_EQ(plan.transmitted.name, c.transmitted) << c.name;
  EXPECT_NEAR(plan.DataSavingsFactor(), c.savings, 0.02) << c.name;
  EXPECT_EQ(plan.client_upscales, c.upscale) << c.name;
  EXPECT_EQ(plan.client_boosts_frame_rate, c.boost) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, VideoNegotiation,
    ::testing::Values(
        NegotiationCase{"naive_client", 0, "4K60", 1.0, false, false},
        NegotiationCase{"frame_boost_only", http2::kGenAbilityFrameRateBoost,
                        "4K30", 2.0, false, true},
        NegotiationCase{"upscale_only", http2::kGenAbilityUpscaleOnly, "HD60",
                        7.0 / 3.0, true, false},
        NegotiationCase{"both",
                        http2::kGenAbilityUpscaleOnly |
                            http2::kGenAbilityFrameRateBoost,
                        "HD30", 14.0 / 3.0, true, true},
        NegotiationCase{"full_gen_is_not_video_ability",
                        http2::kGenAbilityFull, "4K60", 1.0, false, false}),
    [](const ::testing::TestParamInfo<NegotiationCase>& info) {
      return info.param.name;
    });

TEST(VideoNegotiation, HdTargetWithUpscaleShips480p) {
  const DeliveryPlan plan =
      Negotiate({Resolution::kHD, 30}, http2::kGenAbilityUpscaleOnly);
  EXPECT_EQ(plan.transmitted.resolution, Resolution::k480p);
  EXPECT_TRUE(plan.client_upscales);
}

TEST(VideoNegotiation, ThirtyFpsTargetNeedsNoBoost) {
  const DeliveryPlan plan =
      Negotiate({Resolution::k4K, 30}, http2::kGenAbilityFrameRateBoost);
  EXPECT_EQ(plan.transmitted.fps, 30);
  EXPECT_FALSE(plan.client_boosts_frame_rate);
}

TEST(Streaming, OneHourReportAccounting) {
  const DeliveryPlan plan = Negotiate(
      {Resolution::k4K, 60},
      http2::kGenAbilityUpscaleOnly | http2::kGenAbilityFrameRateBoost);
  const StreamingReport report = SimulateStreaming(plan, 1.0);
  EXPECT_DOUBLE_EQ(report.baseline_gb, 7.0);
  EXPECT_NEAR(report.transmitted_gb, 1.5, 0.01);
  EXPECT_NEAR(report.saved_gb, 5.5, 0.01);
  // 30 fps × 3600 s interpolated once each; 60 output fps upscaled.
  EXPECT_EQ(report.frames_interpolated, 108000u);
  EXPECT_EQ(report.frames_upscaled, 216000u);
  EXPECT_GT(report.transmission_energy_saved_wh, 100.0);  // 5.5 GB × 0.038 Wh/MB
}

TEST(Streaming, NaiveClientSavesNothing) {
  const DeliveryPlan plan = Negotiate({Resolution::k4K, 60}, 0);
  const StreamingReport report = SimulateStreaming(plan, 2.0);
  EXPECT_DOUBLE_EQ(report.saved_gb, 0.0);
  EXPECT_EQ(report.frames_interpolated, 0u);
  EXPECT_EQ(report.frames_upscaled, 0u);
}

TEST(ResolutionName, Readable) {
  EXPECT_STREQ(ResolutionName(Resolution::k4K), "4K");
  EXPECT_STREQ(ResolutionName(Resolution::k480p), "480p");
}

}  // namespace
}  // namespace sww::video
