// obs_journal_test — the wide-event request journal:
//   * ring discipline mirrors ConnectionTap: overwrite-oldest, capacity
//     bound, total/dropped counters that survive overwrite, Clear()
//     empties without invalidating the handle;
//   * JSONL rendering is deterministic (std::map key order), carries
//     every schema field, and ends in a journal_summary trailer;
//   * non-finite phase latencies serialize as JSON null, never as bare
//     NaN/Inf tokens (the src/json hardening), and the document stays
//     parseable by the repo's own parser;
//   * the end-to-end contract: one LocalSession page fetch emits exactly
//     one record whose trace id round-trips to the fetch.latency
//     histogram exemplar.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "json/json.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace sww::obs {
namespace {

JournalRecord MakeRecord(std::uint64_t trace_id) {
  JournalRecord record;
  record.kind = "page_fetch";
  record.trace_id = trace_id;
  record.path = "/";
  record.mode = "generative";
  record.outcome = "ok";
  record.cache = "miss";
  record.total_seconds = 1.5;
  return record;
}

TEST(Journal, RingOverwritesOldestAndCountsDrops) {
  Journal journal(/*capacity=*/3);
  for (std::uint64_t i = 1; i <= 5; ++i) journal.Record(MakeRecord(i));
  EXPECT_EQ(journal.total_recorded(), 5u);
  EXPECT_EQ(journal.dropped(), 2u);
  const std::vector<JournalRecord> records = journal.Records();
  ASSERT_EQ(records.size(), 3u);
  // Oldest first, with the two oldest overwritten.
  EXPECT_EQ(records[0].trace_id, 3u);
  EXPECT_EQ(records[1].trace_id, 4u);
  EXPECT_EQ(records[2].trace_id, 5u);

  journal.Clear();
  EXPECT_EQ(journal.total_recorded(), 0u);
  EXPECT_EQ(journal.dropped(), 0u);
  EXPECT_TRUE(journal.Records().empty());
  journal.Record(MakeRecord(9));
  EXPECT_EQ(journal.Records().size(), 1u);
}

TEST(Journal, SetCapacityShrinkKeepsNewestAndCountsEvictions) {
  Journal journal(/*capacity=*/8);
  for (std::uint64_t i = 1; i <= 6; ++i) journal.Record(MakeRecord(i));
  journal.SetCapacity(2);
  EXPECT_EQ(journal.capacity(), 2u);
  const std::vector<JournalRecord> records = journal.Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].trace_id, 5u);
  EXPECT_EQ(records[1].trace_id, 6u);
  EXPECT_EQ(journal.dropped(), 4u);  // the four evicted oldest

  // Growing back opens room without touching the survivors.
  journal.SetCapacity(4);
  journal.Record(MakeRecord(7));
  journal.Record(MakeRecord(8));
  const std::vector<JournalRecord> grown = journal.Records();
  ASSERT_EQ(grown.size(), 4u);
  EXPECT_EQ(grown[0].trace_id, 5u);
  EXPECT_EQ(grown[3].trace_id, 8u);
  EXPECT_EQ(journal.dropped(), 4u);
}

TEST(Journal, RecordedAndDroppedMirrorIntoRegistryCounters) {
  // journal.recorded_total / journal.dropped_total are process-wide
  // Registry::Default() counters (the /metrics view of ring overflow),
  // so assert on deltas: other tests in this binary record too.
  Counter& recorded =
      Registry::Default().GetCounter("journal.recorded_total");
  Counter& dropped = Registry::Default().GetCounter("journal.dropped_total");
  const std::uint64_t recorded_before = recorded.value();
  const std::uint64_t dropped_before = dropped.value();

  Journal journal(/*capacity=*/2);
  for (std::uint64_t i = 1; i <= 5; ++i) journal.Record(MakeRecord(i));
  EXPECT_EQ(recorded.value() - recorded_before, 5u);
  EXPECT_EQ(dropped.value() - dropped_before, 3u);

  journal.SetCapacity(1);  // evicts one more buffered record
  EXPECT_EQ(dropped.value() - dropped_before, 4u);
}

TEST(Journal, JsonLinesCarrySchemaAndSummaryTrailer) {
  Journal journal(/*capacity=*/4);
  JournalRecord record = MakeRecord(0xabcdef);
  record.device = "laptop";
  record.wire_bytes_sent = 69;
  record.frames_received = 2;
  record.energy_joules = 197.5;
  journal.Record(record);
  const std::string jsonl = RenderJournalJsonLines(journal);

  // Two lines: the record and the summary trailer, each valid JSON.
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    lines.push_back(jsonl.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), 2u);
  auto parsed = json::Parse(lines[0]);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  const json::Value& doc = parsed.value();
  EXPECT_EQ(doc.GetString("kind"), "page_fetch");
  EXPECT_EQ(doc.GetString("trace_id"), "0000000000abcdef");
  EXPECT_EQ(doc.GetString("path"), "/");
  EXPECT_EQ(doc.GetString("outcome"), "ok");
  EXPECT_EQ(doc.GetString("cache"), "miss");
  EXPECT_EQ(doc.GetInt("wire_bytes_sent"), 69);
  EXPECT_EQ(doc.GetInt("frames_received"), 2);
  EXPECT_DOUBLE_EQ(doc.GetNumber("total_seconds"), 1.5);
  EXPECT_DOUBLE_EQ(doc.GetNumber("energy_joules"), 197.5);
  auto trailer = json::Parse(lines[1]);
  ASSERT_TRUE(trailer.ok());
  EXPECT_EQ(trailer.value().GetString("kind"), "journal_summary");
  EXPECT_EQ(trailer.value().GetInt("records"), 1);
  EXPECT_EQ(trailer.value().GetInt("total_recorded"), 1);
  EXPECT_EQ(trailer.value().GetInt("dropped"), 0);
  EXPECT_EQ(trailer.value().GetInt("capacity"), 4);

  // Determinism: rendering twice is byte-identical.
  EXPECT_EQ(jsonl, RenderJournalJsonLines(journal));
}

TEST(Journal, NonFinitePhaseLatenciesRenderAsNull) {
  // A buggy clock or a 0/0 phase split must not poison the JSONL: the
  // json serializer renders non-finite doubles as null (src/json), and
  // the document must stay machine-parseable.
  JournalRecord record = MakeRecord(1);
  record.total_seconds = std::numeric_limits<double>::quiet_NaN();
  record.wire_seconds = std::numeric_limits<double>::infinity();
  record.generation_seconds = -std::numeric_limits<double>::infinity();
  const std::string jsonl = RenderJournalJsonLines(
      {record}, /*total_recorded=*/1, /*dropped=*/0, /*capacity=*/8);
  // Bare non-finite tokens (":nan", ":inf", ":-inf") would break every
  // JSON consumer; the field name timestamp_nanos is the only "nan".
  EXPECT_EQ(jsonl.find(":nan"), std::string::npos);
  EXPECT_EQ(jsonl.find(":inf"), std::string::npos);
  EXPECT_EQ(jsonl.find(":-inf"), std::string::npos);
  EXPECT_NE(jsonl.find("\"total_seconds\":null"), std::string::npos);
  EXPECT_NE(jsonl.find("\"wire_seconds\":null"), std::string::npos);
  EXPECT_NE(jsonl.find("\"generation_seconds\":null"), std::string::npos);

  const std::string first_line = jsonl.substr(0, jsonl.find('\n'));
  auto parsed = json::Parse(first_line);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  EXPECT_TRUE(parsed.value().Get("total_seconds")->is_null());
}

TEST(Journal, OnePageFetchEmitsExactlyOneRecordWithExemplarTraceId) {
  Tracer& tracer = Tracer::Default();
  ManualClock clock;
  tracer.SetClock(&clock);
  tracer.SetEnabled(true);
  tracer.Clear();
  Registry::Default().Reset();
  Journal::Default().Clear();

  core::ContentStore store;
  ASSERT_TRUE(store.AddPage("/", core::MakeGoldfishPage()).ok());
  auto session = core::LocalSession::Start(&store, {});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->FetchPage("/").ok());

  const std::vector<JournalRecord> records = Journal::Default().Records();
  ASSERT_EQ(records.size(), 1u);
  const JournalRecord& record = records[0];
  EXPECT_EQ(record.kind, "page_fetch");
  EXPECT_EQ(record.path, "/");
  EXPECT_EQ(record.outcome, "ok");
  EXPECT_NE(record.trace_id, 0u);
  EXPECT_GT(record.total_seconds, 0.0);
  EXPECT_GT(record.page_bytes, 0u);
  EXPECT_GT(record.wire_bytes_sent, 0u);

  // The same trace id is the fetch.latency exemplar /metrics would show.
  const RegistrySnapshot snapshot = Registry::Default().Snapshot();
  auto it = snapshot.histograms.find("fetch.latency");
  ASSERT_NE(it, snapshot.histograms.end());
  EXPECT_EQ(it->second.count, 1u);
  bool found = false;
  for (const HistogramExemplar& exemplar : it->second.exemplars) {
    if (exemplar.trace_id == record.trace_id) found = true;
  }
  EXPECT_TRUE(found);

  tracer.SetClock(nullptr);
}

}  // namespace
}  // namespace sww::obs
