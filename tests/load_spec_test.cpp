// Scenario-spec grammar tests: JSON round-trip, unknown-key rejection,
// and the validation invariants the parser cannot express.
#include <gtest/gtest.h>

#include "json/json.hpp"
#include "load/spec.hpp"

namespace sww::load {
namespace {

TEST(LoadSpec, ServeModeNamesRoundTrip) {
  for (ServeMode mode : {ServeMode::kTraditional, ServeMode::kEdgeGenerative,
                         ServeMode::kClientGenerative}) {
    auto parsed = ParseServeMode(ServeModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), mode);
  }
  EXPECT_FALSE(ParseServeMode("zeppelin").ok());
}

TEST(LoadSpec, BuiltinScenariosAllValidate) {
  const std::vector<ScenarioSpec> builtins = BuiltinScenarios();
  ASSERT_GE(builtins.size(), 5u);
  for (const ScenarioSpec& spec : builtins) {
    EXPECT_TRUE(ValidateScenarioSpec(spec).ok()) << spec.name;
  }
  EXPECT_TRUE(FindBuiltinScenario("smoke").ok());
  EXPECT_TRUE(FindBuiltinScenario("flash-crowd").ok());
  EXPECT_FALSE(FindBuiltinScenario("no-such-scenario").ok());
}

TEST(LoadSpec, BuiltinScenariosRoundTripThroughJson) {
  // Render → parse → render must be a fixed point: the JSON grammar
  // covers every field the engine consumes.
  for (const ScenarioSpec& spec : BuiltinScenarios()) {
    const json::Value rendered = ScenarioSpecToJson(spec);
    auto parsed = ParseScenarioSpec(rendered);
    ASSERT_TRUE(parsed.ok()) << spec.name << ": "
                             << parsed.error().ToString();
    EXPECT_EQ(ScenarioSpecToJson(parsed.value()).Dump(), rendered.Dump())
        << spec.name;
  }
}

TEST(LoadSpec, ParseTextAcceptsObjectAndArray) {
  auto single = ParseScenarioSpecText(
      R"({"name":"one","seed":9,"duration_seconds":5,"population":10,)"
      R"("classes":[{"name":"c","weight":1,"device":"laptop"}]})");
  ASSERT_TRUE(single.ok()) << single.error().ToString();
  ASSERT_EQ(single.value().size(), 1u);
  EXPECT_EQ(single.value()[0].name, "one");
  EXPECT_EQ(single.value()[0].seed, 9u);

  auto many = ParseScenarioSpecText(
      R"([{"name":"a","classes":[{"name":"c"}]},)"
      R"({"name":"b","classes":[{"name":"c"}]}])");
  ASSERT_TRUE(many.ok()) << many.error().ToString();
  ASSERT_EQ(many.value().size(), 2u);
  EXPECT_EQ(many.value()[0].name, "a");
  EXPECT_EQ(many.value()[1].name, "b");
}

TEST(LoadSpec, UnknownKeysAreRejected) {
  auto top_level = ParseScenarioSpecText(
      R"({"name":"x","classes":[{"name":"c"}],"durations_seconds":5})");
  EXPECT_FALSE(top_level.ok());
  auto in_catalog = ParseScenarioSpecText(
      R"({"name":"x","classes":[{"name":"c"}],"catalog":{"item":3}})");
  EXPECT_FALSE(in_catalog.ok());
  auto in_class = ParseScenarioSpecText(
      R"({"name":"x","classes":[{"name":"c","rtt_msec":1}]})");
  EXPECT_FALSE(in_class.ok());
}

TEST(LoadSpec, ValidationRejectsBrokenSpecs) {
  ScenarioSpec good = FindBuiltinScenario("smoke").value();
  EXPECT_TRUE(ValidateScenarioSpec(good).ok());

  {
    ScenarioSpec spec = good;
    spec.name = "Has Spaces";  // metric series names must be [a-z0-9_-]+
    EXPECT_FALSE(ValidateScenarioSpec(spec).ok());
  }
  {
    ScenarioSpec spec = good;
    spec.duration_seconds = 0.0;
    EXPECT_FALSE(ValidateScenarioSpec(spec).ok());
  }
  {
    ScenarioSpec spec = good;
    spec.classes.clear();
    EXPECT_FALSE(ValidateScenarioSpec(spec).ok());
  }
  {
    ScenarioSpec spec = good;
    spec.classes[0].device = "mainframe";
    EXPECT_FALSE(ValidateScenarioSpec(spec).ok());
  }
  {
    ScenarioSpec spec = good;
    spec.classes[0].loss_rate = 1.0;  // would divide wire time by zero
    EXPECT_FALSE(ValidateScenarioSpec(spec).ok());
  }
  {
    ScenarioSpec spec = good;
    spec.stalls.push_back({spec.duration_seconds + 10.0, 5.0});
    EXPECT_FALSE(ValidateScenarioSpec(spec).ok());
  }
  {
    ScenarioSpec spec = good;
    spec.arrivals.diurnal_amplitude = 1.5;  // rate would go negative
    EXPECT_FALSE(ValidateScenarioSpec(spec).ok());
  }
  {
    ScenarioSpec spec = good;
    spec.slo_target = 1.5;
    EXPECT_FALSE(ValidateScenarioSpec(spec).ok());
  }
}

}  // namespace
}  // namespace sww::load
